//! Quickstart: self-configure a data integration system over three
//! heterogeneous sources and ask it a question.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use udi::core::{UdiConfig, UdiSystem};
use udi::query::parse_query;
use udi::store::{Catalog, Table};

fn main() {
    // Three web-table-ish sources about movies, with inconsistent labels.
    let mut catalog = Catalog::new();
    let mut s1 = Table::new("classics", ["title", "year", "director"]);
    s1.push_raw_row(["Metropolis", "1927", "Fritz Lang"])
        .unwrap();
    s1.push_raw_row(["Casablanca", "1942", "Michael Curtiz"])
        .unwrap();
    catalog.add_source(s1).unwrap();

    let mut s2 = Table::new("favorites", ["title", "release year", "directed by"]);
    s2.push_raw_row(["Vertigo", "1958", "Alfred Hitchcock"])
        .unwrap();
    s2.push_raw_row(["Casablanca", "1942", "Michael Curtiz"])
        .unwrap();
    catalog.add_source(s2).unwrap();

    let mut s3 = Table::new("recent", ["title", "year", "director"]);
    s3.push_raw_row(["Ratatouille", "2007", "Brad Bird"])
        .unwrap();
    catalog.add_source(s3).unwrap();

    // Completely automatic setup: probabilistic mediated schema,
    // max-entropy p-mappings, consolidation. No human input.
    let udi = UdiSystem::setup(catalog, UdiConfig::default()).expect("setup");

    println!("Exposed mediated schema:");
    for (rep, members) in udi.exposed_schema() {
        println!("  {rep:<14} = {{{}}}", members.join(", "));
    }

    // Query with the mediated vocabulary; `release year` from source 2 is
    // matched to `year` automatically.
    let q = parse_query("SELECT title, director FROM movies WHERE year < 1960").unwrap();
    println!("\n{q}");
    for t in udi.answer(&q).combined() {
        let row: Vec<String> = t.values.iter().map(ToString::to_string).collect();
        println!("  p={:.3}  ({})", t.probability, row.join(", "));
    }

    let r = udi.report();
    println!(
        "\nsetup: {} sources, {} possible mediated schemas, {} mappings, {:.1?} total",
        r.n_sources,
        r.n_schemas,
        r.n_mappings,
        r.timings.expect("fresh setup").total()
    );
}

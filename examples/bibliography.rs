//! Example 4.2 / Figure 3 of the paper: the p-med-schema of a bibliography
//! corpus.
//!
//! Generates the Bib domain (649 sources by default), runs the automatic
//! setup, and prints the probabilistic mediated schema. The near-threshold
//! `issue` ~ `issn` similarity (Jaro–Winkler ≈ 0.848, inside the τ ± ε
//! band) yields exactly the Figure 3 structure: one schema grouping
//! `issue` with `issn`/`eissn` and one keeping `issue` apart, with the
//! separation favored because many sources contain both labels
//! (Definition 4.1 consistency).
//!
//! ```sh
//! cargo run --release --example bibliography          # full 649 sources
//! UDI_SOURCES=80 cargo run --release --example bibliography
//! ```

use udi::core::{UdiConfig, UdiSystem};
use udi::datagen::{generate, Domain, GenConfig};
use udi::query::parse_query;

fn main() {
    let n = std::env::var("UDI_SOURCES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| Domain::Bib.default_source_count());
    println!("Generating {n} bibliography sources…");
    let corpus = generate(
        Domain::Bib,
        &GenConfig {
            n_sources: Some(n),
            ..GenConfig::default()
        },
    );
    let udi = UdiSystem::setup(corpus.catalog.clone(), UdiConfig::default()).expect("setup");

    let vocab = udi.schema_set().vocab();
    println!(
        "\np-med-schema: {} possible mediated schemas (Figure 3 has two):",
        udi.pmed().len()
    );
    for (m, p) in udi.pmed().schemas() {
        println!("  Pr = {p:.3}");
        for cluster in m.clusters() {
            if cluster.len() > 1 {
                let names: Vec<&str> = cluster.iter().map(|&a| vocab.name(a)).collect();
                println!("      {{{}}}", names.join(", "));
            }
        }
        let singletons = m.clusters().iter().filter(|c| c.len() == 1).count();
        println!("      … plus {singletons} singleton attributes");
    }

    println!("\nExposed (consolidated) schema:");
    for (rep, members) in udi.exposed_schema() {
        if members.len() > 1 {
            println!("  {rep:<16} = {{{}}}", members.join(", "));
        }
    }

    // The classic bibliography question, across hundreds of tables at once.
    let q = parse_query("SELECT author, title, journal FROM bib WHERE year >= 2000").unwrap();
    println!("\n{q}");
    let answers = udi.answer(&q).combined();
    println!("{} distinct answers; top 5 by probability:", answers.len());
    for t in answers.iter().take(5) {
        let row: Vec<String> = t.values.iter().map(ToString::to_string).collect();
        println!("  p={:.3}  ({})", t.probability, row.join(" | "));
    }
    println!(
        "\nsetup took {:.1?} for {} sources ({} p-mappings)",
        udi.report().timings.expect("fresh setup").total(),
        udi.report().n_sources,
        udi.report().n_mappings
    );
}

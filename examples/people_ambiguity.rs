//! Example 2.1 / Figure 1 of the paper, reproduced exactly.
//!
//! Source S1 has separate home/office phone and address columns; source S2
//! uses the ambiguous labels `phone` and `address`. A probabilistic mediated
//! schema holds both plausible clusterings (M3 attaches `phone` to the home
//! side, M4 to the office side), and by-table query answering returns all
//! four (phone, address) pairings with the Figure 1(c) probabilities —
//! favoring the correctly correlated pairs (0.34 each) over the crossed
//! ones (0.16 each).
//!
//! ```sh
//! cargo run --release --example people_ambiguity
//! ```

use udi::core::UdiSystem;
use udi::query::parse_query;
use udi::schema::{AttrId, Mapping, MediatedSchema, PMapping, PMedSchema};
use udi::store::{Catalog, Table};

fn main() {
    let mut catalog = Catalog::new();
    let mut s1 = Table::new("S1", ["name", "hPhone", "hAddr", "oPhone", "oAddr"]);
    s1.push_raw_row([
        "Alice",
        "123-4567",
        "123, A Ave.",
        "765-4321",
        "456, B Ave.",
    ])
    .unwrap();
    let mut s2 = Table::new("S2", ["name", "phone", "address"]);
    s2.push_raw_row(["Bob", "555-1234", "789, C Ave."]).unwrap();
    catalog.add_source(s1).unwrap();
    catalog.add_source(s2).unwrap();

    // Vocabulary ids follow first appearance: name=0, hPhone=1, hAddr=2,
    // oPhone=3, oAddr=4, phone=5, address=6.
    let (name, h_p, h_a, o_p, o_a, phone, addr) = (
        AttrId(0),
        AttrId(1),
        AttrId(2),
        AttrId(3),
        AttrId(4),
        AttrId(5),
        AttrId(6),
    );

    // M3 = ({name}, {phone, hP}, {oP}, {address, hA}, {oA});
    // M4 = ({name}, {phone, oP}, {hP}, {address, oA}, {hA}); each 0.5.
    let m3 = MediatedSchema::from_slices(&[&[name], &[phone, h_p], &[o_p], &[addr, h_a], &[o_a]]);
    let m4 = MediatedSchema::from_slices(&[&[name], &[phone, o_p], &[h_p], &[addr, o_a], &[h_a]]);
    let pmed = PMedSchema::new(vec![(m3.clone(), 0.5), (m4.clone(), 0.5)]);

    // Figure 1(a)/(b): the p-mappings between S1 and M3/M4. The 0.64/0.16/
    // 0.16/0.04 distribution is the max-entropy product of two independent
    // 0.8/0.2 choices (which phone and which address fill the shared
    // clusters).
    let mapping = |med: &MediatedSchema, pairs: &[(AttrId, AttrId)]| {
        Mapping::one_to_one(
            pairs
                .iter()
                .map(|&(src, clusterer)| (src, med.cluster_of(clusterer).unwrap())),
        )
    };
    let pm_s1 =
        |med: &MediatedSchema, this: AttrId, other: AttrId, this_a: AttrId, other_a: AttrId| {
            PMapping::new(vec![
                (
                    mapping(
                        med,
                        &[
                            (name, name),
                            (this, phone),
                            (other, other),
                            (this_a, addr),
                            (other_a, other_a),
                        ],
                    ),
                    0.64,
                ),
                (
                    mapping(
                        med,
                        &[
                            (name, name),
                            (this, phone),
                            (other, other),
                            (other_a, addr),
                            (this_a, other_a),
                        ],
                    ),
                    0.16,
                ),
                (
                    mapping(
                        med,
                        &[
                            (name, name),
                            (other, phone),
                            (this, other),
                            (this_a, addr),
                            (other_a, other_a),
                        ],
                    ),
                    0.16,
                ),
                (
                    mapping(
                        med,
                        &[
                            (name, name),
                            (other, phone),
                            (this, other),
                            (other_a, addr),
                            (this_a, other_a),
                        ],
                    ),
                    0.04,
                ),
            ])
        };
    let pm_s1_m3 = pm_s1(&m3, h_p, o_p, h_a, o_a);
    let pm_s1_m4 = pm_s1(&m4, o_p, h_p, o_a, h_a);

    let id_mapping = |med: &MediatedSchema| {
        Mapping::one_to_one([
            (name, med.cluster_of(name).unwrap()),
            (phone, med.cluster_of(phone).unwrap()),
            (addr, med.cluster_of(addr).unwrap()),
        ])
    };
    let pm_s2_m3 = PMapping::new(vec![(id_mapping(&m3), 1.0)]);
    let pm_s2_m4 = PMapping::new(vec![(id_mapping(&m4), 1.0)]);

    let udi = UdiSystem::from_parts(
        catalog,
        pmed,
        vec![vec![pm_s1_m3, pm_s1_m4], vec![pm_s2_m3, pm_s2_m4]],
    )
    .expect("assemble");

    println!("Consolidated mediated schema:");
    for (rep, members) in udi.exposed_schema() {
        println!("  {rep:<10} = {{{}}}", members.join(", "));
    }

    let q = parse_query("SELECT name, phone, address FROM People").unwrap();
    println!("\n{q}  — Figure 1(c):");
    for t in udi.answer(&q).combined() {
        let row: Vec<String> = t.values.iter().map(ToString::to_string).collect();
        println!("  p={:.2}  ({})", t.probability, row.join(", "));
    }
    println!(
        "\nThe correctly correlated (home, home) and (office, office) pairs rank \
         at 0.34; the crossed pairs fall to 0.16 — the benefit of keeping BOTH \
         M3 and M4 instead of committing to either."
    );
}

//! Pay-as-you-go improvement: start from the fully automatic setup, then
//! apply one piece of human feedback and watch quality improve — the usage
//! mode the paper positions UDI for ("the system starts with very few (or
//! inaccurate) semantic mappings and these mappings are improved over time
//! as deemed necessary").
//!
//! The feedback here resolves the mediated schema's residual uncertainty:
//! an administrator inspects the probabilistic mediated schema and picks
//! the correct clustering (in Figure 3 terms: confirms that `issue` is not
//! an `issn`). [`UdiSystem::from_parts`] rebuilds the system around the
//! corrected schema while reusing the automatically generated machinery.
//!
//! ```sh
//! cargo run --release --example pay_as_you_go
//! ```

use udi::core::{UdiConfig, UdiSystem};
use udi::datagen::{generate, Domain, GenConfig};
use udi::eval::{generate_workload, score, GoldenIntegrator, Metrics};
use udi::schema::{generate_pmapping, PMedSchema, SimilarityMatrix, UdiParams};
use udi::similarity::AttributeSimilarity;

fn evaluate(udi: &UdiSystem, corpus: &udi::datagen::GeneratedDomain) -> Metrics {
    let golden = GoldenIntegrator::new(&corpus.catalog, &corpus.truth);
    let queries = generate_workload(corpus, 10, 4242);
    let per_query: Vec<Metrics> = queries
        .iter()
        .map(|q| {
            let rows = golden.golden_rows(q);
            score(udi.answer(q).flat(), rows.iter())
        })
        .collect();
    Metrics::average(&per_query)
}

fn main() {
    let corpus = generate(
        Domain::Bib,
        &GenConfig {
            n_sources: Some(120),
            ..GenConfig::default()
        },
    );

    // Step 0: fully automatic bootstrap.
    let auto = UdiSystem::setup(corpus.catalog.clone(), UdiConfig::default()).expect("setup");
    let m0 = evaluate(&auto, &corpus);
    println!(
        "automatic bootstrap:   P={:.3} R={:.3} F={:.3}  ({} possible schemas)",
        m0.precision,
        m0.recall,
        m0.f_measure(),
        auto.pmed().len()
    );

    // Step 1 (pay-as-you-go): the administrator reviews the possible
    // mediated schemas and selects the one matching reality — the schema
    // most consistent with the golden clustering. Here the ground truth
    // plays the administrator.
    let vocab = auto.schema_set().vocab();
    let chosen = auto
        .pmed()
        .schemas()
        .iter()
        .max_by(|(a, _), (b, _)| {
            let quality = |m: &udi::schema::MediatedSchema| {
                let names: Vec<String> = m
                    .attribute_set()
                    .iter()
                    .map(|&x| vocab.name(x).to_owned())
                    .collect();
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                let golden = corpus.truth.golden_clusters(&refs);
                let metrics =
                    udi::eval::pairwise_metrics(&udi::eval::named_clusters(m, vocab), &golden);
                metrics.f_measure()
            };
            quality(a)
                .partial_cmp(&quality(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(m, _)| m.clone())
        .expect("non-empty");

    // Rebuild: deterministic schema chosen by the human, p-mappings
    // regenerated automatically against it.
    let params = UdiParams::default();
    let sim = AttributeSimilarity::default();
    let mut schema_set = udi::schema::SchemaSet::default();
    for (_, t) in corpus.catalog.iter_sources() {
        schema_set.add_source(t.name(), t.attributes().iter().map(String::as_str));
    }
    let matrix = SimilarityMatrix::new(schema_set.vocab(), &sim);
    let pmappings: Vec<Vec<udi::schema::PMapping>> = schema_set
        .sources()
        .iter()
        .map(|s| vec![generate_pmapping(s, &chosen, &matrix, &params).expect("p-mapping")])
        .collect();
    let curated = UdiSystem::from_parts(
        corpus.catalog.clone(),
        PMedSchema::new(vec![(chosen, 1.0)]),
        pmappings,
    )
    .expect("assemble");
    let m1 = evaluate(&curated, &corpus);
    println!(
        "after schema feedback: P={:.3} R={:.3} F={:.3}  (1 schema, human-confirmed)",
        m1.precision,
        m1.recall,
        m1.f_measure()
    );

    // Step 2 (alternative path): instead of picking a whole schema, answer
    // the single most uncertain clustering question the system itself
    // asks, and re-run the automatic pipeline with that feedback folded in.
    let questions = udi::core::suggest_questions(&auto);
    if let Some(q) = questions.first() {
        println!(
            "\nmost valuable question: are `{}` and `{}` the same concept? \
             (system: together with p={:.2})",
            q.a, q.b, q.p_together
        );
        // Ground truth plays the human again.
        let mut fb = udi::core::Feedback::new();
        let same = corpus.truth.same_concept(&q.a, &q.b).unwrap_or(false);
        if same {
            fb.confirm_same(&q.a, &q.b);
        } else {
            fb.confirm_different(&q.a, &q.b);
        }
        let base = AttributeSimilarity::default();
        let measure = fb.wrap(&base);
        let refined =
            UdiSystem::setup_with_measure(corpus.catalog.clone(), &measure, UdiConfig::default())
                .expect("setup");
        let m2 = evaluate(&refined, &corpus);
        println!(
            "after one answer:      P={:.3} R={:.3} F={:.3}  ({} schemas remain)",
            m2.precision,
            m2.recall,
            m2.f_measure(),
            refined.pmed().len()
        );
    }

    println!(
        "\nThe probabilistic start is already close to the curated system — \
         that is the paper's thesis: automatic setup is \"an excellent \
         starting point to improve the data integration system with time\"."
    );
}

//! End-to-end tour of the `udi-obs` observability layer: set a system up
//! with a [`MemorySink`] installed, answer a query, then inspect the
//! recorded spans and counters.
//!
//! Everything the engine and query paths emit is buffered in memory, so
//! this example doubles as a live check that the span tree is well formed
//! (`verify_nesting`) and that the headline counters line up with the
//! `SetupReport`. For file-based traces use `JsonLinesSink` instead — the
//! bench binaries' `--trace out.jsonl` flag shows that wiring; see
//! `OBSERVABILITY.md` for the span/counter taxonomy.
//!
//! ```sh
//! cargo run --release --example observability
//! ```

use std::sync::Arc;

use udi::core::{UdiConfig, UdiSystem};
use udi::datagen::{generate, Domain, GenConfig};
use udi::eval::generate_workload;
use udi::obs::{MemorySink, TraceSummary};

fn main() {
    // A small synthetic Movie corpus keeps the trace readable.
    let corpus = generate(
        Domain::Movie,
        &GenConfig {
            n_sources: Some(24),
            seed: 17,
            ..GenConfig::default()
        },
    );

    let sink = Arc::new(MemorySink::new());
    let udi = UdiSystem::setup_observed(corpus.catalog.clone(), UdiConfig::default(), sink.clone())
        .expect("setup");

    let q = generate_workload(&corpus, 1, 18).remove(0);
    println!("{q}");
    let answers = udi.answer(&q).combined();
    println!("{} distinct answers\n", answers.len());

    // The span tree must be well formed: unique ids, every parent known,
    // children contained in their parents' intervals.
    sink.verify_nesting().expect("spans nest correctly");

    // Every setup stage hangs off the engine.refresh root.
    let refresh = sink.spans_named("engine.refresh");
    assert_eq!(refresh.len(), 1, "one setup refresh");
    let root = refresh[0].id;
    for stage in [
        "engine.import",
        "engine.med_schema",
        "engine.pmappings",
        "engine.consolidate",
    ] {
        let spans = sink.spans_named(stage);
        assert_eq!(spans.len(), 1, "{stage} runs once");
        assert_eq!(spans[0].parent, root, "{stage} is a refresh child");
    }

    // Per-(source, schema) p-mapping builds are children of the
    // p-mappings stage; on a cold engine there is one per row computed.
    let builds = sink.spans_named("engine.pmapping.build").len();
    assert_eq!(builds, sink.counter_total("engine.rows.computed") as usize);

    // The query path reports its work through counters on query.answer.
    assert_eq!(sink.spans_named("query.answer").len(), 1);
    assert!(sink.counter_total("query.tuples.scanned") > 0);
    assert_eq!(
        sink.counter_total("query.answers.produced") > 0,
        !answers.is_empty()
    );

    // The engine's CacheStats view is derived from the same counters.
    let cache = udi.report().cache;
    assert_eq!(
        cache.rows_computed as u64,
        sink.counter_total("engine.rows.computed")
    );
    assert_eq!(cache.solve_misses, sink.counter_total("maxent.solve.miss"));

    println!("span tree OK: {builds} p-mapping builds under one refresh\n");
    print!("{}", TraceSummary::from_events(&sink.events()));
}

#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # UDI — pay-as-you-go data integration
//!
//! Facade crate re-exporting the full public API of the workspace. See the
//! README for an architecture overview and `DESIGN.md` for the paper
//! reproduction map.

pub use udi_baselines as baselines;
pub use udi_core as core;
pub use udi_datagen as datagen;
pub use udi_eval as eval;
pub use udi_maxent as maxent;
pub use udi_obs as obs;
pub use udi_query as query;
pub use udi_schema as schema;
pub use udi_serve as serve;
pub use udi_similarity as similarity;
pub use udi_store as store;

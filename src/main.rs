//! `udi` — command-line front end for the pay-as-you-go data integration
//! system.
//!
//! ```text
//! udi demo [movie|car|people|course|bib] [--sources N] [--seed S]
//!     Generate a synthetic domain corpus, self-configure, and open a
//!     query shell.
//!
//! udi csv <dir>
//!     Load every *.csv file under <dir> as a data source (first row =
//!     header), self-configure over them, and open a query shell.
//! ```
//!
//! ```text
//! udi load <snapshot.json>
//!     Reload a system saved with `\save` and open the query shell.
//! ```
//!
//! Inside the shell, type select–project SQL
//! (`SELECT title, year FROM t WHERE year >= 1990`) or a meta command:
//! `\schema` (exposed mediated schema), `\pmed` (the probabilistic
//! mediated schema), `\sources`, `\explain <sql>` (per-source binding
//! breakdown), `\save <file>` (persist the configured system as JSON),
//! `\quit`.

use std::io::{BufRead, Write as _};

use udi::core::{UdiConfig, UdiSystem};
use udi::datagen::{generate, Domain, GenConfig};
use udi::query::parse_query;
use udi::store::{Catalog, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("demo") => cmd_demo(&args[1..]),
        Some("csv") => cmd_csv(&args[1..]),
        Some("load") => cmd_load(&args[1..]),
        _ => {
            eprintln!(
                "usage: udi demo [domain] [--sources N] [--seed S] | udi csv <dir> | udi load <snapshot.json>"
            );
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

type AnyError = Box<dyn std::error::Error>;

fn cmd_demo(args: &[String]) -> Result<(), AnyError> {
    let mut domain = Domain::Movie;
    let mut n_sources: Option<usize> = None;
    let mut seed = 2008u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "movie" => domain = Domain::Movie,
            "car" => domain = Domain::Car,
            "people" => domain = Domain::People,
            "course" => domain = Domain::Course,
            "bib" => domain = Domain::Bib,
            "--sources" => {
                i += 1;
                n_sources = Some(args.get(i).ok_or("--sources needs a value")?.parse()?);
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).ok_or("--seed needs a value")?.parse()?;
            }
            other => return Err(format!("unknown argument `{other}`").into()),
        }
        i += 1;
    }
    let n = n_sources.unwrap_or_else(|| domain.default_source_count());
    println!("Generating {n} {} sources (seed {seed})…", domain.name());
    let corpus = generate(
        domain,
        &GenConfig {
            n_sources: Some(n),
            seed,
            ..GenConfig::default()
        },
    );
    configure_and_shell(corpus.catalog)
}

fn cmd_csv(args: &[String]) -> Result<(), AnyError> {
    let dir = args.first().ok_or("udi csv <dir>")?;
    let mut catalog = Catalog::new();
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no .csv files under {dir}").into());
    }
    for p in &paths {
        let name = p
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let text = std::fs::read_to_string(p)?;
        let table = Table::from_csv(name, &text)?;
        println!(
            "  loaded {} ({} rows, {} columns)",
            p.display(),
            table.row_count(),
            table.arity()
        );
        catalog.add_source(table).unwrap();
    }
    configure_and_shell(catalog)
}

fn cmd_load(args: &[String]) -> Result<(), AnyError> {
    let path = args.first().ok_or("udi load <snapshot.json>")?;
    let json = std::fs::read_to_string(path)?;
    let udi = UdiSystem::from_json(&json)?;
    println!(
        "loaded snapshot: {} sources, {} possible mediated schemas",
        udi.catalog().source_count(),
        udi.pmed().len()
    );
    shell(udi)
}

fn configure_and_shell(catalog: Catalog) -> Result<(), AnyError> {
    println!("Self-configuring over {} sources…", catalog.source_count());
    let udi = UdiSystem::setup(catalog, UdiConfig::default())?;
    let r = udi.report();
    println!(
        "done in {:.1?}: {} possible mediated schemas, {} mappings, {} consolidated",
        r.timings.map(|t| t.total()).unwrap_or_default(),
        r.n_schemas,
        r.n_mappings,
        r.n_consolidated_mappings
    );
    shell(udi)
}

fn shell(udi: UdiSystem) -> Result<(), AnyError> {
    print_schema(&udi);

    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        print!("udi> ");
        std::io::stdout().flush()?;
        line.clear();
        if stdin.lock().read_line(&mut line)? == 0 {
            break;
        }
        let input = line.trim();
        match input {
            "" => continue,
            "\\quit" | "\\q" | "exit" => break,
            "\\schema" => print_schema(&udi),
            "\\pmed" => {
                for (m, p) in udi.pmed().schemas() {
                    println!("Pr={p:.3}  {}", m.display(udi.schema_set().vocab()));
                }
            }
            cmd if cmd.starts_with("\\explain") => {
                let sql = cmd.trim_start_matches("\\explain").trim();
                match parse_query(sql) {
                    Err(e) => println!("{e}"),
                    Ok(q) => print!("{}", udi.explain(&q)),
                }
            }
            cmd if cmd.starts_with("\\save") => match cmd.split_whitespace().nth(1) {
                None => println!("usage: \\save <file>"),
                Some(path) => match udi.to_json() {
                    Ok(json) => match std::fs::write(path, json) {
                        Ok(()) => println!("saved to {path}"),
                        Err(e) => println!("write failed: {e}"),
                    },
                    Err(e) => println!("serialization failed: {e}"),
                },
            },
            "\\sources" => {
                for (sid, t) in udi.catalog().iter_sources() {
                    println!(
                        "{sid}: {} [{}] ({} rows)",
                        t.name(),
                        t.attributes().join(", "),
                        t.row_count()
                    );
                }
            }
            sql => {
                // Aggregate queries (GROUP BY / COUNT / ...) are a distinct
                // grammar; try the SP parser first, then the aggregate one.
                let ranked = match parse_query(sql) {
                    Ok(q) => udi.answer(&q).combined(),
                    Err(sp_err) => match udi::query::parse_aggregate_query(sql) {
                        Ok(q) => udi.answer_aggregate(&q).combined(),
                        Err(_) => {
                            println!("{sp_err}");
                            continue;
                        }
                    },
                };
                println!("{} distinct answers", ranked.len());
                for t in ranked.iter().take(20) {
                    let row: Vec<String> = t.values.iter().map(ToString::to_string).collect();
                    println!("  p={:.3}  ({})", t.probability, row.join(", "));
                }
                if ranked.len() > 20 {
                    println!("  … {} more", ranked.len() - 20);
                }
            }
        }
    }
    Ok(())
}

fn print_schema(udi: &UdiSystem) {
    println!("Exposed mediated schema (query with any member name):");
    for (rep, members) in udi.exposed_schema() {
        if members.len() > 1 {
            println!("  {rep:<18} = {{{}}}", members.join(", "));
        } else {
            println!("  {rep}");
        }
    }
}

//! Offline stand-in for `criterion`.
//!
//! Keeps the `harness = false` bench binaries compiling and runnable in a
//! sandbox with no crates.io access. Each benchmark executes its routine a
//! handful of times and prints a single wall-clock line — useful as a smoke
//! test and a rough number, not a statistically sound measurement. Swap in
//! the real crate (see `offline/README.md`) for publishable figures.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bench identifier, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation (recorded, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness handed to bench closures.
pub struct Bencher {
    iters: u32,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` `self.iters` times, recording total wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(label: &str, iters: u32, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.checked_div(b.iters).unwrap_or(Duration::ZERO);
    let thr = match throughput {
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            format!("  ({:.0} elem/s)", n as f64 / per_iter.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
            format!("  ({:.0} B/s)", n as f64 / per_iter.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("bench {label:<48} {per_iter:>12.2?}/iter  ({iters} iters){thr}");
}

/// Top-level driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    iters: u32,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // A couple of iterations: enough to smoke-test and amortize cold
        // caches, cheap enough for CI sandboxes.
        Criterion { iters: 3 }
    }
}

impl Criterion {
    /// Mirror of `Criterion::configure_from_args` (no-op in the stub).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        mut f: F,
    ) -> &mut Criterion {
        run_one(id, self.iters, None, |b| f(b));
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), iters: self.iters, throughput: None, _parent: self }
    }
}

/// Group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u32,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Mirror of `sample_size` (influences stub iteration count mildly).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u32).clamp(1, 10);
        self
    }

    /// Mirror of `measurement_time` (recorded but unused).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Mirror of `warm_up_time` (recorded but unused).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Set the throughput annotation for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.iters, self.throughput, |b| f(b));
        self
    }

    /// Run a parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.iters, self.throughput, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Mirror of `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirror of `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            println!("criterion offline stub: single-shot timings, not statistics");
            $($group();)+
        }
    };
}

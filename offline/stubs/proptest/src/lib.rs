//! Offline stand-in for `proptest`.
//!
//! A deterministic mini property-testing runner covering the strategy
//! surface this workspace uses: ranges, tuples, `prop_map`, `Just`,
//! `prop_oneof!`, `collection::vec`, `sample::{select, subsequence}`,
//! `any::<T>()`, and regex-string strategies (a small generator handling
//! literal atoms, character classes, `.` and `{m,n}`/`?`/`*`/`+`
//! quantifiers). No shrinking, no persistence of failing cases: a failing
//! property panics with the case number so it can be replayed (the stream
//! is a pure function of the test name and case index).
//!
//! The point is to let `cargo test` run in a sandbox with no crates.io
//! access — see `offline/README.md`.

/// Runner plumbing: deterministic PRNG, config, error types.
pub mod test_runner {
    /// Splitmix64 stream used for all generation.
    #[derive(Debug, Clone)]
    pub struct Prng {
        state: u64,
    }

    impl Prng {
        /// New stream from a seed.
        pub fn new(seed: u64) -> Prng {
            let mut p = Prng { state: seed ^ 0xA076_1D64_78BD_642F };
            p.next_u64();
            p
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform draw in `[0.0, 1.0)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// FNV-1a of the test name: stable per-test seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01B3);
        }
        h
    }

    /// Mirror of `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            // The real default is 256; the stub keeps full parity here so
            // property coverage does not silently shrink offline.
            Config { cases: 256 }
        }
    }

    /// Failure of a single test case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Input rejected by `prop_assume!`.
        Reject(String),
        /// Property violated.
        Fail(String),
    }

    /// Per-case result type.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::Prng;

    /// A generator of values (the stub has no shrinking, so this is just a
    /// deterministic `Prng -> Value` function).
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Generate one value.
        fn pick(&self, rng: &mut Prng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy. Being a method (rather than an `as`
        /// cast), this forces `Self::Value` to be resolved at the call site —
        /// which is what lets `prop_oneof!` alternatives drive inference the
        /// same way the real crate's `.boxed()` does.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy (mirror of `proptest::strategy::BoxedStrategy`,
    /// minus the shrinking machinery).
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn pick(&self, rng: &mut Prng) -> S::Value {
            (**self).pick(rng)
        }
    }

    /// Strategy returning a clone of a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn pick(&self, _rng: &mut Prng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn pick(&self, rng: &mut Prng) -> O {
            (self.f)(self.inner.pick(rng))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Union over the given alternatives (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn pick(&self, rng: &mut Prng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].pick(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut Prng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut Prng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy range is empty");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let draw = (rng.next_u64() as u128) % span;
                    (lo as i128 + draw as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut Prng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    self.start + (self.end - self.start) * (rng.unit_f64() as $t)
                }
            }
        )*};
    }
    float_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn pick(&self, rng: &mut Prng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.pick(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) (A, B, C, D, E, F)
    }

    /// `&'static str` as a regex strategy (tiny generator: literal atoms,
    /// `[...]` classes with ranges, `.`, and `{m,n}` / `{n}` / `?` / `*` /
    /// `+` quantifiers — the subset this workspace's patterns use).
    impl Strategy for &'static str {
        type Value = String;
        fn pick(&self, rng: &mut Prng) -> String {
            generate_from_regex(self, rng)
        }
    }

    enum Atom {
        Class(Vec<char>),
        AnyChar,
    }

    fn parse_class(chars: &[char], i: &mut usize) -> Vec<char> {
        // chars[*i] is the char right after '['.
        let mut set = Vec::new();
        while *i < chars.len() && chars[*i] != ']' {
            let c = chars[*i];
            if c == '\\' && *i + 1 < chars.len() {
                set.push(chars[*i + 1]);
                *i += 2;
                continue;
            }
            // Range `a-z` (a '-' that is not last in the class).
            if *i + 2 < chars.len() && chars[*i + 1] == '-' && chars[*i + 2] != ']' {
                let (lo, hi) = (c, chars[*i + 2]);
                assert!(lo <= hi, "bad class range {lo}-{hi}");
                for x in lo..=hi {
                    set.push(x);
                }
                *i += 3;
                continue;
            }
            set.push(c);
            *i += 1;
        }
        assert!(*i < chars.len(), "unterminated character class");
        *i += 1; // consume ']'
        assert!(!set.is_empty(), "empty character class");
        set
    }

    fn parse_quantifier(chars: &[char], i: &mut usize) -> (usize, usize) {
        if *i >= chars.len() {
            return (1, 1);
        }
        match chars[*i] {
            '?' => {
                *i += 1;
                (0, 1)
            }
            '*' => {
                *i += 1;
                (0, 8)
            }
            '+' => {
                *i += 1;
                (1, 8)
            }
            '{' => {
                let close = chars[*i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated {} quantifier")
                    + *i;
                let body: String = chars[*i + 1..close].iter().collect();
                *i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        }
    }

    fn generate_from_regex(pattern: &str, rng: &mut Prng) -> String {
        const PRINTABLE: std::ops::RangeInclusive<u8> = 0x20..=0x7E;
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0usize;
        let mut out = String::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    i += 1;
                    Atom::Class(parse_class(&chars, &mut i))
                }
                '.' => {
                    i += 1;
                    Atom::AnyChar
                }
                '\\' => {
                    i += 1;
                    let c = chars.get(i).copied().expect("dangling escape");
                    i += 1;
                    Atom::Class(vec![c])
                }
                c => {
                    i += 1;
                    Atom::Class(vec![c])
                }
            };
            let (lo, hi) = parse_quantifier(&chars, &mut i);
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                match &atom {
                    Atom::Class(set) => {
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                    Atom::AnyChar => {
                        let span = (*PRINTABLE.end() - *PRINTABLE.start() + 1) as u64;
                        out.push((PRINTABLE.start() + rng.below(span) as u8) as char);
                    }
                }
            }
        }
        out
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::Prng;

    /// Types with a default whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut Prng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut Prng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut Prng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut Prng) -> f64 {
            // Bounded, finite: arbitrary bit patterns (NaN, infinities) break
            // more properties than they test at this fidelity level.
            (rng.unit_f64() - 0.5) * 2e6
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn pick(&self, rng: &mut Prng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The default strategy for `T`, mirroring `proptest::arbitrary::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: std::marker::PhantomData }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::Prng;

    /// Size specification for collection strategies (`hi` exclusive).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub(crate) lo: usize,
        pub(crate) hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    impl SizeRange {
        pub(crate) fn pick(&self, rng: &mut Prng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut Prng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.pick(rng)).collect()
        }
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Sampling strategies.
pub mod sample {
    use crate::collection::SizeRange;
    use crate::strategy::Strategy;
    use crate::test_runner::Prng;

    /// Strategy choosing one element of a fixed pool.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn pick(&self, rng: &mut Prng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// Mirror of `proptest::sample::select` (non-empty pool).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select needs a non-empty pool");
        Select { options }
    }

    /// Strategy choosing an order-preserving random subsequence.
    pub struct Subsequence<T: Clone> {
        pool: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn pick(&self, rng: &mut Prng) -> Vec<T> {
            let k = self.size.pick(rng).min(self.pool.len());
            // Pick k distinct indices, then restore pool order.
            let mut idx: Vec<usize> = (0..self.pool.len()).collect();
            for i in 0..k {
                let j = i + rng.below((idx.len() - i) as u64) as usize;
                idx.swap(i, j);
            }
            idx.truncate(k);
            idx.sort_unstable();
            idx.into_iter().map(|i| self.pool[i].clone()).collect()
        }
    }

    /// Mirror of `proptest::sample::subsequence`.
    pub fn subsequence<T: Clone>(pool: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence { pool, size: size.into() }
    }
}

/// Mirror of `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// Mirror of the `prop` module re-export inside the real prelude.
    pub mod prop {
        pub use crate::{collection, sample, strategy};
    }
}

/// Mirror of `proptest!`. Generates one `#[test]` fn per property (the
/// `#[test]` attribute comes from the user's own attribute list, exactly as
/// with the real macro).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::Config::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __seed = $crate::test_runner::seed_for(stringify!($name));
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::Prng::new(
                    __seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $pat = $crate::strategy::Strategy::pick(&($strat), &mut __rng);)*
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(m)) =
                    __outcome
                {
                    panic!(
                        "proptest stub: property {} failed at case {}: {}",
                        stringify!($name),
                        __case,
                        m
                    );
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// Mirror of `prop_assert!` (panics immediately in the stub — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Mirror of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Mirror of `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Mirror of `prop_assume!`: in the stub a rejected input just passes the
/// case (there is no retry budget to account against).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Mirror of `prop_oneof!` (uniform choice; weights unsupported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_generator_respects_shape() {
        let mut rng = crate::test_runner::Prng::new(3);
        for _ in 0..200 {
            let s = Strategy::pick(&"[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9);
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..5, 10i64..20), v in prop::collection::vec(0u8..4, 2..6)) {
            prop_assert!(a < 5);
            prop_assert!((10..20).contains(&b));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn oneof_and_sample(
            x in prop_oneof![Just(0i64), any::<i32>().prop_map(|i| i as i64), 100i64..200],
            pick in prop::sample::select(vec!["a", "b", "c"]),
            sub in prop::sample::subsequence(vec![1, 2, 3, 4, 5], 2..4),
        ) {
            let _ = x;
            prop_assert!(["a", "b", "c"].contains(&pick));
            prop_assert!(sub.len() == 2 || sub.len() == 3);
            prop_assert!(sub.windows(2).all(|w| w[0] < w[1]), "order preserved");
        }

        #[test]
        fn assume_short_circuits(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }
    }
}

//! Offline stand-in for `rand` 0.8.
//!
//! Unlike the serde stubs, this one is **fully functional** for the API
//! surface the workspace uses: `StdRng::seed_from_u64`, `Rng::gen_range`
//! (half-open and inclusive integer/float ranges), `Rng::gen_bool`, and
//! `seq::SliceRandom::{choose, choose_multiple}`. The generator is
//! splitmix64 — deterministic for a given seed, statistically fine for
//! synthetic data generation, **not** the same stream as the real
//! `StdRng` (ChaCha12), so generated corpora differ between the stub and
//! the real crate. Everything downstream of a fixed seed is still fully
//! reproducible within one build flavor.

/// Core RNG trait (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed ^ 0xA076_1D64_78BD_642F };
            // Warm up so nearby seeds diverge immediately.
            use super::RngCore;
            rng.next_u64();
            rng
        }
    }
}

/// Uniform sampling over ranges, mirroring `rand::distributions::uniform`.
pub mod distributions {
    /// Uniform-range machinery.
    pub mod uniform {
        use crate::RngCore;

        /// Types uniformly sampleable from a `lo..hi` span. Mirrors the real
        /// crate's shape (blanket `SampleRange` impls over `T: SampleUniform`)
        /// so integer-literal inference behaves identically, e.g.
        /// `slice[rng.gen_range(0..5)]` unifies with `usize`.
        pub trait SampleUniform: Sized + Copy + PartialOrd {
            /// Sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
            fn sample_span<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
        }

        macro_rules! int_uniform {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_span<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                        let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                        assert!(span > 0, "gen_range: empty range");
                        let draw = (rng.next_u64() as u128) % span;
                        (lo as i128 + draw as i128) as $t
                    }
                }
            )*};
        }
        int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! float_uniform {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_span<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                        assert!(lo < hi || (inclusive && lo <= hi), "gen_range: empty range");
                        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                        lo + (hi - lo) * (unit as $t)
                    }
                }
            )*};
        }
        float_uniform!(f32, f64);

        /// A range producing uniform samples of `T`.
        pub trait SampleRange<T> {
            /// Draw one sample from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_span(self.start, self.end, false, rng)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_span(*self.start(), *self.end(), true, rng)
            }
        }
    }
}

/// User-facing RNG methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use crate::{Rng, RngCore};

    /// Subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (fewer if the slice is
        /// shorter). The stub returns a concrete iterator over references,
        /// matching how the workspace consumes the real return type.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let k = amount.min(self.len());
            let mut idx: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher–Yates: the first k positions become the sample.
            for i in 0..k {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx.truncate(k);
            idx.into_iter().map(|i| &self[i]).collect::<Vec<_>>().into_iter()
        }
    }

    impl<T> SliceRandom for Vec<T> {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            self.as_slice().choose(rng)
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            self.as_slice().choose_multiple(rng, amount)
        }
    }

    /// Iterator-based selection (subset of `rand::seq::IteratorRandom`) —
    /// included for completeness; unused paths compile away.
    pub trait IteratorRandom: Iterator + Sized {
        /// Reservoir-sample one element.
        fn choose<R: RngCore + ?Sized>(mut self, rng: &mut R) -> Option<Self::Item> {
            let mut picked = self.next()?;
            let mut seen = 1usize;
            for item in self {
                seen += 1;
                if rng.gen_range(0..seen) == 0 {
                    picked = item;
                }
            }
            Some(picked)
        }
    }

    impl<I: Iterator> IteratorRandom for I {}
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::{IteratorRandom, SliceRandom};
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x = a.gen_range(10..20);
            assert_eq!(x, b.gen_range(10..20));
            assert!((10..20).contains(&x));
        }
        let f = a.gen_range(0.25f64..0.75);
        assert!((0.25..0.75).contains(&f));
        let i = a.gen_range(-5i64..=5);
        assert!((-5..=5).contains(&i));
    }

    #[test]
    fn slice_helpers() {
        let mut rng = StdRng::seed_from_u64(7);
        let v = vec![1, 2, 3, 4, 5];
        assert!(v.choose(&mut rng).is_some());
        let picked: Vec<i32> = v.choose_multiple(&mut rng, 3).copied().collect();
        assert_eq!(picked.len(), 3);
        let distinct: std::collections::BTreeSet<i32> = picked.iter().copied().collect();
        assert_eq!(distinct.len(), 3);
        let empty: Vec<i32> = vec![];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}

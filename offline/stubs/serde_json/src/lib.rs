//! Offline stand-in for `serde_json`.
//!
//! Compiles the workspace without crates.io access. Every serialization
//! entry point returns [`Error`] at runtime (the stub `serde_derive`
//! generates marker impls only, so there is nothing to serialize with).
//! Tests that exercise persistence are expected to fail under the stub;
//! everything else runs normally. See `offline/README.md`.

use std::collections::BTreeMap;
use std::fmt;

/// Error type mirroring `serde_json::Error`.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

fn unavailable<T>(what: &str) -> Result<T> {
    Err(Error {
        msg: format!(
            "serde_json offline stub: {what} is unavailable without the real serde crates \
             (run `offline/use-real-crates.sh` in a networked environment)"
        ),
    })
}

/// Stub of `serde_json::to_string`: always errors at runtime.
pub fn to_string<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    unavailable("to_string")
}

/// Stub of `serde_json::to_string_pretty`: always errors at runtime.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    unavailable("to_string_pretty")
}

/// Stub of `serde_json::from_str`: always errors at runtime.
pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    unavailable("from_str")
}

/// Minimal mirror of `serde_json::Value` (enough surface for tests to
/// typecheck; values are never produced at runtime under the stub).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON null.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as f64 in the stub).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// True when the value is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// True when the value is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// True when the value is null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Unsigned integer accessor.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        matches!(self, Value::Number(n) if *n == *other as f64)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl serde::Serialize for Value {}
impl<'de> serde::Deserialize<'de> for Value {}

//! Offline stand-in for `serde`.
//!
//! This crate exists so the workspace can **compile and run its logic tests
//! in a sandbox with no crates.io access** (see `offline/README.md`). The
//! traits are marker-only: `#[derive(Serialize, Deserialize)]` produces empty
//! impls, and `serde_json`'s stub returns a runtime error from every
//! serialization entry point. Code that round-trips JSON therefore fails *at
//! runtime* with a clear message instead of failing the whole build at
//! dependency resolution.

/// Marker trait mirroring `serde::Serialize` (no methods in the stub).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the stub).
pub trait Deserialize<'de>: Sized {}

/// Mirror of `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

/// Mirror of `serde::de`.
pub mod de {
    pub use crate::Deserialize;

    /// Mirror of `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T> DeserializeOwned for T where T: for<'de> crate::Deserialize<'de> {}
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

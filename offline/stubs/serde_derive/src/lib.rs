//! Offline stand-in for `serde_derive`.
//!
//! The real derive generates full (de)serialization code; this stub only
//! emits an empty marker impl so types typecheck against the stub `serde`
//! traits. It deliberately avoids `syn`/`quote` (not available offline) and
//! extracts the type name by scanning the raw token stream. Only
//! non-generic `struct`/`enum` items are supported, which covers every
//! derive site in this workspace.

use proc_macro::{TokenStream, TokenTree};

/// `#[derive(Serialize)]`: emits `impl ::serde::Serialize for T {}`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}").parse().unwrap()
}

/// `#[derive(Deserialize)]`: emits `impl<'de> ::serde::Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}").parse().unwrap()
}

fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                match iter.next() {
                    Some(TokenTree::Ident(name)) => {
                        if let Some(TokenTree::Punct(p)) = iter.next() {
                            if p.as_char() == '<' {
                                panic!(
                                    "offline serde_derive stub: generic type `{name}` is not \
                                     supported; derive on a concrete type or extend the stub"
                                );
                            }
                        }
                        return name.to_string();
                    }
                    other => panic!("offline serde_derive stub: expected type name, got {other:?}"),
                }
            }
        }
    }
    panic!("offline serde_derive stub: no struct/enum found in derive input")
}

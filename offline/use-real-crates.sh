#!/bin/sh
# Switch the workspace from the offline stub profile to the real crates.io
# dependencies, for networked environments (CI runs this before building).
# Reversible with: git checkout .cargo
set -eu
cd "$(dirname "$0")/.."
if [ -f .cargo/config.toml ]; then
    rm .cargo/config.toml
    echo "Removed .cargo/config.toml — builds now resolve crates.io."
else
    echo "Already using real crates (.cargo/config.toml absent)."
fi

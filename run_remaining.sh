#!/bin/sh
set -e
cd "$(dirname "$0")"
BIN=./target/release
for exp in fig5 fig6 fig7 exp_ambiguity exp_ablation exp_sensitivity; do
  echo "== running $exp =="
  "$BIN/$exp" > "results/$exp.txt" 2>&1
done
echo "remaining experiments done"

#!/bin/sh
# Reproduce every paper table/figure at full scale; outputs under results/.
set -e
cd "$(dirname "$0")"
BIN=./target/release
for exp in table1 table2 table3 fig4 fig5 fig6 fig7 exp_ambiguity exp_ablation exp_semantics; do
  echo "== running $exp =="
  "$BIN/$exp" > "results/$exp.txt" 2>&1
done
echo "== running exp_sensitivity (quarter scale; see EXPERIMENTS.md) =="
UDI_SCALE=0.25 "$BIN/exp_sensitivity" > results/exp_sensitivity.txt 2>&1
echo "== running exp_scale (full 1k-100k run; refreshes results/BENCH_scale.json) =="
"$BIN/exp_scale" > results/exp_scale.txt 2>&1
echo "all experiments done"

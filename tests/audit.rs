//! Workspace audit gate: `cargo test` fails if any source file violates a
//! UDI invariant lint. The same check runs as a standalone binary
//! (`cargo run -p udi-audit -- --deny-all`) in CI; this test wires it into
//! the tier-1 suite so a violation cannot land through either door.

use udi_audit::{all_lints, audit_workspace, find_workspace_root};

#[test]
fn workspace_tree_is_audit_clean() {
    let root = find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let report = audit_workspace(&root, &all_lints()).expect("audit ran");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — walker broken?",
        report.files_scanned
    );
    if !report.is_clean() {
        let mut msg = String::from("udi-audit violations:\n");
        for d in &report.diagnostics {
            msg.push_str(&format!("{d}\n"));
        }
        panic!("{msg}");
    }
}

//! Workspace audit gate: `cargo test` fails if any source file violates a
//! UDI invariant lint or workspace pass. The same check runs as a
//! standalone binary (`cargo run -p udi-audit -- --deny-all`) in CI; this
//! test wires it into the tier-1 suite so a violation cannot land through
//! either door.

use std::sync::Arc;

use udi_audit::{all_lints, audit_workspace_observed, find_workspace_root};
use udi_obs::{MemorySink, Recorder, TraceSummary};

#[test]
fn workspace_tree_is_audit_clean() {
    let root = find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let sink = Arc::new(MemorySink::new());
    let rec = Recorder::new(sink.clone());
    let report = audit_workspace_observed(&root, &all_lints(), &rec).expect("audit ran");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — walker broken?",
        report.files_scanned
    );
    if !report.is_clean() {
        let mut msg = String::from("udi-audit violations:\n");
        for d in &report.diagnostics {
            msg.push_str(&format!("{d}\n"));
        }
        panic!("{msg}");
    }

    // The lex-once contract: the whole audit — file lints, call graph,
    // CFG construction, and all seven workspace passes — lexes each file
    // exactly once.
    assert_eq!(
        report.lex_count, report.files_scanned,
        "token streams must be shared across passes, not re-lexed"
    );

    // Per-pass timings flow through udi-obs: every stage span must be
    // present in the trace exactly once.
    let summary = TraceSummary::from_events(&sink.events());
    for span in [
        "audit.load",
        "audit.pass.file-lints",
        "audit.graph.call",
        "audit.cfg.build",
        "audit.pass.panic-reachability",
        "audit.pass.crate-layering",
        "audit.pass.concurrency",
        "audit.pass.lock-order",
        "audit.pass.determinism",
        "audit.pass.error-discard",
        "audit.pass.dead-exports",
        "audit.pass.hot-path-cert",
    ] {
        let stat = summary
            .span(span)
            .unwrap_or_else(|| panic!("missing audit span `{span}` in obs trace"));
        assert_eq!(stat.count, 1, "span `{span}` recorded {} times", stat.count);
    }
}

//! Snapshot persistence across randomized catalogs: a saved-and-reloaded
//! system must answer identically, always.

use proptest::prelude::*;

use udi::core::{UdiConfig, UdiSystem};
use udi::query::parse_query;
use udi::store::{Catalog, Table};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snapshot_round_trip_preserves_everything(
        sources in proptest::collection::vec(
            prop::sample::subsequence(
                vec!["name", "phone", "phone no", "tel", "address", "year", "price"],
                2..6,
            ),
            2..6,
        ),
        seed in 0u64..100,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut catalog = Catalog::new();
        for (i, attrs) in sources.iter().enumerate() {
            let mut t = Table::new(format!("s{i}"), attrs.clone());
            for _ in 0..rng.gen_range(1..4usize) {
                let row: Vec<String> =
                    attrs.iter().map(|_| format!("v{}", rng.gen_range(0..6))).collect();
                t.push_raw_row(row).unwrap();
            }
            catalog.add_source(t).unwrap();
        }
        let original = match UdiSystem::setup(catalog, UdiConfig::default()) {
            Ok(u) => u,
            Err(_) => return Ok(()),
        };
        let json = match original.to_json() {
            Ok(j) => j,
            // Offline stub JSON backend (see offline/README.md): skip.
            Err(_) => return Ok(()),
        };
        let loaded = UdiSystem::from_json(&json).expect("deserializes");

        prop_assert_eq!(loaded.consolidated(), original.consolidated());
        prop_assert_eq!(loaded.pmed().len(), original.pmed().len());
        for attr in ["name", "phone", "address", "year", "price"] {
            let q = parse_query(&format!("SELECT {attr} FROM T")).unwrap();
            let mut a = original.answer(&q).combined();
            let mut b = loaded.answer(&q).combined();
            a.sort_by(|x, y| x.values.cmp(&y.values));
            b.sort_by(|x, y| x.values.cmp(&y.values));
            prop_assert_eq!(a.len(), b.len(), "attr {}", attr);
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(&x.values, &y.values);
                prop_assert!((x.probability - y.probability).abs() < 1e-12);
            }
        }
        // A second round trip stays loadable and equivalent. (Byte
        // identity is not guaranteed: serde_json's float parsing can land
        // one ULP off the original at extreme exponents, which is
        // irrelevant to answer semantics.)
        let json2 = loaded.to_json().expect("serializes");
        let loaded2 = UdiSystem::from_json(&json2).expect("re-deserializes");
        prop_assert_eq!(loaded2.consolidated(), loaded.consolidated());
        prop_assert_eq!(loaded2.pmed().len(), loaded.pmed().len());
    }
}

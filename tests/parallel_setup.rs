//! Parallel p-mapping generation must be bit-identical to the sequential
//! path: sources are independent and processed in deterministic order, so
//! the thread count is purely a wall-clock knob.

use udi::core::{UdiConfig, UdiSystem};
use udi::datagen::{generate, Domain, GenConfig};
use udi::eval::generate_workload;

fn setup(threads: usize) -> (UdiSystem, udi::datagen::GeneratedDomain) {
    let gen = generate(
        Domain::Bib,
        &GenConfig {
            n_sources: Some(60),
            seed: 1234,
            ..GenConfig::default()
        },
    );
    let config = UdiConfig {
        threads,
        ..UdiConfig::default()
    };
    let udi = UdiSystem::setup(gen.catalog.clone(), config).expect("setup");
    (udi, gen)
}

#[test]
fn thread_count_does_not_change_the_system() {
    let (seq, gen) = setup(1);
    let (par, _) = setup(4);

    // Identical p-med-schema.
    assert_eq!(seq.pmed().len(), par.pmed().len());
    for ((ma, pa), (mb, pb)) in seq.pmed().schemas().iter().zip(par.pmed().schemas()) {
        assert_eq!(ma, mb);
        assert!((pa - pb).abs() < 1e-15);
    }
    // Identical consolidated schema and p-mappings.
    assert_eq!(seq.consolidated(), par.consolidated());
    for src in 0..seq.catalog().source_count() {
        let a = seq.consolidated_pmapping(src);
        let b = par.consolidated_pmapping(src);
        assert_eq!(a.len(), b.len(), "source {src}");
        for ((ma, pa), (mb, pb)) in a.mappings().iter().zip(b.mappings()) {
            assert_eq!(ma, mb, "source {src}");
            assert!((pa - pb).abs() < 1e-12, "source {src}");
        }
    }
    // Identical answers on the workload.
    for q in generate_workload(&gen, 10, 99) {
        let x = seq.answer(&q).combined();
        let y = par.answer(&q).combined();
        assert_eq!(x.len(), y.len(), "{q}");
        for (a, b) in x.iter().zip(&y) {
            assert_eq!(a.values, b.values, "{q}");
            assert!((a.probability - b.probability).abs() < 1e-12, "{q}");
        }
    }
}

#[test]
fn oversubscribed_thread_count_is_fine() {
    // More threads than sources must not panic or change results.
    let gen = generate(
        Domain::Movie,
        &GenConfig {
            n_sources: Some(5),
            seed: 7,
            ..GenConfig::default()
        },
    );
    let config = UdiConfig {
        threads: 64,
        ..UdiConfig::default()
    };
    let udi = UdiSystem::setup(gen.catalog.clone(), config).expect("setup");
    assert_eq!(udi.report().n_sources, 5);
}

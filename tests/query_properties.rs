//! Property tests for the query layer: parser round-trips and the
//! probability algebra of answer sets.

use proptest::prelude::*;

use udi::query::{parse_query, AnswerSet, AnswerTuple, CompareOp, Predicate, Query};
use udi::store::{SourceId, Value};

/// Strategy: queries over a safe identifier/value alphabet.
fn queries() -> impl Strategy<Value = Query> {
    let ident = "[a-z][a-z0-9_]{0,8}";
    let op = prop::sample::select(vec![
        CompareOp::Eq,
        CompareOp::Ne,
        CompareOp::Lt,
        CompareOp::Le,
        CompareOp::Gt,
        CompareOp::Ge,
        CompareOp::Like,
    ]);
    let value = prop_oneof![
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        "[a-zA-Z0-9 %_.-]{0,12}".prop_map(Value::text),
        (-1000.0f64..1000.0).prop_map(|f| Value::float((f * 100.0).round() / 100.0)),
    ];
    let predicate = (ident, op, value).prop_map(|(attribute, op, value)| Predicate {
        attribute,
        op,
        value,
    });
    (
        proptest::collection::vec(ident, 1..5),
        proptest::collection::vec(predicate, 0..4),
    )
        .prop_map(|(select, predicates)| Query {
            select,
            predicates,
            from: "t".to_owned(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse(display(q))` is the identity on well-formed queries.
    #[test]
    fn parser_round_trips_display(q in queries()) {
        let rendered = q.to_string();
        let parsed = parse_query(&rendered).unwrap_or_else(|e| {
            panic!("failed to reparse {rendered:?}: {e}")
        });
        prop_assert_eq!(parsed, q);
    }

    /// Combined (deduplicated, disjunction) answers: probabilities stay in
    /// (0, 1], are at least the per-source maximum for that tuple, never
    /// exceed the per-source sum, and ranking is descending.
    #[test]
    fn answer_combination_algebra(
        per_source in proptest::collection::vec(
            proptest::collection::vec((0u8..4, 0.01f64..1.0), 0..6),
            1..4,
        )
    ) {
        let mut set = AnswerSet::new();
        for (i, tuples) in per_source.iter().enumerate() {
            // Deduplicate tuples within a source (a source reports each
            // distinct tuple once).
            let mut seen = std::collections::HashSet::new();
            let ts: Vec<AnswerTuple> = tuples
                .iter()
                .filter(|(v, _)| seen.insert(*v))
                .map(|&(v, p)| AnswerTuple {
                    values: vec![Value::Int(v as i64)],
                    probability: p,
                })
                .collect();
            set.add_source(SourceId(i as u32), ts);
        }
        let combined = set.combined();

        // Per-tuple bounds.
        for t in &combined {
            let per: Vec<f64> = set
                .by_source()
                .iter()
                .flat_map(|(_, ts)| ts.iter())
                .filter(|u| u.values == t.values)
                .map(|u| u.probability)
                .collect();
            let max = per.iter().copied().fold(0.0_f64, f64::max);
            let sum: f64 = per.iter().sum();
            prop_assert!(t.probability > 0.0 && t.probability <= 1.0 + 1e-12);
            prop_assert!(t.probability >= max - 1e-12, "disjunction ≥ max");
            prop_assert!(t.probability <= sum + 1e-12, "disjunction ≤ sum");
        }
        // Ranking is descending.
        for w in combined.windows(2) {
            prop_assert!(w[0].probability >= w[1].probability - 1e-12);
        }
        // Dedup: distinct values only.
        let distinct: std::collections::HashSet<_> =
            combined.iter().map(|t| t.values.clone()).collect();
        prop_assert_eq!(distinct.len(), combined.len());
    }

    /// Flat answers are preserved verbatim: `flat()` concatenates what the
    /// sources reported, in order.
    #[test]
    fn flat_preserves_source_reports(
        probs in proptest::collection::vec(0.01f64..1.0, 1..8)
    ) {
        let mut set = AnswerSet::new();
        let tuples: Vec<AnswerTuple> = probs
            .iter()
            .enumerate()
            .map(|(i, &p)| AnswerTuple { values: vec![Value::Int(i as i64)], probability: p })
            .collect();
        set.add_source(SourceId(0), tuples.clone());
        let flat = set.flat();
        prop_assert_eq!(flat.len(), tuples.len());
        for (a, b) in flat.iter().zip(&tuples) {
            prop_assert_eq!(&a.values, &b.values);
            prop_assert_eq!(a.probability, b.probability);
        }
    }
}

//! Property tests for the interprocedural effect-inference engine
//! (`udi_audit::effects::solve`), over arbitrary generated call graphs —
//! cycles, self-loops, and disconnected nodes included:
//!
//! - **deterministic**: the same graph always yields the same summaries;
//! - **extensive**: a fn's own local effects never disappear from its
//!   summary;
//! - **sound and complete**: each summary equals the union of local
//!   effects over the BFS-reachable set (the certificate's spec);
//! - **monotone**: adding a call edge never removes an effect from any
//!   summary — the property that makes the ratchet meaningful.

use std::collections::{BTreeSet, VecDeque};

use proptest::prelude::*;
use udi_audit::effects::{solve, Effect, EffectSet};

/// Cap on generated graph size; raw indices are folded modulo `n`.
const CAP: usize = 20;

fn effect_set(code: u8) -> EffectSet {
    let mut s = EffectSet::EMPTY;
    for (i, e) in Effect::ALL.into_iter().enumerate() {
        if code & (1 << i) != 0 {
            s.insert(e);
        }
    }
    s
}

/// Reference semantics: union of local effects over everything reachable
/// from `root` (root included).
fn reachable_union(adj: &[BTreeSet<usize>], local: &[EffectSet], root: usize) -> EffectSet {
    let mut seen = BTreeSet::from([root]);
    let mut queue = VecDeque::from([root]);
    let mut fx = EffectSet::EMPTY;
    while let Some(v) = queue.pop_front() {
        fx = fx.union(local.get(v).copied().unwrap_or(EffectSet::EMPTY));
        for &w in adj.get(v).into_iter().flatten() {
            if seen.insert(w) {
                queue.push_back(w);
            }
        }
    }
    fx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn effect_inference_is_deterministic_sound_and_monotone(
        n in 1usize..CAP,
        raw_edges in proptest::collection::vec((0usize..64, 0usize..64), 0..60),
        raw_locals in proptest::collection::vec(0u8..32, CAP..CAP + 1),
        raw_extra in (0usize..64, 0usize..64),
    ) {
        let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for &(u, v) in &raw_edges {
            if let Some(out) = adj.get_mut(u % n) {
                out.insert(v % n);
            }
        }
        let local: Vec<EffectSet> = (0..n)
            .map(|i| effect_set(raw_locals.get(i).copied().unwrap_or(0)))
            .collect();

        let summary = solve(n, &adj, &local);
        prop_assert_eq!(summary.len(), n);

        // Deterministic: a second run over the same inputs agrees exactly.
        prop_assert_eq!(&solve(n, &adj, &local), &summary);

        for f in 0..n {
            let got = summary.get(f).copied().unwrap_or(EffectSet::EMPTY);
            let own = local.get(f).copied().unwrap_or(EffectSet::EMPTY);
            // Extensive: local effects are never dropped.
            prop_assert!(own.is_subset(got), "fn {f}: local {own} ⊄ summary {got}");
            // Sound + complete against the reachability spec.
            let want = reachable_union(&adj, &local, f);
            prop_assert_eq!(got, want, "fn {f}: summary {got} != reachable union {want}");
        }

        // Monotone: one more call edge can only grow summaries.
        let (u, v) = (raw_extra.0 % n, raw_extra.1 % n);
        let mut grown = adj.clone();
        if let Some(out) = grown.get_mut(u) {
            out.insert(v);
        }
        let after = solve(n, &grown, &local);
        for f in 0..n {
            let before = summary.get(f).copied().unwrap_or(EffectSet::EMPTY);
            let now = after.get(f).copied().unwrap_or(EffectSet::EMPTY);
            prop_assert!(
                before.is_subset(now),
                "adding edge {u}→{v} shrank fn {f}: {before} → {now}"
            );
        }
    }
}

//! Property tests for the udi-audit CFG builder.
//!
//! The builder consumes *arbitrary* token streams — fn bodies are opaque
//! brace-balanced ranges, and the fixture proves nothing about the wider
//! universe of inputs the lexer can produce. Two properties must hold
//! unconditionally:
//!
//! 1. **Total**: `build_cfg` never panics and always yields a graph that
//!    passes [`Cfg::check_invariants`] (entry/exit well-formed, successor
//!    indices in range, no duplicate edges).
//! 2. **Deterministic**: the same tokens produce byte-identical layout —
//!    block count, edges, and statement spans — across repeated builds.
//!
//! A third, non-property test drives the builder over **every** fn body in
//! this workspace, so the real corpus (not just generated streams) is
//! covered on every `cargo test`.

use proptest::prelude::*;

use udi_audit::cfg::{build_cfg, ENTRY, EXIT};
use udi_audit::collect_sources;
use udi_audit::find_workspace_root;
use udi_audit::lexer::lex;
use udi_audit::parser::parse_items;

/// Fragments that compose into plausible-to-pathological Rust-ish bodies.
/// Deliberately includes unbalanced-looking and keyword-heavy torture
/// cases; the lexer accepts them all.
fn body_fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("let x = f(a, b);".to_owned()),
        Just("let _ = fallible();".to_owned()),
        Just("if c { g(); } else if d { h(); } else { k(); }".to_owned()),
        Just("match v { A => 1, B(x) => { x }, _ => 0, };".to_owned()),
        Just("while p(x) { x += 1; }".to_owned()),
        Just("loop { if done { break; } continue; }".to_owned()),
        Just("for i in 0..n { acc += i; }".to_owned()),
        Just("return q?;".to_owned()),
        Just("drop(guard);".to_owned()),
        Just("let g = M.lock();".to_owned()),
        Just("fn nested() { inner(); }".to_owned()),
        Just("{ { { deep(); } } }".to_owned()),
        Just("x.method::<T>(y)?;".to_owned()),
        Just("// comment\n/* block */".to_owned()),
        Just("\"string { not a brace }\";".to_owned()),
        Just("'a'; '\\n';".to_owned()),
        Just("if let Some(v) = o { use_it(v); }".to_owned()),
        Just("; ; ;".to_owned()),
        "[a-z =+;(){}]{0,24}".prop_map(balance_braces),
    ]
}

/// Brace-balance an arbitrary snippet so it can embed in a fn body.
fn balance_braces(s: String) -> String {
    let mut out = String::new();
    let mut depth = 0i64;
    for c in s.chars() {
        match c {
            '{' => depth += 1,
            '}' if depth == 0 => continue,
            '}' => depth -= 1,
            _ => {}
        }
        out.push(c);
    }
    out.extend(std::iter::repeat_n('}', depth.max(0) as usize));
    out
}

fn arb_body() -> impl Strategy<Value = String> {
    proptest::collection::vec(body_fragment(), 0..12)
        .prop_map(|frags| format!("{{ {} }}", frags.join("\n")))
}

/// Flat structural digest of a CFG: any layout nondeterminism shows up as
/// a digest mismatch.
fn digest(tokens: &[udi_audit::lexer::Token], body: std::ops::Range<usize>) -> String {
    let cfg = build_cfg(tokens, body);
    let mut out = String::new();
    for (b, blk) in cfg.blocks.iter().enumerate() {
        out.push_str(&format!("b{b}->{:?}", blk.succs));
        if let Some(s) = &blk.stmt {
            out.push_str(&format!(" [{:?} {}..{}]", s.kind, s.span.start, s.span.end));
        }
        out.push('\n');
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn builder_is_total_on_arbitrary_bodies(src in arb_body()) {
        let tokens = lex(&src);
        let cfg = build_cfg(&tokens, 0..tokens.len());
        prop_assert!(cfg.check_invariants().is_ok(), "{:?}", cfg.check_invariants());
        prop_assert!(cfg.blocks.len() >= 2);
        prop_assert!(cfg.blocks[EXIT].succs.is_empty());
        prop_assert!(cfg.blocks[ENTRY].stmt.is_none());
    }

    #[test]
    fn layout_is_deterministic(src in arb_body()) {
        let tokens = lex(&src);
        let first = digest(&tokens, 0..tokens.len());
        for _ in 0..3 {
            prop_assert_eq!(&first, &digest(&tokens, 0..tokens.len()));
        }
    }

    #[test]
    fn builder_survives_raw_token_soup(src in "[a-zA-Z0-9{}()\\[\\];,.:=<>&|?!'\"/* \n-]{0,200}") {
        // Not even brace-balanced: the builder must cope with any range
        // the parser could conceivably hand it.
        let tokens = lex(&src);
        let cfg = build_cfg(&tokens, 0..tokens.len());
        prop_assert!(cfg.check_invariants().is_ok());
    }
}

#[test]
fn every_workspace_fn_body_builds_a_valid_cfg() {
    let root = find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let sources = collect_sources(&root).expect("workspace sources");
    let mut bodies = 0usize;
    for (path, _class) in &sources {
        let text = std::fs::read_to_string(path).expect("readable source");
        let tokens = lex(&text);
        let items = parse_items(&tokens);
        for item in &items {
            let Some(body) = item.body.clone() else {
                continue;
            };
            let cfg = build_cfg(&tokens, body.clone());
            if let Err(e) = cfg.check_invariants() {
                panic!(
                    "invalid CFG for body at {}:{}: {e}",
                    path.display(),
                    item.line
                );
            }
            // Determinism over the real corpus too.
            assert_eq!(
                digest(&tokens, body.clone()),
                digest(&tokens, body),
                "nondeterministic layout at {}:{}",
                path.display(),
                item.line
            );
            bodies += 1;
        }
    }
    assert!(
        bodies > 500,
        "suspiciously few fn bodies ({bodies}) — parser broken?"
    );
}

//! End-to-end integration through the CSV adoption path: files on disk →
//! catalog → automatic setup → queries. Mirrors what the `udi csv` CLI
//! does, as a library-level test.

use udi::core::{UdiConfig, UdiSystem};
use udi::query::parse_query;
use udi::store::{Catalog, Table, Value};

const SOURCES: &[(&str, &str)] = &[
    (
        "classics",
        "title,year,director\n\
         Casablanca,1942,Michael Curtiz\n\
         Metropolis,1927,Fritz Lang\n",
    ),
    (
        "festival",
        "title,release year,directed by\n\
         Vertigo,1958,Alfred Hitchcock\n\
         Casablanca,1942,Michael Curtiz\n",
    ),
    (
        "modern",
        "title,year,director\n\
         Ratatouille,2007,Brad Bird\n\
         \"Crouching Tiger, Hidden Dragon\",2000,Ang Lee\n",
    ),
];

fn catalog_from_csv() -> Catalog {
    let mut catalog = Catalog::new();
    for (name, text) in SOURCES {
        catalog
            .add_source(Table::from_csv(*name, text).expect("valid csv"))
            .unwrap();
    }
    catalog
}

#[test]
fn csv_sources_integrate_and_answer() {
    let udi = UdiSystem::setup(catalog_from_csv(), UdiConfig::default()).expect("setup");
    // `release year` and `directed by` must be clustered with `year` and
    // `director`.
    let vocab = udi.schema_set().vocab();
    let year = vocab.id_of("year").unwrap();
    let release_year = vocab.id_of("release year").unwrap();
    assert_eq!(
        udi.consolidated().cluster_of(year),
        udi.consolidated().cluster_of(release_year)
    );

    let q = parse_query("SELECT title, director FROM m WHERE year < 1960").unwrap();
    let answers = udi.answer(&q).combined();
    let titles: Vec<String> = answers.iter().map(|t| t.values[0].to_string()).collect();
    assert!(titles.contains(&"Casablanca".to_owned()));
    assert!(
        titles.contains(&"Vertigo".to_owned()),
        "matched through `release year`"
    );
    assert!(titles.contains(&"Metropolis".to_owned()));
    assert!(!titles.contains(&"Ratatouille".to_owned()));

    // Casablanca appears in two sources: disjunction must raise its
    // probability above the single-source answers.
    let casablanca = answers
        .iter()
        .find(|t| t.values[0] == Value::text("Casablanca"))
        .unwrap();
    let vertigo = answers
        .iter()
        .find(|t| t.values[0] == Value::text("Vertigo"))
        .unwrap();
    assert!(casablanca.probability > vertigo.probability);
}

#[test]
fn quoted_csv_values_survive_the_pipeline() {
    let udi = UdiSystem::setup(catalog_from_csv(), UdiConfig::default()).expect("setup");
    let q = parse_query("SELECT title FROM m WHERE director = 'Ang Lee'").unwrap();
    let answers = udi.answer(&q).combined();
    assert_eq!(answers.len(), 1);
    assert_eq!(
        answers[0].values[0],
        Value::text("Crouching Tiger, Hidden Dragon")
    );
}

#[test]
fn csv_round_trip_preserves_catalog() {
    let catalog = catalog_from_csv();
    for (sid, table) in catalog.iter_sources() {
        let re = Table::from_csv(table.name(), &table.to_csv()).unwrap();
        assert_eq!(re.attributes(), table.attributes(), "{sid}");
        assert_eq!(re.to_rows(), table.to_rows(), "{sid}");
    }
}

//! Parallel query execution must be invisible in the output: any thread
//! count, and a warm plan cache versus a cold one, must produce answers
//! **byte-identical** (probabilities compared via `f64::to_bits`) to the
//! sequential, uncached path. The plan cache must also never survive an
//! artifact mutation — `add_source` moves the engine generation, so the
//! next answer recompiles against the new catalog.

use std::sync::{Mutex, OnceLock};

use proptest::prelude::*;
use udi::core::{UdiConfig, UdiSystem};
use udi::datagen::{generate, Domain, GenConfig};
use udi::eval::generate_workload;
use udi::query::{AnswerSet, Query};
use udi::store::Table;

/// Exact fingerprint of an answer set: source id, rendered values, and the
/// raw bit pattern of every probability.
fn bits(set: &AnswerSet) -> Vec<(u32, String, u64)> {
    set.by_source()
        .iter()
        .flat_map(|(sid, ts)| {
            ts.iter()
                .map(|t| (sid.0, format!("{:?}", t.values), t.probability.to_bits()))
        })
        .collect()
}

fn car_fixture(n_sources: usize, seed: u64) -> (udi::datagen::GeneratedDomain, Vec<Query>) {
    let gen = generate(
        Domain::Car,
        &GenConfig {
            n_sources: Some(n_sources),
            seed,
            ..GenConfig::default()
        },
    );
    let queries = generate_workload(&gen, 8, seed.wrapping_add(1));
    (gen, queries)
}

#[test]
fn thread_count_and_plan_temperature_do_not_change_answers() {
    let (gen, queries) = car_fixture(25, 7);
    // `seq` stays sequential; `par` starts at 4 threads and is re-knobbed
    // per iteration. Both caches start cold.
    let seq = UdiSystem::setup(gen.catalog.clone(), UdiConfig::default()).expect("setup");
    let mut par = UdiSystem::setup(
        gen.catalog.clone(),
        UdiConfig {
            threads: 4,
            ..UdiConfig::default()
        },
    )
    .expect("setup");
    for q in &queries {
        let cold_seq = bits(&seq.answer(q));
        let warm_seq = bits(&seq.answer(q));
        assert_eq!(cold_seq, warm_seq, "warm plan changed answers: {q}");
        for threads in [2, 4, 8] {
            par.set_threads(threads);
            assert_eq!(cold_seq, bits(&par.answer(q)), "{threads} threads: {q}");
        }
        // The other serving paths ride the same fan-out.
        for threads in [1, 8] {
            par.set_threads(threads);
            assert_eq!(
                bits(&seq.answer_with_pmed(q)),
                bits(&par.answer_with_pmed(q)),
                "pmed, {threads} threads: {q}"
            );
            assert_eq!(
                bits(&seq.answer_top_mapping(q)),
                bits(&par.answer_top_mapping(q)),
                "top-mapping, {threads} threads: {q}"
            );
            assert_eq!(
                bits(&seq.answer_by_tuple(q)),
                bits(&par.answer_by_tuple(q)),
                "by-tuple, {threads} threads: {q}"
            );
        }
    }
}

#[test]
fn mutations_invalidate_cached_plans() {
    let (gen, queries) = car_fixture(12, 42);
    let mut incr = UdiSystem::setup(gen.catalog.clone(), UdiConfig::default()).expect("setup");
    // Warm every plan against the original catalog.
    for q in &queries {
        incr.answer(q);
        incr.answer_with_pmed(q);
    }
    assert!(incr.plan_cache_len() > 0, "plans were cached");

    let mut extra = Table::new("extra-cars", ["model", "make", "price"]);
    extra.push_raw_row(["Falcon", "Ford", "1000"]).expect("row");
    incr.add_source(extra.clone()).expect("add_source");

    // A batch system over the extended catalog is the ground truth; a
    // stale plan (compiled for one source fewer) could not reproduce it.
    let mut catalog = gen.catalog.clone();
    catalog.add_source(extra).unwrap();
    let batch = UdiSystem::setup(catalog, UdiConfig::default()).expect("setup");
    for q in &queries {
        assert_eq!(bits(&incr.answer(q)), bits(&batch.answer(q)), "{q}");
        assert_eq!(
            bits(&incr.answer_with_pmed(q)),
            bits(&batch.answer_with_pmed(q)),
            "pmed: {q}"
        );
    }
}

#[test]
fn plan_cache_counters_and_source_spans_are_observable() {
    use std::sync::Arc;
    use udi::obs::MemorySink;

    let (gen, queries) = car_fixture(6, 3);
    let mut udi = UdiSystem::setup(gen.catalog.clone(), UdiConfig::default()).expect("setup");
    let sink = Arc::new(MemorySink::new());
    udi.set_sink(Some(sink.clone()));

    let q = &queries[0];
    udi.answer(q);
    udi.answer(q);
    assert_eq!(
        sink.counter_total("query.plan.miss"),
        1,
        "first call compiles"
    );
    assert_eq!(
        sink.counter_total("query.plan.hit"),
        1,
        "second call reuses"
    );
    assert!(udi.plan_cache_len() >= 1);

    // With a trace sink installed, execution emits one span per source,
    // parented under the query.answer span.
    let spans = sink.spans();
    let parent = spans
        .iter()
        .find(|s| s.name == "query.answer")
        .expect("query.answer span")
        .id;
    let per_source: Vec<_> = spans.iter().filter(|s| s.name == "query.source").collect();
    assert_eq!(per_source.len(), 2 * gen.catalog.source_count());
    assert!(per_source.iter().any(|s| s.parent == parent));

    // A mutation moves the generation: the next call must miss again.
    let mut extra = Table::new("extra-cars", ["model", "make", "price"]);
    extra.push_raw_row(["Falcon", "Ford", "1000"]).expect("row");
    udi.add_source(extra).expect("add_source");
    udi.answer(q);
    assert_eq!(
        sink.counter_total("query.plan.miss"),
        2,
        "stale plan recompiled"
    );
}

/// Shared fixture for the property: setup is expensive, so build one
/// system and re-knob its thread count under a lock per case.
fn shared() -> &'static (Mutex<UdiSystem>, Vec<Query>) {
    static FX: OnceLock<(Mutex<UdiSystem>, Vec<Query>)> = OnceLock::new();
    FX.get_or_init(|| {
        let (gen, queries) = car_fixture(18, 1234);
        let udi = UdiSystem::setup(gen.catalog.clone(), UdiConfig::default()).expect("setup");
        (Mutex::new(udi), queries)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any workload query and any thread count, `answer` and
    /// `answer_with_pmed` are byte-identical to the sequential path —
    /// regardless of whether the plan cache is cold (first visit) or warm
    /// (every revisit).
    #[test]
    fn any_thread_count_is_byte_identical(qi in 0usize..8, threads in prop::sample::select(vec![1usize, 2, 4, 8])) {
        let (udi, queries) = shared();
        let mut udi = udi.lock().expect("fixture lock");
        let q = &queries[qi];
        udi.set_threads(1);
        let seq = bits(&udi.answer(q));
        let seq_pmed = bits(&udi.answer_with_pmed(q));
        udi.set_threads(threads);
        prop_assert_eq!(seq, bits(&udi.answer(q)), "{} threads: {}", threads, q);
        prop_assert_eq!(seq_pmed, bits(&udi.answer_with_pmed(q)), "pmed {} threads: {}", threads, q);
    }
}

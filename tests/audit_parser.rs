//! Property tests for udi-audit's recursive-descent item parser, plus
//! call-chain rendering tests for the panic-reachability pass on a
//! synthetic in-memory workspace.
//!
//! The parser invariant under test: for any soup of well-formed items —
//! interleaved with doc comments, attributes, test modules, and
//! adversarial string literals containing braces — every generated item is
//! recovered with its name, kind, visibility, and test-scope intact, and
//! the parser never panics or derails onto later items.

use proptest::prelude::*;

use udi_audit::config::Config;
use udi_audit::lexer::lex;
use udi_audit::lints::PANIC_REACHABILITY;
use udi_audit::parser::{parse_items, Item, ItemKind, Vis};
use udi_audit::{all_lints, run_audit, CodeKind, FileClass, IndexMode, SourceFile, Workspace};

/// One generated item with the facts the parser must recover.
#[derive(Debug, Clone)]
struct GenItem {
    src: String,
    name: String,
    kind: ItemKind,
    vis: Vis,
}

/// Instantiate template `template` with a unique per-soup index so names
/// cannot collide. Each template stresses a different parser path:
/// brace-bearing strings inside fn bodies, attributes before structs,
/// tuple structs, enums with struct variants, doc comments that mention
/// `fn`, and nested inline modules.
fn materialize(idx: usize, template: usize, public: bool) -> GenItem {
    let name = format!("zz_item{idx}");
    let ty_name = format!("ZzType{idx}");
    let (vis_kw, vis) = if public {
        ("pub ", Vis::Pub)
    } else {
        ("", Vis::Private)
    };
    match template {
        0 => GenItem {
            src: format!(
                "{vis_kw}fn {name}(x: u32) -> u32 {{ let s = \"}} adversarial {{\"; x + s.len() as u32 }}"
            ),
            name,
            kind: ItemKind::Fn,
            vis,
        },
        1 => GenItem {
            src: format!("#[derive(Debug)]\n{vis_kw}struct {ty_name} {{ field: u32 }}"),
            name: ty_name,
            kind: ItemKind::Struct,
            vis,
        },
        2 => GenItem {
            src: format!("{vis_kw}struct {ty_name}(u32, Vec<String>);"),
            name: ty_name,
            kind: ItemKind::Struct,
            vis,
        },
        3 => GenItem {
            src: format!("{vis_kw}enum {ty_name} {{ A, B(u32), C {{ x: u8 }} }}"),
            name: ty_name,
            kind: ItemKind::Enum,
            vis,
        },
        4 => {
            let upper = name.to_uppercase();
            GenItem {
                src: format!("{vis_kw}const {upper}: u32 = 7;"),
                name: upper,
                kind: ItemKind::Const,
                vis,
            }
        }
        5 => {
            let upper = name.to_uppercase();
            GenItem {
                src: format!("{vis_kw}static {upper}: &str = \"static {{ }} text\";"),
                name: upper,
                kind: ItemKind::Static { mutable: false },
                vis,
            }
        }
        6 => GenItem {
            src: format!("{vis_kw}type {ty_name} = Result<Vec<u32>, String>;"),
            name: ty_name,
            kind: ItemKind::TypeAlias,
            vis,
        },
        7 => GenItem {
            src: format!("{vis_kw}trait {ty_name} {{ fn m(&self) -> u32 {{ 1 }} }}"),
            name: ty_name,
            kind: ItemKind::Trait,
            vis,
        },
        8 => GenItem {
            src: format!(
                "/// Doc comment with fn fake() {{ }} inside.\n{vis_kw}mod {name} {{ pub fn nested_{name}() {{}} }}"
            ),
            name,
            kind: ItemKind::Mod,
            vis,
        },
        _ => GenItem {
            src: format!("{vis_kw}fn {name}<'a, T: Clone>(v: &'a [T]) -> usize {{ v.len() }}"),
            name,
            kind: ItemKind::Fn,
            vis,
        },
    }
}

fn find<'a>(items: &'a [Item], name: &str) -> Option<&'a Item> {
    items.iter().find(|i| i.name == name)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn item_soup_round_trips(
        picks in prop::collection::vec((0usize..10, any::<bool>()), 1..12),
        wrap_tail_in_test_mod in any::<bool>(),
    ) {
        let gens: Vec<GenItem> = picks
            .iter()
            .enumerate()
            .map(|(i, (template, public))| materialize(i, *template, *public))
            .collect();

        let n_plain = if wrap_tail_in_test_mod { gens.len() / 2 } else { gens.len() };
        let mut src = String::from("//! generated soup\n");
        for g in &gens[..n_plain] {
            src.push_str(&g.src);
            src.push('\n');
        }
        if wrap_tail_in_test_mod {
            src.push_str("#[cfg(test)]\nmod tests {\n");
            for g in &gens[n_plain..] {
                src.push_str(&g.src);
                src.push('\n');
            }
            src.push_str("}\n");
        }

        let tokens = lex(&src);
        let items = parse_items(&tokens);

        for (i, g) in gens.iter().enumerate() {
            let item = find(&items, &g.name);
            prop_assert!(item.is_some(), "item `{}` not recovered from:\n{}", &g.name, &src);
            let item = item.unwrap();
            prop_assert_eq!(&item.kind, &g.kind, "kind of `{}` in:\n{}", &g.name, &src);
            prop_assert_eq!(item.vis, g.vis, "vis of `{}` in:\n{}", &g.name, &src);
            let expect_test = wrap_tail_in_test_mod && i >= n_plain;
            prop_assert_eq!(item.in_test, expect_test, "in_test of `{}` in:\n{}", &g.name, &src);
            if expect_test {
                prop_assert_eq!(item.module_path.as_slice(), &["tests".to_owned()][..]);
            } else {
                prop_assert!(item.module_path.is_empty());
            }
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_text(text in "[ -~\n]{0,400}") {
        // Total garbage must not panic the lexer or parser.
        let tokens = lex(&text);
        let _ = parse_items(&tokens);
    }
}

// ------------------------------------------------- call-chain rendering

fn mem_file(crate_name: &str, rel: &str, src: &str) -> SourceFile {
    let tokens = lex(src);
    let items = parse_items(&tokens);
    SourceFile {
        rel: rel.to_owned(),
        class: FileClass {
            crate_name: crate_name.to_owned(),
            kind: CodeKind::Lib,
        },
        tokens,
        items,
    }
}

fn reach_config(crates: &[&str]) -> Config {
    Config {
        layers: Default::default(),
        reach_crates: crates.iter().map(|s| (*s).to_owned()).collect(),
        index_sites: IndexMode::Off,
        interior_mutable_allowed: vec!["udi-obs".to_owned()],
        determinism_entries: Vec::new(),
        determinism_exempt: vec!["udi-obs".to_owned()],
        lock_order_exempt: Vec::new(),
        error_discard_exempt: Vec::new(),
        ratchet: None,
        source: None,
        ..Config::default()
    }
}

fn synthetic_workspace(files: Vec<SourceFile>) -> Workspace {
    let lex_count = files.len();
    Workspace {
        root: std::path::PathBuf::from("."),
        files,
        lex_count,
    }
}

#[test]
fn call_chain_renders_shortest_path_root_first() {
    let ws = synthetic_workspace(vec![
        mem_file(
            "udi-core",
            "crates/core/src/lib.rs",
            "pub fn outer() -> u32 { inner() }\nfn inner() -> u32 { udi_similarity::boom() }\n",
        ),
        // udi-similarity is outside the panic-free crate list, so the only
        // diagnostic for this unwrap is the reachability finding on the
        // udi-core root.
        mem_file(
            "udi-similarity",
            "crates/similarity/src/lib.rs",
            "pub fn boom() -> u32 { Some(1).unwrap() }\n",
        ),
    ]);
    let report = run_audit(
        &ws,
        &reach_config(&["udi-core"]),
        &all_lints(),
        &udi_obs::Recorder::disabled(),
    )
    .expect("runs");
    let reach: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.lint == PANIC_REACHABILITY)
        .collect();
    assert_eq!(reach.len(), 1, "{:?}", report.diagnostics);
    let d = reach[0];
    assert_eq!(d.path, "crates/core/src/lib.rs");
    assert_eq!(
        d.notes[0],
        "call chain: udi-core::outer → udi-core::inner → udi-similarity::boom"
    );
    assert_eq!(
        d.notes[1],
        "panics at crates/similarity/src/lib.rs:1:32 (`unwrap`)"
    );
}

#[test]
fn direct_panic_renders_single_hop_chain() {
    // The local no-panic-in-lib lint fires on the same site; the
    // reachability diagnostic must still render a one-element chain.
    let ws = synthetic_workspace(vec![mem_file(
        "udi-core",
        "crates/core/src/lib.rs",
        "pub fn direct() { panic!(\"no\") }\n",
    )]);
    let report = run_audit(
        &ws,
        &reach_config(&["udi-core"]),
        &all_lints(),
        &udi_obs::Recorder::disabled(),
    )
    .expect("runs");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.lint == PANIC_REACHABILITY)
        .expect("reachability diagnostic");
    assert_eq!(d.notes[0], "call chain: udi-core::direct");
    assert_eq!(
        d.notes[1],
        "panics at crates/core/src/lib.rs:1:19 (`panic!`)"
    );
}

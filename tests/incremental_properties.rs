//! Equivalence of the incremental setup engine with batch setup, on
//! randomized catalogs: evolving a system must be indistinguishable from
//! rebuilding it.
//!
//! Two properties, mirroring the engine's two mutation families:
//!
//! * `setup(catalog + S)` ≡ `setup(catalog).add_source(S)` — same
//!   p-med-schema, same p-mappings, same answers.
//! * `setup_with_measure(c, feedback.wrap(m))` ≡
//!   `setup(c).apply_feedback(f)` — folding feedback incrementally equals
//!   re-running the whole pipeline under the wrapped measure.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

use udi::core::{Feedback, UdiConfig, UdiSystem};
use udi::query::parse_query;
use udi::similarity::AttributeSimilarity;
use udi::store::{Catalog, Table};

const ATTR_POOL: [&str; 7] = [
    "name", "phone", "phone no", "tel", "address", "year", "price",
];

fn catalog_from(sources: &[Vec<&'static str>]) -> Catalog {
    let mut catalog = Catalog::new();
    for (i, attrs) in sources.iter().enumerate() {
        let mut t = Table::new(format!("s{i}"), attrs.clone());
        let row: Vec<String> = attrs.iter().map(|a| format!("{a}-v{i}")).collect();
        t.push_raw_row(row).unwrap();
        catalog.add_source(t).unwrap();
    }
    catalog
}

/// Assert two systems are observably identical: schema distribution,
/// mappings, and answers over single-attribute projections.
fn assert_equivalent(a: &UdiSystem, b: &UdiSystem) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.pmed().len(), b.pmed().len(), "schema count");
    for ((ma, pa), (mb, pb)) in a.pmed().schemas().iter().zip(b.pmed().schemas()) {
        prop_assert_eq!(ma, mb, "schema content");
        prop_assert!(
            (pa - pb).abs() < 1e-12,
            "schema probability {} vs {}",
            pa,
            pb
        );
    }
    prop_assert_eq!(a.consolidated(), b.consolidated(), "consolidated schema");
    for src in 0..a.catalog().source_count() {
        for schema in 0..a.pmed().len() {
            prop_assert_eq!(
                a.pmapping(src, schema).mappings(),
                b.pmapping(src, schema).mappings(),
                "p-mapping of source {} under schema {}",
                src,
                schema
            );
        }
        prop_assert_eq!(
            a.consolidated_pmapping(src).mappings(),
            b.consolidated_pmapping(src).mappings(),
            "consolidated p-mapping of source {}",
            src
        );
    }
    for attr in ["name", "phone", "address", "year", "price"] {
        let q = parse_query(&format!("SELECT {attr} FROM T")).unwrap();
        let mut xs = a.answer(&q).combined();
        let mut ys = b.answer(&q).combined();
        xs.sort_by(|x, y| x.values.cmp(&y.values));
        ys.sort_by(|x, y| x.values.cmp(&y.values));
        prop_assert_eq!(xs.len(), ys.len(), "answer count for {}", attr);
        for (x, y) in xs.iter().zip(&ys) {
            prop_assert_eq!(&x.values, &y.values);
            prop_assert!((x.probability - y.probability).abs() < 1e-12);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn add_source_equals_batch_setup(
        sources in proptest::collection::vec(
            prop::sample::subsequence(ATTR_POOL.to_vec(), 2..6),
            2..6,
        ),
        extra in prop::sample::subsequence(ATTR_POOL.to_vec(), 2..6),
    ) {
        let mut all = sources.clone();
        all.push(extra.clone());
        let batch = match UdiSystem::setup(catalog_from(&all), UdiConfig::default()) {
            Ok(u) => u,
            Err(_) => return Ok(()), // e.g. matching explosion: nothing to compare
        };
        let mut incr = match UdiSystem::setup(catalog_from(&sources), UdiConfig::default()) {
            Ok(u) => u,
            Err(_) => return Ok(()),
        };
        let mut t = Table::new(format!("s{}", sources.len()), extra.clone());
        let row: Vec<String> =
            extra.iter().map(|a| format!("{a}-v{}", sources.len())).collect();
        t.push_raw_row(row).unwrap();
        if incr.add_source(t).is_err() {
            return Ok(());
        }
        assert_equivalent(&incr, &batch)?;
    }

    #[test]
    fn apply_feedback_equals_wrapped_rebuild(
        sources in proptest::collection::vec(
            prop::sample::subsequence(ATTR_POOL.to_vec(), 2..6),
            2..6,
        ),
        judged in proptest::collection::vec(
            (0usize..ATTR_POOL.len(), 0usize..ATTR_POOL.len(), any::<bool>()),
            1..4,
        ),
    ) {
        let mut feedback = Feedback::new();
        for &(i, j, same) in &judged {
            if i == j {
                continue;
            }
            if same {
                feedback.confirm_same(ATTR_POOL[i], ATTR_POOL[j]);
            } else {
                feedback.confirm_different(ATTR_POOL[i], ATTR_POOL[j]);
            }
        }
        let base = AttributeSimilarity::default();
        let wrapped = feedback.wrap(&base);
        let full = match UdiSystem::setup_with_measure(
            catalog_from(&sources),
            &wrapped,
            UdiConfig::default(),
        ) {
            Ok(u) => u,
            Err(_) => return Ok(()),
        };
        let mut incr = match UdiSystem::setup(catalog_from(&sources), UdiConfig::default()) {
            Ok(u) => u,
            Err(_) => return Ok(()),
        };
        if incr.apply_feedback(&feedback).is_err() {
            return Ok(());
        }
        assert_equivalent(&incr, &full)?;
    }
}

//! Executable versions of the paper's theorems (Sections 3, 5 and 6).

use udi::core::UdiSystem;
use udi::maxent::{
    enumerate_matchings, solve_max_entropy, Correspondence, CorrespondenceSet, MaxEntConfig,
};
use udi::query::parse_query;
use udi::schema::{AttrId, Mapping, MediatedSchema, PMapping, PMedSchema};
use udi::store::{Catalog, Table};

use proptest::prelude::*;

/// Theorem 3.4(1): any (p-med-schema, one-to-one p-mappings) pair can be
/// represented by a single deterministic mediated schema with one-to-many
/// p-mappings. The proof's construction is exactly our consolidation
/// algorithm with all-singleton refinement; here we check the observable
/// consequence — query answers are preserved — on the paper's own example.
#[test]
fn theorem_3_4_subsumption_construction_preserves_answers() {
    // Source S(a, b); p-med-schema M1 = ({a},{b}) 0.7, M2 = ({a,b}) 0.3.
    let mut catalog = Catalog::new();
    let mut s = Table::new("S", ["a", "b"]);
    s.push_raw_row(["x1", "x2"]).unwrap();
    catalog.add_source(s).unwrap();
    let (a, b) = (AttrId(0), AttrId(1));
    let m1 = MediatedSchema::from_slices(&[&[a], &[b]]);
    let m2 = MediatedSchema::from_slices(&[&[a, b]]);
    let pmed = PMedSchema::new(vec![(m1.clone(), 0.7), (m2.clone(), 0.3)]);
    let pm1 = PMapping::new(vec![(Mapping::one_to_one([(a, 0), (b, 1)]), 1.0)]);
    let pm2 = PMapping::new(vec![(Mapping::one_to_one([(a, 0)]), 1.0)]);
    let udi = UdiSystem::from_parts(catalog, pmed, vec![vec![pm1, pm2]]).unwrap();

    // The consolidated schema is deterministic (the theorem's T)...
    assert_eq!(
        udi.consolidated().len(),
        2,
        "T has singleton clusters {{a}}, {{b}}"
    );
    // ...its p-mapping is one-to-many (a maps to both clusters under M2)...
    assert!(udi
        .consolidated_pmapping(0)
        .mappings()
        .iter()
        .any(|(m, _)| !m.is_one_to_one() && !m.is_empty()));
    // ...and answers are identical for all queries.
    for sql in ["SELECT a FROM T", "SELECT b FROM T", "SELECT a, b FROM T"] {
        let q = parse_query(sql).unwrap();
        let direct = udi.answer_with_pmed(&q).combined();
        let cons = udi.answer(&q).combined();
        assert_eq!(direct.len(), cons.len(), "{sql}");
        for (x, y) in direct.iter().zip(&cons) {
            assert_eq!(x.values, y.values, "{sql}");
            assert!((x.probability - y.probability).abs() < 1e-9, "{sql}");
        }
    }
}

/// Theorem 3.5's witness: with one-to-one mappings only, the p-med-schema
/// `M = {M1: ({a1},{a2}) 0.7, M2: ({a1,a2}) 0.3}` cannot be represented by
/// any single mediated schema T. We verify the three behaviours the
/// appendix proof derives, which jointly rule every T out:
/// SELECT a1,a2 must return the mixed tuple (x1,x2); SELECT a1 must return
/// (x1) with probability 1; SELECT a2 must return (x1) with probability .3.
#[test]
fn theorem_3_5_expressive_power_witness() {
    let mut catalog = Catalog::new();
    let mut s = Table::new("S", ["a1", "a2"]);
    s.push_raw_row(["x1", "x2"]).unwrap();
    catalog.add_source(s).unwrap();
    let (a1, a2) = (AttrId(0), AttrId(1));
    let m1 = MediatedSchema::from_slices(&[&[a1], &[a2]]);
    let m2 = MediatedSchema::from_slices(&[&[a1, a2]]);
    let pmed = PMedSchema::new(vec![(m1, 0.7), (m2, 0.3)]);
    // pM1 maps both attributes; pM2 maps A3 = {a1, a2} to a1.
    let pm1 = PMapping::new(vec![(Mapping::one_to_one([(a1, 0), (a2, 1)]), 1.0)]);
    let pm2 = PMapping::new(vec![(Mapping::one_to_one([(a1, 0)]), 1.0)]);
    let udi = UdiSystem::from_parts(catalog, pmed, vec![vec![pm1, pm2]]).unwrap();

    // Q1: the pair (x1, x2) is an answer (T with a1,a2 in one cluster
    // could never produce it).
    let q1 = parse_query("SELECT a1, a2 FROM T").unwrap();
    let ans = udi.answer_with_pmed(&q1).combined();
    assert!(ans
        .iter()
        .any(|t| t.values[0].to_string() == "x1" && t.values[1].to_string() == "x2"));

    // Q2: (x1) with probability 1 (so a1 must always map "left").
    let q2 = parse_query("SELECT a1 FROM T").unwrap();
    let ans = udi.answer_with_pmed(&q2).combined();
    assert_eq!(ans.len(), 1);
    assert!((ans[0].probability - 1.0).abs() < 1e-9);

    // Q3: a2 returns (x1) with probability .3 — the contradiction the proof
    // derives for any single T with one-to-one mappings.
    let q3 = parse_query("SELECT a2 FROM T").unwrap();
    let ans = udi.answer_with_pmed(&q3).combined();
    let p_x1: f64 = ans
        .iter()
        .filter(|t| t.values[0].to_string() == "x1")
        .map(|t| t.probability)
        .sum();
    assert!((p_x1 - 0.3).abs() < 1e-9, "got {p_x1}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 5.2: after normalization, every weighted-correspondence set
    /// admits a consistent p-mapping — and the max-entropy solution is one:
    /// for every correspondence, the mappings containing it carry exactly
    /// its weight (Definition 5.1).
    #[test]
    fn theorem_5_2_normalized_correspondences_admit_consistent_pmapping(
        edges in proptest::collection::vec((0usize..4, 0usize..4, 0.05f64..2.0), 1..9)
    ) {
        let mut seen = std::collections::HashSet::new();
        let raw: Vec<Correspondence> = edges
            .into_iter()
            .filter(|(s, t, _)| seen.insert((*s, *t)))
            .map(|(s, t, w)| Correspondence::new(s, t, w))
            .collect();
        let set = CorrespondenceSet::normalized(raw).unwrap();
        prop_assume!(!set.is_empty());
        let matchings = enumerate_matchings(&set, 100_000).unwrap();
        let targets: Vec<f64> = set.correspondences().iter().map(|c| c.weight).collect();
        let sol = solve_max_entropy(set.len(), &matchings, &targets, &MaxEntConfig::default())
            .expect("Theorem 5.2 guarantees feasibility");
        // Definition 5.1 consistency, constraint by constraint.
        for (c, &w) in targets.iter().enumerate() {
            let mass: f64 = matchings
                .iter()
                .zip(&sol.probabilities)
                .filter(|(m, _)| m.contains(&c))
                .map(|(_, &p)| p)
                .sum();
            prop_assert!((mass - w).abs() < 1e-3, "corr {}: {} vs {}", c, mass, w);
        }
        // And it is a probability distribution.
        let total: f64 = sol.probabilities.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 6.2 as a property test: for randomly generated catalogs,
    /// automatically configured systems answer every projection query the
    /// same over the p-med-schema and over the consolidated schema.
    #[test]
    fn theorem_6_2_consolidation_preserves_answers(
        seed in 0u64..500,
        n_sources in 3usize..8,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Random sources over a small attribute pool with near-threshold
        // names to provoke multi-schema p-med-schemas.
        let pool = ["name", "phone", "phone no", "tel", "addr", "address", "year", "yr"];
        let mut catalog = Catalog::new();
        for i in 0..n_sources {
            let mut attrs: Vec<&str> = pool
                .iter()
                .copied()
                .filter(|_| rng.gen_bool(0.5))
                .collect();
            if attrs.len() < 2 {
                attrs = vec!["name", "phone"];
            }
            let mut t = Table::new(format!("s{i}"), attrs.clone());
            for r in 0..3 {
                let row: Vec<String> =
                    attrs.iter().map(|a| format!("{a}-{r}-{}", rng.gen_range(0..4))).collect();
                t.push_raw_row(row).unwrap();
            }
            catalog.add_source(t).unwrap();
        }
        let udi = match UdiSystem::setup(catalog, Default::default()) {
            Ok(u) => u,
            Err(_) => return Ok(()), // explosion on adversarial input: fine
        };
        for attr in ["name", "phone", "address", "year"] {
            let q = parse_query(&format!("SELECT {attr} FROM T")).unwrap();
            let mut a = udi.answer(&q).combined();
            let mut b = udi.answer_with_pmed(&q).combined();
            // `combined()` ranks by probability with arbitrary tie order;
            // answer equality is as a set of (tuple, probability) pairs.
            a.sort_by(|x, y| x.values.cmp(&y.values));
            b.sort_by(|x, y| x.values.cmp(&y.values));
            prop_assert_eq!(a.len(), b.len(), "attr {}", attr);
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(&x.values, &y.values);
                prop_assert!((x.probability - y.probability).abs() < 1e-9);
            }
        }
    }
}

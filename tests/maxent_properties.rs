//! Property tests for the maximum-entropy machinery: the group
//! decomposition must be exactly equivalent to solving the flat problem,
//! and solutions must satisfy the §5.2 constraint system on arbitrary
//! feasible instances.

use proptest::prelude::*;

use udi::maxent::{
    enumerate_matchings, solve_correspondences, solve_max_entropy, Correspondence,
    CorrespondenceSet, MaxEntConfig,
};

/// Random (deduplicated, normalized) correspondence sets over a small
/// bipartite universe.
fn corr_sets() -> impl Strategy<Value = CorrespondenceSet> {
    proptest::collection::vec((0usize..4, 0usize..4, 0.05f64..1.5), 1..8).prop_map(|edges| {
        let mut seen = std::collections::HashSet::new();
        let raw: Vec<Correspondence> = edges
            .into_iter()
            .filter(|(s, t, _)| seen.insert((*s, *t)))
            .map(|(s, t, w)| Correspondence::new(s, t, w))
            .collect();
        CorrespondenceSet::normalized(raw).expect("normalization always valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Grouped solving (per connected component + product) equals flat
    /// solving (all matchings at once): identical distributions, matching
    /// by matching.
    #[test]
    fn grouped_equals_flat(set in corr_sets()) {
        prop_assume!(!set.is_empty());
        let config = MaxEntConfig::default();

        // Flat path.
        let matchings = enumerate_matchings(&set, 1_000_000).unwrap();
        let targets: Vec<f64> = set.correspondences().iter().map(|c| c.weight).collect();
        let flat = solve_max_entropy(set.len(), &matchings, &targets, &config)
            .expect("feasible by Theorem 5.2");

        // Grouped path, expanded.
        let grouped = solve_correspondences(&set, &config).expect("same instance");
        let mut joint = grouped.expand(1_000_000).unwrap();
        joint.sort_by(|a, b| a.0.cmp(&b.0));

        let mut flat_pairs: Vec<(Vec<usize>, f64)> = matchings
            .iter()
            .cloned()
            .zip(flat.probabilities.iter().copied())
            .collect();
        flat_pairs.sort_by(|a, b| a.0.cmp(&b.0));

        prop_assert_eq!(joint.len(), flat_pairs.len());
        for ((ma, pa), (mb, pb)) in joint.iter().zip(&flat_pairs) {
            prop_assert_eq!(ma, mb);
            prop_assert!((pa - pb).abs() < 1e-4, "{:?}: {} vs {}", ma, pa, pb);
        }
    }

    /// Every solution satisfies the Definition 5.1 consistency constraints
    /// and lies on the probability simplex.
    #[test]
    fn solutions_are_consistent_distributions(set in corr_sets()) {
        prop_assume!(!set.is_empty());
        let grouped = solve_correspondences(&set, &MaxEntConfig::default()).unwrap();
        let joint = grouped.expand(1_000_000).unwrap();
        let total: f64 = joint.iter().map(|(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        for (c, corr) in set.correspondences().iter().enumerate() {
            let mass: f64 = joint
                .iter()
                .filter(|(m, _)| m.contains(&c))
                .map(|(_, p)| p)
                .sum();
            prop_assert!(
                (mass - corr.weight).abs() < 1e-3,
                "corr {}: {} vs {}", c, mass, corr.weight
            );
        }
    }

    /// Marginals are consistent with the expanded joint: projecting the
    /// joint onto any subset of correspondences reproduces `marginal()`.
    #[test]
    fn marginals_match_joint_projection(set in corr_sets(), mask in 0u32..16) {
        prop_assume!(!set.is_empty());
        let grouped = solve_correspondences(&set, &MaxEntConfig::default()).unwrap();
        let keep: Vec<usize> =
            (0..set.len()).filter(|&c| mask & (1 << (c % 16)) != 0).collect();
        let joint = grouped.expand(1_000_000).unwrap();
        let marginal = grouped.marginal(&keep, 1_000_000).unwrap();

        use std::collections::BTreeMap;
        let mut expect: BTreeMap<Vec<usize>, f64> = BTreeMap::new();
        for (m, p) in &joint {
            let proj: Vec<usize> = m.iter().copied().filter(|c| keep.contains(c)).collect();
            *expect.entry(proj).or_insert(0.0) += p;
        }
        let mut got: BTreeMap<Vec<usize>, f64> = BTreeMap::new();
        for (m, p) in marginal {
            *got.entry(m).or_insert(0.0) += p;
        }
        prop_assert_eq!(expect.len(), got.len());
        for (m, p) in &expect {
            let q = got.get(m).copied().unwrap_or(0.0);
            prop_assert!((p - q).abs() < 1e-6, "{:?}: {} vs {}", m, p, q);
        }
    }
}

//! End-to-end integration tests: full automatic setup and evaluation on
//! every domain at reduced scale.

use udi::baselines::{Integrator, SourceDirect, TopMapping, Udi};
use udi::datagen::Domain;
use udi::eval::harness::prepare;

fn scale_for(domain: Domain) -> usize {
    // Enough sources for stable statistics, small enough for CI.
    (domain.default_source_count() / 10).max(20)
}

#[test]
fn every_domain_configures_and_answers_well() {
    for domain in Domain::all() {
        let d = prepare(domain, Some(scale_for(domain)), 2008).expect("setup");
        let golden = d.golden_rows();
        let m = d.evaluate(&Udi(&d.udi), &golden);
        assert!(
            m.f_measure() > 0.72,
            "{}: UDI F-measure too low: {m:?}",
            domain.name()
        );
        assert!(m.recall > 0.6, "{}: recall {m:?}", domain.name());
    }
}

#[test]
fn udi_recall_dominates_source_everywhere() {
    for domain in Domain::all() {
        let d = prepare(domain, Some(scale_for(domain)), 2008).expect("setup");
        let golden = d.golden_rows();
        let udi = d.evaluate(&Udi(&d.udi), &golden);
        let source = d.evaluate(&SourceDirect::new(&d.gen.catalog), &golden);
        assert!(
            udi.recall >= source.recall - 1e-9,
            "{}: UDI {udi:?} vs Source {source:?}",
            domain.name()
        );
    }
}

#[test]
fn top_mapping_answers_are_a_subset_of_udi_answers() {
    let d = prepare(Domain::Movie, Some(30), 7).expect("setup");
    let tm = TopMapping::new(&d.udi);
    for q in &d.queries {
        let top: Vec<_> = tm.answer(q).combined();
        let full = d.udi.answer(q).combined();
        for t in &top {
            assert!(
                full.iter().any(|u| u.values == t.values),
                "top-mapping answer missing from full UDI: {q}"
            );
        }
    }
}

#[test]
fn setup_is_deterministic() {
    let a = prepare(Domain::Bib, Some(40), 99).expect("setup");
    let b = prepare(Domain::Bib, Some(40), 99).expect("setup");
    assert_eq!(a.udi.pmed().len(), b.udi.pmed().len());
    for ((ma, pa), (mb, pb)) in a.udi.pmed().schemas().iter().zip(b.udi.pmed().schemas()) {
        assert_eq!(ma, mb);
        assert!((pa - pb).abs() < 1e-12);
    }
    assert_eq!(a.queries, b.queries);
    for q in &a.queries {
        let ra = a.udi.answer(q).combined();
        let rb = b.udi.answer(q).combined();
        assert_eq!(ra.len(), rb.len());
        for (x, y) in ra.iter().zip(&rb) {
            assert_eq!(x.values, y.values);
            assert!((x.probability - y.probability).abs() < 1e-12);
        }
    }
}

#[test]
fn bib_reproduces_figure_3_uncertainty() {
    // The issue/issn uncertain edge must yield (at least) two possible
    // mediated schemas: one grouping issue with issn, one keeping it apart.
    let d = prepare(Domain::Bib, Some(65), 2008).expect("setup");
    let vocab = d.udi.schema_set().vocab();
    let issue = vocab.id_of("issue").expect("issue occurs");
    let issn = vocab.id_of("issn").expect("issn occurs");
    let mut merged = 0.0;
    let mut split = 0.0;
    for (m, p) in d.udi.pmed().schemas() {
        match (m.cluster_of(issue), m.cluster_of(issn)) {
            (Some(a), Some(b)) if a == b => merged += p,
            (Some(_), Some(_)) => split += p,
            _ => {}
        }
    }
    assert!(merged > 0.0, "some schema groups issue with issn");
    assert!(split > 0.0, "some schema keeps issue apart");
    // Many sources contain both labels, so the split must be favored.
    assert!(split > merged, "split {split} vs merged {merged}");
}

#[test]
fn answer_probabilities_are_valid_and_ranked() {
    let d = prepare(Domain::Car, Some(50), 3).expect("setup");
    for q in &d.queries {
        let combined = d.udi.answer(&q.clone()).combined();
        let mut prev = f64::INFINITY;
        for t in &combined {
            assert!(t.probability > 0.0 && t.probability <= 1.0 + 1e-9, "{q}");
            assert!(
                t.probability <= prev + 1e-12,
                "ranking must be descending: {q}"
            );
            prev = t.probability;
        }
    }
}

#[test]
fn course_domain_exhibits_the_stringly_precision_artifact() {
    // Somewhere in the Course corpus a numeric comparison on a text column
    // must produce an incorrect answer for the Source baseline — §7.3's
    // explanation for Source's sub-1 precision in Course.
    use udi::query::{execute_with_binding, parse_query, Binding};
    use udi::store::Value;
    let d = prepare(Domain::Course, Some(65), 2008).expect("setup");
    let mut artifact = false;
    'outer: for (sid, t) in d.gen.catalog.iter_sources() {
        let Some(attr) = d.gen.truth.source_attr_for(sid.0 as usize, "enrollment") else {
            continue;
        };
        let col = t.attribute_index(attr).unwrap();
        let has_text_number = t
            .column(col)
            .unwrap()
            .iter()
            .any(|v| matches!(v, Value::Text(_)));
        if !has_text_number {
            continue;
        }
        let sql = format!("SELECT \"{attr}\" FROM T WHERE \"{attr}\" > 50");
        let q = parse_query(&sql).unwrap();
        let rows = execute_with_binding(t, &q, &Binding::identity(t));
        for r in rows {
            if let Some(v) = r[0].as_f64() {
                if v <= 50.0 {
                    continue;
                }
            }
            if let Value::Text(s) = &r[0] {
                if s.parse::<f64>().map(|v| v <= 50.0).unwrap_or(false) {
                    artifact = true; // e.g. "9" > 50 lexicographically
                    break 'outer;
                }
            }
        }
    }
    assert!(
        artifact,
        "expected at least one lexicographic numeric artifact"
    );
}

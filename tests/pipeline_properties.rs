//! Property-based tests over the whole setup pipeline.

use proptest::prelude::*;

use udi::query::parse_query;
use udi::schema::{build_p_med_schema, SchemaSet, UdiParams};
use udi::similarity::AttributeSimilarity;
use udi::store::{Catalog, Table};

/// Strategy: a random set of source schemas over a themed attribute pool.
fn schema_sets() -> impl Strategy<Value = Vec<Vec<&'static str>>> {
    let pool = prop::sample::subsequence(
        vec![
            "name", "title", "phone", "phone no", "tel", "address", "addr", "email", "year", "yr",
            "price", "prices", "make", "model",
        ],
        2..9,
    );
    proptest::collection::vec(pool, 2..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The generated p-med-schema is well-formed on arbitrary inputs:
    /// probabilities form a distribution, every schema partitions the same
    /// frequent-attribute set, and schemas are pairwise distinct.
    #[test]
    fn p_med_schema_invariants(sources in schema_sets()) {
        let set = SchemaSet::from_sources(
            sources.into_iter().enumerate().map(|(i, attrs)| (format!("s{i}"), attrs)),
        );
        let params = UdiParams::default();
        let pmed = build_p_med_schema(&set, &AttributeSimilarity::default(), &params).unwrap();

        let total: f64 = pmed.schemas().iter().map(|(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);

        let frequent: std::collections::BTreeSet<_> =
            set.frequent_attributes(params.theta).into_iter().collect();
        for (m, p) in pmed.schemas() {
            prop_assert!(*p > 0.0 && *p <= 1.0 + 1e-12);
            prop_assert_eq!(m.attribute_set(), frequent.clone(), "partition covers frequent attrs");
        }
        for (i, (a, _)) in pmed.schemas().iter().enumerate() {
            for (b, _) in &pmed.schemas()[i + 1..] {
                prop_assert_ne!(a, b, "schemas must be distinct clusterings");
            }
        }
    }

    /// Full system setup on random catalogs: p-mappings are distributions,
    /// the consolidated schema refines every possible schema, and query
    /// answers stay within probability bounds.
    #[test]
    fn full_setup_invariants(
        sources in schema_sets(),
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut catalog = Catalog::new();
        for (i, attrs) in sources.iter().enumerate() {
            let mut t = Table::new(format!("s{i}"), attrs.clone());
            for _ in 0..rng.gen_range(1..4usize) {
                let row: Vec<String> =
                    attrs.iter().map(|_| format!("v{}", rng.gen_range(0..5))).collect();
                t.push_raw_row(row).unwrap();
            }
            catalog.add_source(t).unwrap();
        }
        let udi = match udi::core::UdiSystem::setup(catalog, Default::default()) {
            Ok(u) => u,
            Err(_) => return Ok(()),
        };

        // P-mappings are distributions.
        for src in 0..udi.catalog().source_count() {
            for schema in 0..udi.pmed().len() {
                let pm = udi.pmapping(src, schema);
                let total: f64 = pm.mappings().iter().map(|(_, p)| p).sum();
                prop_assert!((total - 1.0).abs() < 1e-6);
            }
            let total: f64 =
                udi.consolidated_pmapping(src).mappings().iter().map(|(_, p)| p).sum();
            prop_assert!((total - 1.0).abs() < 1e-6);
        }

        // Consolidated schema refines every possible schema.
        for (m, _) in udi.pmed().schemas() {
            for small in udi.consolidated().clusters() {
                prop_assert!(
                    m.clusters().iter().any(|big| small.is_subset(big)),
                    "consolidated cluster not inside some input cluster"
                );
            }
        }

        // Probabilities bounded on an arbitrary query.
        let q = parse_query("SELECT name FROM T").unwrap();
        for t in udi.answer(&q).combined() {
            prop_assert!(t.probability > 0.0 && t.probability <= 1.0 + 1e-9);
        }
    }

    /// Exposed-schema representatives are cluster members and clusters are
    /// disjoint and complete.
    #[test]
    fn exposed_schema_well_formed(sources in schema_sets()) {
        let mut catalog = Catalog::new();
        for (i, attrs) in sources.iter().enumerate() {
            let mut t = Table::new(format!("s{i}"), attrs.clone());
            t.push_raw_row(attrs.iter().map(|_| "v")).unwrap();
            catalog.add_source(t).unwrap();
        }
        let udi = match udi::core::UdiSystem::setup(catalog, Default::default()) {
            Ok(u) => u,
            Err(_) => return Ok(()),
        };
        let mut seen = std::collections::HashSet::new();
        for (rep, members) in udi.exposed_schema() {
            prop_assert!(members.contains(&rep), "representative is a member");
            for m in &members {
                prop_assert!(seen.insert(m.clone()), "attribute {} in two clusters", m);
            }
        }
    }
}

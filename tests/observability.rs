//! Trace-level checks of the observability layer: the spans and counters
//! the engine emits must tell the same story as its reports, and the
//! incremental refresh must be visibly cheaper in the trace itself —
//! ≥10× fewer per-(source, schema) row-build spans than a full rebuild.

use std::sync::Arc;

use udi::core::{UdiConfig, UdiSystem};
use udi::datagen::{generate, Domain, GenConfig};
use udi::obs::MemorySink;
use udi::store::Catalog;

fn car_catalog(n: usize) -> Catalog {
    generate(
        Domain::Car,
        &GenConfig {
            n_sources: Some(n),
            seed: 17,
            ..GenConfig::default()
        },
    )
    .catalog
}

#[test]
fn traces_are_well_formed_and_match_the_report() {
    let sink = Arc::new(MemorySink::new());
    let udi = UdiSystem::setup_observed(car_catalog(30), UdiConfig::default(), sink.clone())
        .expect("setup");
    sink.verify_nesting().expect("span tree is well formed");

    // One refresh root with all four stage children.
    assert_eq!(sink.spans_named("engine.refresh").len(), 1);
    for stage in [
        "engine.import",
        "engine.med_schema",
        "engine.pmappings",
        "engine.consolidate",
    ] {
        assert_eq!(sink.spans_named(stage).len(), 1, "{stage}");
    }

    // Counter totals agree with the CacheStats view derived from them.
    let cache = udi.report().cache;
    assert_eq!(
        sink.counter_total("engine.rows.computed"),
        cache.rows_computed as u64
    );
    assert_eq!(sink.counter_total("maxent.solve.miss"), cache.solve_misses);
    assert_eq!(sink.counter_total("maxent.solve.hit"), cache.solve_hits);
    assert_eq!(
        sink.spans_named("engine.pmapping.build").len(),
        cache.rows_computed
    );
}

#[test]
fn incremental_refresh_trace_has_10x_fewer_row_builds() {
    let n = 40;
    let catalog = car_catalog(n);

    // Full rebuild over all N sources, traced.
    let rebuild_sink = Arc::new(MemorySink::new());
    UdiSystem::setup_observed(catalog.clone(), UdiConfig::default(), rebuild_sink.clone())
        .expect("rebuild setup");
    let rebuild_builds = rebuild_sink.spans_named("engine.pmapping.build").len();

    // N−1 sources up front; attach the sink only for the incremental add,
    // so the trace covers exactly one refresh.
    let tables: Vec<_> = catalog.iter_sources().map(|(_, t)| t.clone()).collect();
    let mut head = Catalog::new();
    for t in &tables[..n - 1] {
        head.add_source(t.clone()).unwrap();
    }
    let mut incremental = UdiSystem::setup(head, UdiConfig::default()).expect("setup of N-1");
    let incr_sink = Arc::new(MemorySink::new());
    incremental.set_sink(Some(incr_sink.clone()));
    incremental
        .add_source(tables[n - 1].clone())
        .expect("incremental add");
    let incr_builds = incr_sink.spans_named("engine.pmapping.build").len();

    incr_sink.verify_nesting().expect("incremental trace nests");
    assert_eq!(incr_sink.spans_named("engine.refresh").len(), 1);
    assert!(
        incr_builds * 10 <= rebuild_builds,
        "refresh built {incr_builds} rows, rebuild {rebuild_builds} — expected ≥10x fewer"
    );
}

//! Whole-pipeline determinism regression: two `UdiSystem::setup` runs over
//! the same generated catalog must produce *byte-identical* systems.
//!
//! This is the invariant the `deterministic-iteration` audit lint protects:
//! the paper's probabilistic identities (Algorithm 2 weights, Theorem 5.2
//! distributions) are checked against exact expectations elsewhere in the
//! suite, and any hash-order nondeterminism in schema enumeration, solver
//! input assembly, or consolidation would make those checks flaky instead
//! of red. Byte comparison of the serialized snapshot is the strongest
//! cheap form of "the same system": it covers the vocabulary, the
//! p-med-schema, every p-mapping probability bit, and the similarity cache.

use udi::core::{UdiConfig, UdiSystem};
use udi::datagen::{generate, Domain, GenConfig};

fn build(seed: u64, threads: usize) -> UdiSystem {
    let gen = generate(
        Domain::Bib,
        &GenConfig {
            n_sources: Some(40),
            seed,
            ..GenConfig::default()
        },
    );
    let config = UdiConfig {
        threads,
        ..UdiConfig::default()
    };
    UdiSystem::setup(gen.catalog, config).expect("setup")
}

/// Render a system to a comparable byte string: the JSON snapshot when the
/// real serde_json backend is present, otherwise (offline stub backend,
/// see `offline/README.md`) an exhaustive Debug rendering of the
/// query-facing artifacts. Debug formatting of f64 round-trips the exact
/// value, so the fallback still detects any probability-bit divergence.
fn fingerprint(sys: &UdiSystem) -> String {
    match sys.to_json() {
        Ok(json) => json,
        Err(_) => {
            let mut s = String::new();
            s.push_str(&format!("{:?}\n", sys.pmed()));
            s.push_str(&format!("{:?}\n", sys.consolidated()));
            for src in 0..sys.catalog().source_count() {
                s.push_str(&format!("{:?}\n", sys.consolidated_pmapping(src)));
            }
            s
        }
    }
}

#[test]
fn identical_seeds_yield_byte_identical_systems() {
    for seed in [7u64, 1234] {
        let a = fingerprint(&build(seed, 1));
        let b = fingerprint(&build(seed, 1));
        assert_eq!(a, b, "seed {seed}: two runs diverged");
    }
}

#[test]
fn thread_count_does_not_perturb_the_snapshot() {
    let seq = fingerprint(&build(99, 1));
    let par = fingerprint(&build(99, 4));
    assert_eq!(seq, par, "parallel setup diverged from sequential");
}

#[test]
fn incremental_refresh_is_deterministic() {
    // Same mutation sequence twice: add a source post-setup, refresh, and
    // compare. Exercises the engine's incremental reuse paths (row moves,
    // cache hits), which are the likeliest home of order dependence.
    let run = || {
        let gen = generate(
            Domain::Bib,
            &GenConfig {
                n_sources: Some(30),
                seed: 4242,
                ..GenConfig::default()
            },
        );
        let mut catalog = gen.catalog;
        let first = catalog
            .iter_sources()
            .next()
            .map(|(_, t)| t.name().to_owned())
            .expect("non-empty");
        let extra = catalog.remove_source(&first).expect("present");
        let mut sys = UdiSystem::setup(catalog, UdiConfig::default()).expect("setup");
        sys.add_source(extra).expect("re-add");
        fingerprint(&sys)
    };
    assert_eq!(run(), run(), "incremental path diverged");
}

//! Blocking must be invisible at paper scale.
//!
//! The n-gram block index prunes attribute pairs before pairwise scoring.
//! Pruned pairs never enter the similarity cache, so the frozen matrix
//! reads them as 0.0 — exactly how sub-threshold pairs already behave.
//! The outputs of a blocked setup are therefore *byte-identical* to the
//! exhaustive all-pairs setup **iff** blocking never drops a pair the
//! scoring floor `min(τ − ε, pair_floor)` would keep. These tests gate
//! both halves of that claim on generated corpora: identity of every
//! artifact (p-med-schema, p-mappings, consolidation, query answers), and
//! the recall property itself at the `BlockIndex` level.
//!
//! The guarantee is scoped to generated corpora on purpose: a universal
//! bigram-soundness theorem does not exist for Jaro–Winkler (adversarial
//! strings like `a1b2c3d4` / `1a2b3c4d` score high while sharing no
//! bigram), which is why `UdiConfig::blocking` remains an escape hatch.

use proptest::prelude::*;

use udi::core::{Feedback, UdiConfig, UdiSystem};
use udi::datagen::{generate, scale_catalog, Domain, GenConfig, ScaleConfig};
use udi::eval::generate_workload;
use udi::schema::UdiParams;
use udi::similarity::{AttributeSimilarity, BlockIndex, Similarity};
use udi::store::{Catalog, Table};

/// Set up the same catalog twice: blocked and exhaustive.
fn setup_pair(catalog: &Catalog) -> (UdiSystem, UdiSystem) {
    let blocked = UdiSystem::setup(
        catalog.clone(),
        UdiConfig {
            blocking: true,
            ..UdiConfig::default()
        },
    )
    .expect("blocked setup");
    let exhaustive = UdiSystem::setup(
        catalog.clone(),
        UdiConfig {
            blocking: false,
            ..UdiConfig::default()
        },
    )
    .expect("exhaustive setup");
    (blocked, exhaustive)
}

/// Exact textual fingerprint of every setup artifact. `Debug` on `f64`
/// prints the shortest round-trip representation, so equal fingerprints
/// mean bit-identical probabilities, not merely close ones.
fn fingerprint(sys: &UdiSystem) -> String {
    use std::fmt::Write;
    let mut s = format!("{:?}\n{:?}\n", sys.pmed(), sys.consolidated());
    for src in 0..sys.catalog().source_count() {
        for schema in 0..sys.pmed().len() {
            writeln!(s, "{:?}", sys.pmapping(src, schema)).unwrap();
        }
        writeln!(s, "{:?}", sys.consolidated_pmapping(src)).unwrap();
    }
    s
}

/// The stage-2/3 scoring floor below which a similarity can never matter.
fn scoring_floor() -> f64 {
    let p = UdiParams::default();
    (p.tau - p.epsilon).min(p.pair_floor)
}

/// Recall check at the index level: every pair of names the default
/// measure scores at or above the floor must survive blocking.
fn assert_no_scorable_pair_dropped(names: &[String], context: &str) {
    let mut index = BlockIndex::bigram();
    for n in names {
        index.insert(n);
    }
    let measure = AttributeSimilarity::default();
    let floor = scoring_floor();
    for i in 0..names.len() {
        let cands = index.candidates_of(i as u32);
        for j in (i + 1)..names.len() {
            let s = measure.similarity(&names[i], &names[j]);
            if s >= floor {
                assert!(
                    cands.binary_search(&(j as u32)).is_ok(),
                    "{context}: blocking dropped {:?} ~ {:?} (sim {s:.4})",
                    names[i],
                    names[j]
                );
            }
        }
    }
}

fn universe(catalog: &Catalog) -> Vec<String> {
    catalog.attribute_universe().map(str::to_owned).collect()
}

#[test]
fn blocked_setup_is_byte_identical_on_paper_domains() {
    for domain in Domain::all() {
        let gen = generate(
            domain,
            &GenConfig {
                n_sources: Some(80),
                ..GenConfig::default()
            },
        );
        let (blocked, exhaustive) = setup_pair(&gen.catalog);
        assert_eq!(
            fingerprint(&blocked),
            fingerprint(&exhaustive),
            "{domain:?}: blocked artifacts differ from all-pairs"
        );

        // Query answers too: identical tuples with bit-identical
        // probabilities on the standard workload.
        for q in generate_workload(&gen, 8, 7) {
            let mut a = blocked.answer(&q).combined();
            let mut b = exhaustive.answer(&q).combined();
            a.sort_by(|x, y| x.values.cmp(&y.values));
            b.sort_by(|x, y| x.values.cmp(&y.values));
            assert_eq!(a.len(), b.len(), "{domain:?}: answer cardinality");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.values, y.values, "{domain:?}: answer tuples");
                assert_eq!(
                    x.probability.to_bits(),
                    y.probability.to_bits(),
                    "{domain:?}: answer probabilities not bit-identical"
                );
            }
        }
    }
}

#[test]
fn blocked_setup_is_byte_identical_on_the_scale_corpus() {
    let catalog = scale_catalog(&ScaleConfig {
        n_sources: 200,
        rows_min: 1,
        rows_max: 3,
        ..ScaleConfig::default()
    });
    let (blocked, exhaustive) = setup_pair(&catalog);
    assert_eq!(
        fingerprint(&blocked),
        fingerprint(&exhaustive),
        "scale corpus: blocked artifacts differ from all-pairs"
    );
}

#[test]
fn blocking_never_drops_a_scorable_pair_on_generated_corpora() {
    for domain in Domain::all() {
        let gen = generate(
            domain,
            &GenConfig {
                n_sources: Some(120),
                ..GenConfig::default()
            },
        );
        assert_no_scorable_pair_dropped(&universe(&gen.catalog), domain.name());
    }
    let catalog = scale_catalog(&ScaleConfig {
        n_sources: 300,
        rows_min: 1,
        rows_max: 1,
        ..ScaleConfig::default()
    });
    assert_no_scorable_pair_dropped(&universe(&catalog), "scale");
}

/// Black-box measures must bypass blocking entirely: a feedback-wrapped
/// measure can score a pair high that shares no character bigram, which
/// the index would prune. `setup_with_measure` therefore forces the
/// exhaustive path — this also keeps `apply_feedback` (which pins judged
/// pairs straight into the cache) equivalent to a wrapped rebuild.
#[test]
fn custom_measures_are_scored_exhaustively() {
    let mut catalog = Catalog::new();
    for (i, attrs) in [vec!["year", "price"], vec!["tel", "price"]]
        .into_iter()
        .enumerate()
    {
        let mut t = Table::new(format!("s{i}"), attrs.clone());
        t.push_raw_row(attrs.iter().map(|_| "v")).unwrap();
        catalog.add_source(t).unwrap();
    }
    // "year" and "tel" share no bigram; only the human says they match.
    let mut feedback = Feedback::new();
    feedback.confirm_same("year", "tel");
    let base = AttributeSimilarity::default();
    let wrapped = feedback.wrap(&base);
    let full = UdiSystem::setup_with_measure(catalog, &wrapped, UdiConfig::default())
        .expect("wrapped setup");
    let vocab = full.schema_set().vocab();
    let year = vocab.id_of("year").expect("year interned");
    let tel = vocab.id_of("tel").expect("tel interned");
    assert_eq!(
        full.consolidated().cluster_of(year),
        full.consolidated().cluster_of(tel),
        "judged pair sharing no bigram must still merge under a wrapped measure"
    );
}

/// Strategy mirroring `pipeline_properties`: random source schemas over a
/// themed attribute pool (near-duplicates, morphology, punctuation).
fn schema_sets() -> impl Strategy<Value = Vec<Vec<&'static str>>> {
    let pool = prop::sample::subsequence(
        vec![
            "name",
            "title",
            "phone",
            "phone no",
            "tel",
            "address",
            "addr",
            "email",
            "year",
            "yr",
            "price",
            "prices",
            "make",
            "model",
            "author",
            "author(s)",
            "issue",
            "issn",
        ],
        2..9,
    );
    proptest::collection::vec(pool, 2..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Blocked and exhaustive setups produce byte-identical artifacts on
    /// arbitrary catalogs from the themed pool.
    #[test]
    fn blocked_setup_is_byte_identical_on_random_catalogs(sources in schema_sets()) {
        let mut catalog = Catalog::new();
        for (i, attrs) in sources.iter().enumerate() {
            let mut t = Table::new(format!("s{i}"), attrs.clone());
            t.push_raw_row(attrs.iter().map(|_| "v")).unwrap();
            catalog.add_source(t).unwrap();
        }
        let blocking_on = UdiSystem::setup(catalog.clone(), UdiConfig::default());
        let (blocked, exhaustive) = match blocking_on {
            Ok(b) => (
                b,
                UdiSystem::setup(
                    catalog,
                    UdiConfig { blocking: false, ..UdiConfig::default() },
                )
                .expect("exhaustive setup must succeed when blocked did"),
            ),
            Err(_) => return Ok(()),
        };
        prop_assert_eq!(fingerprint(&blocked), fingerprint(&exhaustive));
    }

    /// The recall property on random name sets from the same pool.
    #[test]
    fn blocking_keeps_scorable_pairs_from_the_pool(
        names in proptest::collection::vec("[a-z]{1,8}( [a-z]{1,8})?", 2..12)
    ) {
        let names: Vec<String> = names;
        assert_no_scorable_pair_dropped(&names, "random");
    }
}

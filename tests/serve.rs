//! Serving-layer invariants: snapshot swaps are atomic, refreshes never
//! block readers, and the wire path is byte-identical to the library path.
//!
//! The contract under test (DESIGN.md §13): a tenant is an immutable
//! snapshot record; readers take an `Arc` snapshot (no lock) and answer
//! against a complete generation — old or new, never a torn mix — while
//! mutations clone, rebuild off to the side, and publish atomically by
//! replacing the record in the tenant map. The proptest
//! interleaves random mutations with concurrent answers through the server
//! dispatcher and checks every observable answer against a library-built
//! mirror of some published generation.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use udi::core::{UdiConfig, UdiSystem};
use udi::serve::{
    execute_answer, handle, parse_request, AnswerPath, Json, ServeState, Server, ServerConfig,
};
use udi::store::{Catalog, Table};

const PROBE: &str = "SELECT name FROM people";

fn base_system() -> UdiSystem {
    let mut catalog = Catalog::new();
    let mut a = Table::new("s1", ["name", "phone"]);
    a.push_raw_row(["Alice", "123"]).unwrap();
    a.push_raw_row(["Bob", "456"]).unwrap();
    catalog.add_source(a).unwrap();
    let mut b = Table::new("s2", ["full_name", "tel"]);
    b.push_raw_row(["Carol", "999"]).unwrap();
    catalog.add_source(b).unwrap();
    UdiSystem::setup(catalog, UdiConfig::default()).unwrap()
}

/// A source that maps onto the mediated schema verbatim, so adding it
/// observably changes the probe's answers.
fn extra_source(i: usize) -> Table {
    let mut t = Table::new(format!("live{i}"), ["name", "phone"]);
    t.push_raw_row([format!("Eve{i}"), format!("{i}{i}{i}")])
        .unwrap();
    t
}

fn render_probe(sys: &UdiSystem) -> String {
    execute_answer(sys, AnswerPath::Consolidated, PROBE, 0)
        .unwrap()
        .render()
}

/// Readers racing a snapshot swap over real TCP must only ever observe a
/// complete generation: every response's answers fragment equals the
/// library render of generation 0 or generation 1, nothing in between.
#[test]
fn concurrent_readers_see_whole_generations_only() {
    let state = ServeState::new();
    state.register_tenant("t", base_system());
    let tenant = state.tenant("t").unwrap();

    // Library-built expectations for both generations.
    let expect_g0 = render_probe(&tenant.snapshot());
    let mut successor = (*tenant.snapshot()).clone();
    successor.add_source(extra_source(0)).unwrap();
    let expect_g1 = render_probe(&successor);
    assert_ne!(expect_g0, expect_g1, "mutation must be observable");
    drop(successor);

    let server = Server::start(state.clone(), ServerConfig::default()).unwrap();
    let addr = server.addr();
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                use std::io::{BufRead, BufReader, Write};
                let mut stream = std::net::TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut seen = Vec::new();
                let mut completed = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let line = format!(
                        r#"{{"op":"answer","tenant":"t","query":"{PROBE}"}}{}"#,
                        "\n"
                    );
                    stream.write_all(line.as_bytes()).unwrap();
                    let mut response = String::new();
                    reader.read_line(&mut response).unwrap();
                    let parsed = udi::serve::json::parse(response.trim_end()).unwrap();
                    assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)), "{response}");
                    let answers = parsed.get("answers").unwrap().render();
                    if !seen.contains(&answers) {
                        seen.push(answers);
                    }
                    completed += 1;
                }
                (seen, completed)
            })
        })
        .collect();

    // Let readers observe generation 0, then publish generation 1 through
    // the wire while they keep reading.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let req = parse_request(
        r#"{"op":"add_source","tenant":"t","table":{"name":"live0","attrs":["name","phone"],"rows":[["Eve0","000"]]}}"#,
    )
    .unwrap();
    let resp = handle(&state, &req);
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    std::thread::sleep(std::time::Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);

    let mut total = 0;
    for r in readers {
        let (seen, completed) = r.join().unwrap();
        total += completed;
        for answers in seen {
            assert!(
                answers == expect_g0 || answers == expect_g1,
                "reader observed a torn generation:\n{answers}\nexpected either\n{expect_g0}\nor\n{expect_g1}"
            );
        }
    }
    assert!(total > 0, "readers made no progress");
    // After the publish, a re-fetched record serves generation 1.
    assert_eq!(
        render_probe(&state.tenant("t").unwrap().snapshot()),
        expect_g1
    );
}

/// A refresh must never block readers: while a mutation rebuilds the
/// snapshot, concurrent loads keep completing against the old generation.
#[test]
fn refresh_in_progress_does_not_block_readers() {
    // A meatier corpus so the rebuild takes long enough to race against.
    let mut catalog = Catalog::new();
    for i in 0..10 {
        let mut t = Table::new(format!("s{i}"), ["name", "phone", "address", "year"]);
        t.push_raw_row([
            format!("P{i}"),
            format!("{i}00"),
            format!("{i} Main St"),
            "2008".to_owned(),
        ])
        .unwrap();
        catalog.add_source(t).unwrap();
    }
    let state = ServeState::new();
    state.register_tenant(
        "t",
        UdiSystem::setup(catalog, UdiConfig::default()).unwrap(),
    );
    let tenant = state.tenant("t").unwrap();

    let ready = Arc::new(AtomicBool::new(false));
    let mutating = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));
    let reads_during_mutation = Arc::new(AtomicU64::new(0));

    let reader = {
        let tenant = tenant.clone();
        let ready = ready.clone();
        let mutating = mutating.clone();
        let done = done.clone();
        let reads = reads_during_mutation.clone();
        std::thread::spawn(move || {
            let mut i = 0u64;
            while !done.load(Ordering::Relaxed) {
                // The invariant under test: loading a snapshot never
                // blocks, even mid-rebuild. Render only occasionally so
                // the loop's cadence is dominated by loads.
                let sys = tenant.snapshot();
                if i.is_multiple_of(64) {
                    assert!(!render_probe(&sys).is_empty());
                }
                drop(sys);
                ready.store(true, Ordering::Relaxed);
                if mutating.load(Ordering::Relaxed) {
                    reads.fetch_add(1, Ordering::Relaxed);
                }
                i += 1;
            }
        })
    };

    while !ready.load(Ordering::Relaxed) {
        std::thread::yield_now();
    }
    mutating.store(true, Ordering::Relaxed);
    let req = parse_request(
        r#"{"op":"apply_feedback","tenant":"t","same":[["name","address"]],"different":[["phone","year"]]}"#,
    )
    .unwrap();
    let resp = handle(&state, &req);
    mutating.store(false, Ordering::Relaxed);
    done.store(true, Ordering::Relaxed);
    reader.join().unwrap();

    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    assert!(
        reads_during_mutation.load(Ordering::Relaxed) > 0,
        "no reads completed while the refresh was rebuilding — readers blocked"
    );
    assert_eq!(
        state
            .tenant("t")
            .unwrap()
            .snapshot()
            .feedback()
            .judgment("name", "address"),
        Some(true)
    );
}

/// One mutation op for the interleaving property.
#[derive(Debug, Clone)]
enum Mutation {
    AddSource(usize),
    Feedback(&'static str, &'static str, bool),
}

fn mutation_strategy() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        (0usize..1000).prop_map(Mutation::AddSource),
        (0usize..4, 1usize..4, any::<bool>()).prop_map(|(a, off, same)| {
            // Offset keeps the pair distinct without a filter.
            const POOL: [&str; 4] = ["name", "phone", "full_name", "tel"];
            Mutation::Feedback(POOL[a], POOL[(a + off) % 4], same)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Interleave random mutations with concurrent answers: after every
    /// mutation published through the server dispatcher, the served answer
    /// must be byte-identical to a library mirror that applied the same
    /// mutations directly — and a racing reader thread must only ever see
    /// well-formed, complete-generation responses.
    #[test]
    fn interleaved_mutations_and_answers_stay_consistent(
        ops in prop::collection::vec(mutation_strategy(), 1..5)
    ) {
        let state = ServeState::new();
        state.register_tenant("t", base_system());
        let tenant = state.tenant("t").unwrap();
        let mut mirror = (*tenant.snapshot()).clone();

        // Racing reader through the dispatcher: every response it sees
        // must be ok and parse back to the bytes it was rendered from.
        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let state = state.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let req = parse_request(
                    &format!(r#"{{"op":"answer","tenant":"t","query":"{PROBE}"}}"#)
                ).unwrap();
                while !stop.load(Ordering::Relaxed) {
                    let resp = handle(&state, &req);
                    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
                    let rendered = resp.render();
                    let reparsed = udi::serve::json::parse(&rendered).unwrap();
                    assert_eq!(reparsed.render(), rendered);
                }
            })
        };

        for op in &ops {
            let req_line = match op {
                Mutation::AddSource(i) => {
                    mirror.add_source(extra_source(*i)).unwrap();
                    format!(
                        r#"{{"op":"add_source","tenant":"t","table":{{"name":"live{i}","attrs":["name","phone"],"rows":[["Eve{i}","{i}{i}{i}"]]}}}}"#
                    )
                }
                Mutation::Feedback(a, b, same) => {
                    let mut fb = udi::core::Feedback::new();
                    if *same { fb.confirm_same(a, b); } else { fb.confirm_different(a, b); }
                    mirror.apply_feedback(&fb).unwrap();
                    let field = if *same { "same" } else { "different" };
                    format!(
                        r#"{{"op":"apply_feedback","tenant":"t","{field}":[["{a}","{b}"]]}}"#
                    )
                }
            };
            let req = parse_request(&req_line).unwrap();
            let resp = handle(&state, &req);
            prop_assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "mutation failed");

            // Served answer after the publish == library mirror, bytewise,
            // on every path that takes a select query.
            let snapshot = state.tenant("t").unwrap().snapshot();
            for path in [AnswerPath::Consolidated, AnswerPath::Pmed, AnswerPath::ByTuple] {
                let served = execute_answer(&snapshot, path, PROBE, 0).unwrap().render();
                let mirrored = execute_answer(&mirror, path, PROBE, 0).unwrap().render();
                prop_assert_eq!(served, mirrored, "path {} diverged", path.name());
            }
        }

        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();
    }
}

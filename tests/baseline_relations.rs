//! Structural relations between the competing approaches that must hold by
//! construction, regardless of corpus.

use udi::baselines::{
    Integrator, KeywordNaive, KeywordStrict, KeywordStruct, SingleMed, SourceDirect, UnionAll,
};
use udi::core::UdiConfig;
use udi::datagen::{generate, Domain, GenConfig};
use udi::eval::generate_workload;
use udi::store::Row;

fn rows_of(set: &udi::query::AnswerSet) -> Vec<Row> {
    set.flat().iter().map(|t| t.values.clone()).collect()
}

#[test]
fn keyword_variants_are_nested() {
    let gen = generate(
        Domain::Movie,
        &GenConfig {
            n_sources: Some(25),
            ..GenConfig::default()
        },
    );
    let queries = generate_workload(&gen, 12, 5);
    let naive = KeywordNaive::new(&gen.catalog);
    let kstruct = KeywordStruct::new(&gen.catalog);
    let strict = KeywordStrict::new(&gen.catalog);
    for q in &queries {
        let n = rows_of(&naive.answer(q));
        let st = rows_of(&kstruct.answer(q));
        let sr = rows_of(&strict.answer(q));
        // strict ⊆ struct ⊆ naive (as row multisets by membership).
        for r in &sr {
            assert!(st.contains(r), "strict ⊄ struct: {q}");
        }
        for r in &st {
            assert!(n.contains(r), "struct ⊄ naive: {q}");
        }
    }
}

#[test]
fn source_direct_only_uses_exact_attribute_matches() {
    let gen = generate(
        Domain::Car,
        &GenConfig {
            n_sources: Some(30),
            ..GenConfig::default()
        },
    );
    let source = SourceDirect::new(&gen.catalog);
    let queries = generate_workload(&gen, 10, 6);
    for q in &queries {
        let ans = source.answer(q);
        for (sid, _) in ans.by_source() {
            let table = gen.catalog.source(*sid).unwrap();
            for a in q.referenced_attributes() {
                assert!(
                    table.has_attribute(a),
                    "Source answered from a table lacking `{a}`: {q}"
                );
            }
        }
    }
}

#[test]
fn single_med_is_one_of_the_p_med_schemas_or_coarser() {
    // SingleMed's schema merges every edge ≥ τ; UDI's certain merges
    // (≥ τ+ε) are a subset, so every certain-merged pair must also be
    // merged by SingleMed.
    let gen = generate(
        Domain::Bib,
        &GenConfig {
            n_sources: Some(60),
            ..GenConfig::default()
        },
    );
    let udi = udi::core::UdiSystem::setup(gen.catalog.clone(), UdiConfig::default()).unwrap();
    let sm = SingleMed::setup(gen.catalog.clone(), UdiConfig::default()).unwrap();
    let sm_schema = sm.system().pmed().top();
    let vocab = udi.schema_set().vocab();
    let sm_vocab = sm.system().schema_set().vocab();
    for small in udi.consolidated().clusters() {
        // Consolidated clusters hold pairs merged in EVERY schema — i.e.
        // certain merges. Those pairs are ≥ τ+ε ≥ τ, so SingleMed merges
        // them too.
        let names: Vec<&str> = small.iter().map(|&a| vocab.name(a)).collect();
        let ids: Vec<_> = names.iter().map(|n| sm_vocab.id_of(n).unwrap()).collect();
        let clusters: std::collections::HashSet<_> =
            ids.iter().map(|&i| sm_schema.cluster_of(i)).collect();
        assert_eq!(clusters.len(), 1, "cluster {names:?} split by SingleMed");
    }
}

#[test]
fn union_all_never_groups_attributes() {
    let gen = generate(
        Domain::People,
        &GenConfig {
            n_sources: Some(30),
            ..GenConfig::default()
        },
    );
    let ua = UnionAll::setup(gen.catalog.clone(), UdiConfig::default()).unwrap();
    assert!(ua
        .system()
        .consolidated()
        .clusters()
        .iter()
        .all(|c| c.len() == 1));
    // Its answer probabilities are still valid.
    let queries = generate_workload(&gen, 8, 11);
    for q in &queries {
        for t in ua.answer(q).combined() {
            assert!(t.probability > 0.0 && t.probability <= 1.0 + 1e-9, "{q}");
        }
    }
}

#[test]
fn integrator_names_are_stable() {
    // Experiment tables key on these names; lock them down.
    let gen = generate(
        Domain::Movie,
        &GenConfig {
            n_sources: Some(12),
            ..GenConfig::default()
        },
    );
    assert_eq!(KeywordNaive::new(&gen.catalog).name(), "KeywordNaive");
    assert_eq!(KeywordStruct::new(&gen.catalog).name(), "KeywordStruct");
    assert_eq!(KeywordStrict::new(&gen.catalog).name(), "KeywordStrict");
    assert_eq!(SourceDirect::new(&gen.catalog).name(), "Source");
}

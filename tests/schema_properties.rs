//! Property tests for the schema-level algorithms (Algorithms 1–3) beyond
//! what the unit tests in `udi-schema` cover: structural invariants that
//! must hold for arbitrary similarity landscapes, not just the default
//! matcher.

use std::collections::HashMap;

use proptest::prelude::*;

use udi::schema::{
    build_similarity_graph, consolidate_schemas, enumerate_mediated_schemas, EdgeKind, SchemaSet,
    UdiParams,
};
use udi::similarity::Similarity;

/// A deterministic random similarity landscape over a fixed alphabet of
/// attribute names, driven by a seed: every unordered pair gets a stable
/// pseudo-random weight.
struct RandomLandscape {
    weights: HashMap<(String, String), f64>,
}

impl RandomLandscape {
    fn new(names: &[&str], seed: u64) -> RandomLandscape {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut weights = HashMap::new();
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                let key = ((*a).min(*b).to_owned(), (*a).max(*b).to_owned());
                // Mixture: mostly low, sometimes near the band, sometimes
                // certain — so all three edge classes occur.
                let w = match rng.gen_range(0..10) {
                    0..=5 => rng.gen_range(0.0..0.8),
                    6..=7 => rng.gen_range(0.83..0.87),
                    _ => rng.gen_range(0.87..1.0),
                };
                weights.insert(key, w);
            }
        }
        RandomLandscape { weights }
    }
}

impl Similarity for RandomLandscape {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        if a == b {
            return 1.0;
        }
        let key = (a.min(b).to_owned(), a.max(b).to_owned());
        self.weights.get(&key).copied().unwrap_or(0.0)
    }
}

const NAMES: &[&str] = &["a", "b", "c", "d", "e", "f", "g"];

fn any_schema_set() -> SchemaSet {
    // Every attribute in every source, so frequency filtering is inert and
    // the graph covers the full alphabet.
    SchemaSet::from_sources([("s1", NAMES.to_vec()), ("s2", NAMES.to_vec())])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    /// Algorithm 1 invariants on random landscapes:
    /// - every enumerated schema partitions exactly the frequent attributes;
    /// - every certain edge is honored by every schema;
    /// - schemas are pairwise distinct;
    /// - the count is bounded by 2^(#uncertain edges).
    #[test]
    fn algorithm_1_invariants(seed in 0u64..3000) {
        let set = any_schema_set();
        let sim = RandomLandscape::new(NAMES, seed);
        let params = UdiParams::default();
        let graph = build_similarity_graph(&set, &sim, &params);
        let schemas = enumerate_mediated_schemas(&graph, &params);
        prop_assert!(!schemas.is_empty());
        let n_uncertain = graph.edges.iter().filter(|e| e.kind == EdgeKind::Uncertain).count();
        prop_assert!(schemas.len() <= 1 << n_uncertain.min(params.max_uncertain_edges));

        let universe: std::collections::BTreeSet<_> = graph.nodes.iter().copied().collect();
        for m in &schemas {
            prop_assert_eq!(m.attribute_set(), universe.clone());
            for e in graph.edges.iter().filter(|e| e.kind == EdgeKind::Certain) {
                prop_assert_eq!(
                    m.cluster_of(e.a),
                    m.cluster_of(e.b),
                    "certain edge must be merged in every schema"
                );
            }
        }
        for (i, a) in schemas.iter().enumerate() {
            for b in &schemas[i + 1..] {
                prop_assert_ne!(a, b);
            }
        }
    }

    /// Consolidation is the coarsest common refinement: it refines every
    /// input schema, and any pair of attributes clustered together in all
    /// inputs stays together.
    #[test]
    fn consolidation_is_tight(seed in 0u64..3000) {
        let set = any_schema_set();
        let sim = RandomLandscape::new(NAMES, seed);
        let params = UdiParams::default();
        let graph = build_similarity_graph(&set, &sim, &params);
        let schemas = enumerate_mediated_schemas(&graph, &params);
        let t = consolidate_schemas(&schemas);

        // Refinement.
        for m in &schemas {
            for small in t.clusters() {
                prop_assert!(m.clusters().iter().any(|big| small.is_subset(big)));
            }
        }
        // Tightness: pairs together everywhere stay together.
        let attrs: Vec<_> = t.attribute_set().into_iter().collect();
        for (i, &x) in attrs.iter().enumerate() {
            for &y in &attrs[i + 1..] {
                let together_everywhere =
                    schemas.iter().all(|m| m.cluster_of(x) == m.cluster_of(y));
                let together_in_t = t.cluster_of(x) == t.cluster_of(y);
                prop_assert_eq!(together_everywhere, together_in_t, "{:?},{:?}", x, y);
            }
        }
    }

    /// The graph itself is sane: edges connect distinct frequent nodes,
    /// weights fall in the declared bands.
    #[test]
    fn graph_invariants(seed in 0u64..3000) {
        let set = any_schema_set();
        let sim = RandomLandscape::new(NAMES, seed);
        let params = UdiParams::default();
        let graph = build_similarity_graph(&set, &sim, &params);
        for e in &graph.edges {
            prop_assert_ne!(e.a, e.b);
            prop_assert!(graph.nodes.contains(&e.a) && graph.nodes.contains(&e.b));
            match e.kind {
                EdgeKind::Certain => prop_assert!(e.weight >= params.tau + params.epsilon),
                EdgeKind::Uncertain => {
                    prop_assert!(e.weight >= params.tau - params.epsilon);
                    prop_assert!(e.weight < params.tau + params.epsilon);
                }
            }
        }
    }
}

//! Probabilistic answer sets under by-table semantics.
//!
//! Definition 3.3 / §2: a tuple's probability from one source is the sum of
//! the probabilities of the mappings (weighted by mediated-schema
//! probability) under which the rewritten query returns it; answers from
//! different sources combine by probabilistic disjunction
//! `1 − Π_i (1 − p_i)`, assuming source independence.
//!
//! The paper measures precision/recall on the answer list *without*
//! removing duplicates across sources ([`AnswerSet::flat`]) but ranks and
//! plots R-P curves on the deduplicated, disjunction-combined list
//! ([`AnswerSet::combined`]).

use std::collections::{BTreeSet, HashMap};

use udi_schema::float::clamp_prob;
use udi_store::{Row, SourceId};

/// One answer tuple with its probability.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerTuple {
    /// Projected values, aligned with the query's select list.
    pub values: Row,
    /// Probability that this tuple is a correct answer.
    pub probability: f64,
}

/// Accumulates per-mapping results for a single source.
///
/// Each `add_mapping(rows, p)` call records that, under a mapping holding
/// with probability `p`, the rewritten query returned `rows`. Duplicate rows
/// within one mapping count once (a tuple either is or is not an answer
/// under that mapping); the same tuple under different mappings accumulates
/// their probabilities (by-table semantics).
#[derive(Debug, Clone, Default)]
pub struct SourceAccumulator {
    probs: HashMap<Row, f64>,
    order: Vec<Row>,
}

impl SourceAccumulator {
    /// Fresh accumulator.
    pub fn new() -> SourceAccumulator {
        SourceAccumulator::default()
    }

    /// Record the result bag of one possible mapping with probability `p`.
    pub fn add_mapping(&mut self, rows: &[Row], p: f64) {
        if p <= 0.0 {
            return;
        }
        // Within-mapping dedup must be cheap per row: a selective query over
        // a large source can return thousands of duplicate projections, and
        // the previous `Vec::contains` scan made this quadratic. The set is
        // membership-only and ordered (`Value: Ord`), so it cannot leak
        // nondeterministic order; emission order stays governed by
        // `self.order`.
        let mut seen: BTreeSet<&Row> = BTreeSet::new();
        for row in rows {
            if !seen.insert(row) {
                continue;
            }
            match self.probs.get_mut(row) {
                Some(q) => *q += p,
                None => {
                    self.probs.insert(row.clone(), p);
                    self.order.push(row.clone());
                }
            }
        }
    }

    /// Finish: the source's answer tuples in first-seen order. Accumulated
    /// probabilities are clamped through [`clamp_prob`], which caps
    /// ulp-level float drift above 1 and (in debug builds) flags genuine
    /// excess beyond `PROB_EPS` as an upstream distribution bug.
    pub fn finish(self) -> Vec<AnswerTuple> {
        self.order
            .into_iter()
            .map(|values| {
                let probability = clamp_prob(self.probs.get(&values).copied().unwrap_or(0.0));
                AnswerTuple {
                    values,
                    probability,
                }
            })
            .collect()
    }

    /// Whether nothing was accumulated.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// Answers collected from every source for one query.
#[derive(Debug, Clone, Default)]
pub struct AnswerSet {
    per_source: Vec<(SourceId, Vec<AnswerTuple>)>,
}

impl AnswerSet {
    /// Empty answer set.
    pub fn new() -> AnswerSet {
        AnswerSet::default()
    }

    /// Attach one source's answers.
    pub fn add_source(&mut self, source: SourceId, tuples: Vec<AnswerTuple>) {
        if !tuples.is_empty() {
            self.per_source.push((source, tuples));
        }
    }

    /// The flat answer list: every source's tuples concatenated, duplicates
    /// across sources retained (the paper's precision/recall view).
    pub fn flat(&self) -> Vec<&AnswerTuple> {
        self.per_source
            .iter()
            .flat_map(|(_, ts)| ts.iter())
            .collect()
    }

    /// Number of flat answers.
    pub fn len(&self) -> usize {
        self.per_source.iter().map(|(_, ts)| ts.len()).sum()
    }

    /// Whether no source produced answers.
    pub fn is_empty(&self) -> bool {
        self.per_source.is_empty()
    }

    /// Per-source view `(source, tuples)`.
    pub fn by_source(&self) -> &[(SourceId, Vec<AnswerTuple>)] {
        &self.per_source
    }

    /// Deduplicate across sources with probabilistic disjunction and rank by
    /// probability (descending, ties broken by tuple order for determinism).
    pub fn combined(&self) -> Vec<AnswerTuple> {
        let mut acc: HashMap<Row, f64> = HashMap::new();
        let mut order: Vec<Row> = Vec::new();
        for (_, tuples) in &self.per_source {
            for t in tuples {
                match acc.get_mut(&t.values) {
                    // 1 - (1-p)(1-q) accumulated incrementally.
                    Some(p) => *p = 1.0 - (1.0 - *p) * (1.0 - t.probability),
                    None => {
                        acc.insert(t.values.clone(), t.probability);
                        order.push(t.values.clone());
                    }
                }
            }
        }
        let mut out: Vec<AnswerTuple> = order
            .into_iter()
            .map(|values| {
                let probability = acc.get(&values).copied().unwrap_or(0.0);
                AnswerTuple {
                    values,
                    probability,
                }
            })
            .collect();
        out.sort_by(|a, b| {
            b.probability
                .partial_cmp(&a.probability)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        out
    }

    /// The top-`k` combined answers.
    pub fn top_k(&self, k: usize) -> Vec<AnswerTuple> {
        let mut c = self.combined();
        c.truncate(k);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udi_store::Value;

    fn row(s: &str) -> Row {
        vec![Value::text(s)]
    }

    #[test]
    fn accumulator_sums_across_mappings() {
        let mut acc = SourceAccumulator::new();
        acc.add_mapping(&[row("a"), row("b")], 0.6);
        acc.add_mapping(&[row("a")], 0.3);
        let ts = acc.finish();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].values, row("a"));
        assert!((ts[0].probability - 0.9).abs() < 1e-12);
        assert!((ts[1].probability - 0.6).abs() < 1e-12);
    }

    #[test]
    fn accumulator_dedupes_within_one_mapping() {
        let mut acc = SourceAccumulator::new();
        acc.add_mapping(&[row("a"), row("a"), row("a")], 0.5);
        let ts = acc.finish();
        assert_eq!(ts.len(), 1);
        assert!((ts[0].probability - 0.5).abs() < 1e-12);
    }

    #[test]
    fn accumulator_ignores_zero_probability_mappings() {
        let mut acc = SourceAccumulator::new();
        acc.add_mapping(&[row("a")], 0.0);
        assert!(acc.is_empty());
    }

    #[test]
    fn accumulator_caps_at_one() {
        let mut acc = SourceAccumulator::new();
        // Masses from one distribution can sum a few ulps past 1 — the
        // float-drift scenario clamp_prob exists for.
        acc.add_mapping(&[row("a")], 0.3);
        acc.add_mapping(&[row("a")], 0.7000000000000003);
        let ts = acc.finish();
        assert_eq!(ts[0].probability, 1.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "exceeds 1 by more than PROB_EPS")]
    fn accumulator_flags_distributions_summing_past_one() {
        // Excess far beyond PROB_EPS is not drift but an upstream bug; the
        // debug build refuses to paper over it.
        let mut acc = SourceAccumulator::new();
        acc.add_mapping(&[row("a")], 0.7);
        acc.add_mapping(&[row("a")], 0.7);
        let _ = acc.finish();
    }

    #[test]
    fn accumulator_dedup_is_fast_and_order_preserving_on_large_bags() {
        // 20k rows over 200 distinct values: the old O(n²) Vec::contains
        // scan made this pathological; the hashed seen-set keeps it linear
        // while preserving first-seen output order exactly.
        let rows: Vec<Row> = (0..20_000).map(|i| row(&format!("v{}", i % 200))).collect();
        let mut acc = SourceAccumulator::new();
        acc.add_mapping(&rows, 0.5);
        acc.add_mapping(&rows, 0.25);
        let ts = acc.finish();
        assert_eq!(ts.len(), 200);
        for (i, t) in ts.iter().enumerate() {
            assert_eq!(t.values, row(&format!("v{i}")), "first-seen order");
            assert!((t.probability - 0.75).abs() < 1e-12);
        }
    }

    #[test]
    fn disjunction_across_sources() {
        let mut set = AnswerSet::new();
        set.add_source(
            SourceId(0),
            vec![AnswerTuple {
                values: row("x"),
                probability: 0.5,
            }],
        );
        set.add_source(
            SourceId(1),
            vec![AnswerTuple {
                values: row("x"),
                probability: 0.5,
            }],
        );
        let c = set.combined();
        assert_eq!(c.len(), 1);
        assert!((c[0].probability - 0.75).abs() < 1e-12);
        // Flat view keeps both.
        assert_eq!(set.flat().len(), 2);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn combined_is_ranked_descending() {
        let mut set = AnswerSet::new();
        set.add_source(
            SourceId(0),
            vec![
                AnswerTuple {
                    values: row("lo"),
                    probability: 0.2,
                },
                AnswerTuple {
                    values: row("hi"),
                    probability: 0.9,
                },
            ],
        );
        let c = set.combined();
        assert_eq!(c[0].values, row("hi"));
        assert_eq!(c[1].values, row("lo"));
    }

    #[test]
    fn top_k_truncates() {
        let mut set = AnswerSet::new();
        set.add_source(
            SourceId(0),
            vec![
                AnswerTuple {
                    values: row("a"),
                    probability: 0.2,
                },
                AnswerTuple {
                    values: row("b"),
                    probability: 0.9,
                },
                AnswerTuple {
                    values: row("c"),
                    probability: 0.5,
                },
            ],
        );
        let top = set.top_k(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].values, row("b"));
        assert_eq!(top[1].values, row("c"));
    }

    #[test]
    fn empty_answer_set() {
        let set = AnswerSet::new();
        assert!(set.is_empty());
        assert!(set.combined().is_empty());
        assert!(set.flat().is_empty());
        let mut set2 = AnswerSet::new();
        set2.add_source(SourceId(0), vec![]);
        assert!(set2.is_empty(), "empty source contributions are dropped");
    }
}

//! A hand-written parser for the `SELECT ... FROM ... WHERE ...` fragment.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query     := SELECT attrs FROM ident (WHERE pred (AND pred)*)?
//! attrs     := attr (',' attr)*
//! attr      := ident | quoted
//! pred      := attr op literal
//! op        := '=' | '!=' | '<>' | '<' | '<=' | '>' | '>=' | LIKE
//! literal   := 'single-quoted string' | number
//! ident     := [A-Za-z0-9_$./()#-]+          (web-table labels are messy)
//! quoted    := '"' anything '"' | '`' anything '`'
//! ```

use udi_store::Value;

use crate::aggregate::{AggFunc, Aggregate, AggregateQuery};
use crate::ast::{CompareOp, Predicate, Query};

/// Parse failure with a human-readable message and byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where the problem was noticed.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Cursor<'a> {
        Cursor { src, pos: 0 }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.rest().starts_with(|c: char| c.is_whitespace()) {
            self.pos += self.rest().chars().next().map_or(0, char::len_utf8);
        }
    }

    fn rest(&self) -> &'a str {
        // `pos` always lands on a char boundary; checked slicing keeps the
        // cursor total even if that invariant were ever broken.
        self.src.get(self.pos..).unwrap_or("")
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.rest().is_empty()
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = self.rest();
        // Checked slicing: a multibyte char at the boundary yields None
        // instead of panicking, which simply fails the match.
        let head_matches = rest
            .get(..kw.len())
            .is_some_and(|head| head.eq_ignore_ascii_case(kw));
        if head_matches {
            // Keyword must end at a word boundary.
            let after = rest.get(kw.len()..).unwrap_or("");
            if after.is_empty() || !after.starts_with(|c: char| c.is_alphanumeric() || c == '_') {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn advance(&mut self, n: usize) {
        self.pos += n;
    }

    fn eat_char(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.rest().starts_with(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn parse_attr(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let rest = self.rest();
        if let Some(q) = rest.chars().next().filter(|&c| c == '"' || c == '`') {
            let body_start = self.pos + 1;
            let tail = self.src.get(body_start..).unwrap_or("");
            if let Some(end) = tail.find(q) {
                let name = tail.get(..end).unwrap_or("").to_owned();
                self.pos = body_start + end + 1;
                return Ok(name);
            }
            return Err(self.err(format!("unterminated {q}-quoted identifier")));
        }
        let is_ident = |c: char| c.is_alphanumeric() || "_$./()#-".contains(c);
        let len: usize = rest
            .chars()
            .take_while(|&c| is_ident(c))
            .map(char::len_utf8)
            .sum();
        if len == 0 {
            return Err(self.err("expected identifier"));
        }
        let name = rest.get(..len).unwrap_or("");
        self.pos += len;
        Ok(name.to_owned())
    }

    /// Like [`Cursor::parse_attr`] but for aggregate arguments, where the
    /// closing `)` belongs to the function call, not the identifier (plain
    /// identifiers may otherwise contain parentheses, e.g. `author(s)`).
    fn parse_agg_attr(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let rest = self.rest();
        if rest.starts_with('"') || rest.starts_with('`') {
            return self.parse_attr();
        }
        let is_ident = |c: char| c.is_alphanumeric() || "_$./#- ".contains(c);
        let len: usize = rest
            .chars()
            .take_while(|&c| is_ident(c))
            .map(char::len_utf8)
            .sum();
        if len == 0 {
            return Err(self.err("expected identifier"));
        }
        let name = rest.get(..len).unwrap_or("").trim_end();
        self.pos += name.len();
        Ok(name.to_owned())
    }

    fn parse_op(&mut self) -> Result<CompareOp, ParseError> {
        self.skip_ws();
        if self.eat_keyword("LIKE") {
            return Ok(CompareOp::Like);
        }
        let two = &self.rest().get(..2).unwrap_or("");
        let op = match *two {
            "!=" | "<>" => Some((CompareOp::Ne, 2)),
            "<=" => Some((CompareOp::Le, 2)),
            ">=" => Some((CompareOp::Ge, 2)),
            _ => None,
        };
        let (op, n) = match op {
            Some(x) => x,
            None => match self.rest().chars().next() {
                Some('=') => (CompareOp::Eq, 1),
                Some('<') => (CompareOp::Lt, 1),
                Some('>') => (CompareOp::Gt, 1),
                _ => return Err(self.err("expected comparison operator")),
            },
        };
        self.pos += n;
        Ok(op)
    }

    fn parse_literal(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        let rest = self.rest();
        if rest.starts_with('\'') {
            // Single-quoted string; '' escapes a quote.
            let mut out = String::new();
            let mut chars = rest.char_indices().skip(1).peekable();
            while let Some((i, c)) = chars.next() {
                if c == '\'' {
                    if chars.peek().map(|&(_, c2)| c2) == Some('\'') {
                        out.push('\'');
                        chars.next();
                    } else {
                        self.pos += i + 1;
                        return Ok(Value::Text(out));
                    }
                } else {
                    out.push(c);
                }
            }
            return Err(self.err("unterminated string literal"));
        }
        let is_num = |c: char| c.is_ascii_digit() || c == '.' || c == '-' || c == '+';
        let len: usize = rest.chars().take_while(|&c| is_num(c)).count();
        if len == 0 {
            return Err(self.err("expected literal"));
        }
        let raw = rest.get(..len).unwrap_or("");
        self.pos += len;
        if let Ok(i) = raw.parse::<i64>() {
            return Ok(Value::Int(i));
        }
        raw.parse::<f64>()
            .map(Value::float)
            .map_err(|_| self.err(format!("invalid numeric literal `{raw}`")))
    }
}

/// Parse a SQL text into a [`Query`].
///
/// ```
/// use udi_query::parse_query;
/// let q = parse_query(
///     "SELECT title, year FROM movies WHERE year >= 1990 AND title LIKE '%star%'",
/// ).unwrap();
/// assert_eq!(q.select, vec!["title", "year"]);
/// assert_eq!(q.predicates.len(), 2);
/// ```
pub fn parse_query(sql: &str) -> Result<Query, ParseError> {
    let mut c = Cursor::new(sql);
    if !c.eat_keyword("SELECT") {
        return Err(c.err("expected SELECT"));
    }
    let mut select = vec![c.parse_attr()?];
    while c.eat_char(',') {
        select.push(c.parse_attr()?);
    }
    if !c.eat_keyword("FROM") {
        return Err(c.err("expected FROM"));
    }
    let from = c.parse_attr()?;
    let mut predicates = Vec::new();
    if c.eat_keyword("WHERE") {
        loop {
            let attribute = c.parse_attr()?;
            let op = c.parse_op()?;
            let value = c.parse_literal()?;
            predicates.push(Predicate {
                attribute,
                op,
                value,
            });
            if !c.eat_keyword("AND") {
                break;
            }
        }
    }
    if !c.at_end() {
        return Err(c.err("unexpected trailing input"));
    }
    Ok(Query {
        select,
        predicates,
        from,
    })
}

/// Parse a grouped aggregate query:
///
/// ```text
/// SELECT genre, COUNT(*), AVG(rating) FROM movies WHERE year >= 1990 GROUP BY genre
/// ```
///
/// Plain attributes in the select list must reappear in `GROUP BY` (SQL's
/// rule); an aggregate-only select list needs no `GROUP BY`.
///
/// ```
/// use udi_query::{parse_aggregate_query, AggFunc};
/// let q = parse_aggregate_query(
///     "SELECT genre, COUNT(*), MAX(rating) FROM m GROUP BY genre",
/// ).unwrap();
/// assert_eq!(q.group_by, vec!["genre"]);
/// assert_eq!(q.aggregates.len(), 2);
/// assert_eq!(q.aggregates[0].func, AggFunc::Count);
/// ```
pub fn parse_aggregate_query(sql: &str) -> Result<AggregateQuery, ParseError> {
    let mut c = Cursor::new(sql);
    if !c.eat_keyword("SELECT") {
        return Err(c.err("expected SELECT"));
    }
    let mut plain: Vec<String> = Vec::new();
    let mut aggregates: Vec<Aggregate> = Vec::new();
    loop {
        c.skip_ws();
        let agg = [
            ("COUNT", AggFunc::Count),
            ("SUM", AggFunc::Sum),
            ("AVG", AggFunc::Avg),
            ("MIN", AggFunc::Min),
            ("MAX", AggFunc::Max),
        ]
        .iter()
        .find(|(kw, _)| {
            let rest = c.rest();
            rest.get(..kw.len())
                .is_some_and(|head| head.eq_ignore_ascii_case(kw))
                && rest
                    .get(kw.len()..)
                    .unwrap_or("")
                    .trim_start()
                    .starts_with('(')
        })
        .copied();
        match agg {
            Some((kw, func)) => {
                c.advance(kw.len());
                if !c.eat_char('(') {
                    return Err(c.err("expected ( after aggregate function"));
                }
                c.skip_ws();
                let attribute = if c.eat_char('*') {
                    if func != AggFunc::Count {
                        return Err(c.err("only COUNT accepts *"));
                    }
                    None
                } else {
                    Some(c.parse_agg_attr()?)
                };
                if !c.eat_char(')') {
                    return Err(c.err("expected ) after aggregate argument"));
                }
                aggregates.push(Aggregate { func, attribute });
            }
            None => plain.push(c.parse_attr()?),
        }
        if !c.eat_char(',') {
            break;
        }
    }
    if aggregates.is_empty() {
        return Err(c.err("aggregate query needs at least one aggregate"));
    }
    if !c.eat_keyword("FROM") {
        return Err(c.err("expected FROM"));
    }
    let from = c.parse_attr()?;
    let mut predicates = Vec::new();
    if c.eat_keyword("WHERE") {
        loop {
            let attribute = c.parse_attr()?;
            let op = c.parse_op()?;
            let value = c.parse_literal()?;
            predicates.push(Predicate {
                attribute,
                op,
                value,
            });
            if !c.eat_keyword("AND") {
                break;
            }
        }
    }
    let mut group_by: Vec<String> = Vec::new();
    if c.eat_keyword("GROUP") {
        if !c.eat_keyword("BY") {
            return Err(c.err("expected BY after GROUP"));
        }
        group_by.push(c.parse_attr()?);
        while c.eat_char(',') {
            group_by.push(c.parse_attr()?);
        }
    }
    if !c.at_end() {
        return Err(c.err("unexpected trailing input"));
    }
    // SQL rule: every non-aggregated select attribute must be grouped.
    for a in &plain {
        if !group_by.contains(a) {
            return Err(ParseError {
                message: format!("select attribute `{a}` must appear in GROUP BY"),
                offset: 0,
            });
        }
    }
    // Output order: group-by attributes are projected in group_by order.
    Ok(AggregateQuery {
        group_by,
        aggregates,
        predicates,
        from,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_query() {
        let q = parse_query("SELECT name FROM people").unwrap();
        assert_eq!(q.select, vec!["name"]);
        assert_eq!(q.from, "people");
        assert!(q.predicates.is_empty());
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let q = parse_query("select Name from T where Age > 3").unwrap();
        assert_eq!(q.select, vec!["Name"]);
        assert_eq!(q.predicates[0].op, CompareOp::Gt);
    }

    #[test]
    fn all_operators_parse() {
        for (txt, op) in [
            ("=", CompareOp::Eq),
            ("!=", CompareOp::Ne),
            ("<>", CompareOp::Ne),
            ("<", CompareOp::Lt),
            ("<=", CompareOp::Le),
            (">", CompareOp::Gt),
            (">=", CompareOp::Ge),
            ("LIKE", CompareOp::Like),
        ] {
            let sql = format!("SELECT a FROM t WHERE a {txt} '1'");
            let q = parse_query(&sql).unwrap();
            assert_eq!(q.predicates[0].op, op, "{txt}");
        }
    }

    #[test]
    fn literals_and_escapes() {
        let q =
            parse_query("SELECT a FROM t WHERE a = 'O''Brien' AND b = -4.5 AND c = 12").unwrap();
        assert_eq!(q.predicates[0].value, Value::text("O'Brien"));
        assert_eq!(q.predicates[1].value, Value::Float(-4.5));
        assert_eq!(q.predicates[2].value, Value::Int(12));
    }

    #[test]
    fn quoted_and_messy_identifiers() {
        let q =
            parse_query("SELECT \"pages/rec. no\", `link to pubmed`, author(s) FROM t").unwrap();
        assert_eq!(
            q.select,
            vec!["pages/rec. no", "link to pubmed", "author(s)"]
        );
    }

    #[test]
    fn errors_carry_offsets() {
        let e = parse_query("ELECT a FROM t").unwrap_err();
        assert!(e.message.contains("SELECT"));
        let e = parse_query("SELECT a FROM t WHERE a = ").unwrap_err();
        assert!(e.message.contains("literal"));
        let e = parse_query("SELECT a FROM t garbage").unwrap_err();
        assert!(e.message.contains("trailing"));
        let e = parse_query("SELECT a FROM t WHERE a = 'x").unwrap_err();
        assert!(e.message.contains("unterminated"));
        assert!(e.to_string().contains("parse error"));
    }

    #[test]
    fn and_is_not_greedy_into_identifiers() {
        // `android` starts with AND but must parse as an attribute.
        let q = parse_query("SELECT android FROM t WHERE android = 1").unwrap();
        assert_eq!(q.select, vec!["android"]);
    }

    #[test]
    fn aggregate_query_parses() {
        let q = parse_aggregate_query(
            "SELECT genre, COUNT(*), AVG(rating) FROM m WHERE year >= 1990 GROUP BY genre",
        )
        .unwrap();
        assert_eq!(q.group_by, vec!["genre"]);
        assert_eq!(q.aggregates.len(), 2);
        assert_eq!(
            q.aggregates[0],
            Aggregate {
                func: AggFunc::Count,
                attribute: None
            }
        );
        assert_eq!(
            q.aggregates[1],
            Aggregate {
                func: AggFunc::Avg,
                attribute: Some("rating".into())
            }
        );
        assert_eq!(q.predicates.len(), 1);
    }

    #[test]
    fn ungrouped_aggregate_parses() {
        let q = parse_aggregate_query("SELECT COUNT(*), MAX(price) FROM cars").unwrap();
        assert!(q.group_by.is_empty());
        assert_eq!(q.aggregates.len(), 2);
    }

    #[test]
    fn aggregate_query_display_round_trips() {
        let src = "SELECT genre, COUNT(*), AVG(rating) FROM m WHERE year >= 1990 GROUP BY genre";
        let q = parse_aggregate_query(src).unwrap();
        let q2 = parse_aggregate_query(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn aggregate_errors() {
        let e = parse_aggregate_query("SELECT genre FROM m GROUP BY genre").unwrap_err();
        assert!(e.message.contains("at least one aggregate"));
        let e = parse_aggregate_query("SELECT SUM(*) FROM m").unwrap_err();
        assert!(e.message.contains("only COUNT"));
        let e = parse_aggregate_query("SELECT title, COUNT(*) FROM m GROUP BY genre").unwrap_err();
        assert!(e.message.contains("must appear in GROUP BY"));
        let e = parse_aggregate_query("SELECT COUNT(x FROM m").unwrap_err();
        assert!(e.message.contains(")"));
    }

    #[test]
    fn count_is_not_greedy_on_identifiers() {
        // `counter` is an identifier, not COUNT(.
        let q = parse_aggregate_query("SELECT counter, COUNT(*) FROM m GROUP BY counter").unwrap();
        assert_eq!(q.group_by, vec!["counter"]);
    }

    #[test]
    fn display_parse_round_trip() {
        let src = "SELECT name, phone FROM T WHERE year >= 1990 AND title LIKE '%star%'";
        let q = parse_query(src).unwrap();
        let q2 = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }
}

#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Select–project queries over single-table sources, with probabilistic
//! answers.
//!
//! UDI "accepts select-project queries on the exposed mediated schema and
//! returns answers ranked by their probabilities" (§7.1; joins are out of
//! scope because every source is a single table). This crate provides:
//!
//! - [`Query`] / [`Predicate`]: the AST — a select list plus a conjunction
//!   of comparison predicates (`=, ≠, <, ≤, >, ≥, LIKE` as in §7.1);
//! - [`parse_query`]: a small SQL parser for the
//!   `SELECT ... FROM ... WHERE ...` fragment the paper's workload uses;
//! - [`execute_with_binding`]: evaluation of a query against one source
//!   table under an attribute binding (query attribute → source attribute),
//!   which is how a rewritten query runs after p-mapping reformulation;
//! - [`AnswerSet`]: by-table probabilistic answers — per-source tuple
//!   probabilities are summed over the mappings that produce the tuple, and
//!   sources combine by probabilistic disjunction `1 − Π(1 − p_i)` (§2).
//!
//! # Quickstart
//!
//! ```
//! use udi_store::{Table, Value};
//! use udi_query::{parse_query, execute_with_binding, Binding};
//!
//! let mut t = Table::new("s", ["full_name", "tel"]);
//! t.push_raw_row(["Alice", "123-4567"]).unwrap();
//! t.push_raw_row(["Bob", "765-4321"]).unwrap();
//!
//! let q = parse_query("SELECT name, phone FROM people WHERE name = 'Alice'").unwrap();
//! let mut b = Binding::new();
//! b.bind("name", "full_name");
//! b.bind("phone", "tel");
//! let rows = execute_with_binding(&t, &q, &b);
//! assert_eq!(rows.len(), 1);
//! assert_eq!(rows[0][1], Value::text("123-4567"));
//! ```

pub mod aggregate;
pub mod answer;
pub mod ast;
pub mod exec;
pub mod parse;

pub use aggregate::{execute_aggregate_with_binding, AggFunc, Aggregate, AggregateQuery};
pub use answer::{AnswerSet, AnswerTuple, SourceAccumulator};
pub use ast::{CompareOp, Predicate, Query};
pub use exec::{execute_with_binding, execute_with_binding_indexed, Binding};
pub use parse::{parse_aggregate_query, parse_query, ParseError};

//! Aggregate (GROUP BY) queries — an extension beyond the paper's
//! select–project workload.
//!
//! Semantics follow the paper's per-source union model: the aggregate is
//! evaluated *within each source* under each possible mapping (by-table),
//! and the resulting group rows are combined across mappings and sources
//! like any other answer tuples. There is no cross-source fusion — merging
//! counts across sources would require entity resolution, which is outside
//! the paper's scope (its §2 explicitly assumes independent sources and
//! defers derived-source handling).

use std::collections::BTreeMap;

use udi_store::{Row, Table, Value};

use crate::ast::Predicate;
use crate::exec::Binding;

/// An aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` or `COUNT(attr)` (non-NULL values).
    Count,
    /// Sum of numeric values (NULLs and non-numerics skipped).
    Sum,
    /// Mean of numeric values.
    Avg,
    /// Minimum value (SQL ordering).
    Min,
    /// Maximum value.
    Max,
}

impl AggFunc {
    /// SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// One aggregate in the select list: `FUNC(attr)` or `COUNT(*)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// The function.
    pub func: AggFunc,
    /// The attribute aggregated over; `None` only for `COUNT(*)`.
    pub attribute: Option<String>,
}

/// A grouped aggregate query:
/// `SELECT group_by..., aggregates... FROM t WHERE ... GROUP BY group_by...`.
///
/// With an empty `group_by`, the whole (filtered) table is one group.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateQuery {
    /// Grouping attributes, in output order (projected before aggregates).
    pub group_by: Vec<String>,
    /// Aggregates, projected after the grouping attributes.
    pub aggregates: Vec<Aggregate>,
    /// Conjunctive predicates, evaluated before grouping.
    pub predicates: Vec<Predicate>,
    /// Inert FROM name.
    pub from: String,
}

impl AggregateQuery {
    /// All attribute names the query references: group-by attributes,
    /// aggregate arguments, then predicate attributes; deduplicated in
    /// first-appearance order.
    pub fn referenced_attributes(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for a in self.group_by.iter().map(String::as_str) {
            if !out.contains(&a) {
                out.push(a);
            }
        }
        for agg in &self.aggregates {
            if let Some(a) = agg.attribute.as_deref() {
                if !out.contains(&a) {
                    out.push(a);
                }
            }
        }
        for p in &self.predicates {
            let a = p.attribute.as_str();
            if !out.contains(&a) {
                out.push(a);
            }
        }
        out
    }
}

impl std::fmt::Display for AggregateQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut items: Vec<String> = self.group_by.clone();
        for a in &self.aggregates {
            match &a.attribute {
                Some(attr) => items.push(format!("{}({attr})", a.func.name())),
                None => items.push(format!("{}(*)", a.func.name())),
            }
        }
        write!(f, "SELECT {} FROM {}", items.join(", "), self.from)?;
        if !self.predicates.is_empty() {
            let preds: Vec<String> = self
                .predicates
                .iter()
                .map(|p| {
                    let rhs = match &p.value {
                        Value::Text(s) => format!("'{s}'"),
                        v => v.to_string(),
                    };
                    format!("{} {} {}", p.attribute, p.op.symbol(), rhs)
                })
                .collect();
            write!(f, " WHERE {}", preds.join(" AND "))?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY {}", self.group_by.join(", "))?;
        }
        Ok(())
    }
}

/// Running state of one aggregate over one group.
#[derive(Debug, Clone)]
enum AggState {
    Count(u64),
    Sum(f64, bool),
    Avg(f64, u64),
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(f: AggFunc) -> AggState {
        match f {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum(0.0, false),
            AggFunc::Avg => AggState::Avg(0.0, 0),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    /// Feed one cell (`None` = COUNT(*) row marker).
    fn feed(&mut self, v: Option<&Value>) {
        match self {
            AggState::Count(n) => {
                if v.is_none_or(|x| !x.is_null()) {
                    *n += 1;
                }
            }
            AggState::Sum(acc, any) => {
                if let Some(x) = v.and_then(Value::as_f64) {
                    *acc += x;
                    *any = true;
                }
            }
            AggState::Avg(acc, n) => {
                if let Some(x) = v.and_then(Value::as_f64) {
                    *acc += x;
                    *n += 1;
                }
            }
            AggState::Min(cur) => {
                if let Some(x) = v.filter(|x| !x.is_null()) {
                    if cur.as_ref().is_none_or(|c| x < c) {
                        *cur = Some(x.clone());
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(x) = v.filter(|x| !x.is_null()) {
                    if cur.as_ref().is_none_or(|c| x > c) {
                        *cur = Some(x.clone());
                    }
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n as i64),
            AggState::Sum(acc, true) => Value::float(acc),
            AggState::Sum(_, false) => Value::Null,
            AggState::Avg(acc, n) if n > 0 => Value::float(acc / n as f64),
            AggState::Avg(..) => Value::Null,
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

/// Execute an aggregate query on one table under an attribute binding.
/// Output rows are `group_by values ++ aggregate values`, ordered by group
/// key. Returns the empty result when any referenced attribute is unbound;
/// an ungrouped query over zero qualifying rows yields one row of empty
/// aggregates (`COUNT = 0`), matching SQL.
pub fn execute_aggregate_with_binding(
    table: &Table,
    query: &AggregateQuery,
    binding: &Binding,
) -> Vec<Row> {
    let resolve = |attr: &str| -> Option<usize> {
        binding.get(attr).and_then(|src| table.attribute_index(src))
    };
    let mut group_cols = Vec::with_capacity(query.group_by.len());
    for a in &query.group_by {
        match resolve(a) {
            Some(i) => group_cols.push(i),
            None => return Vec::new(),
        }
    }
    let mut agg_cols: Vec<Option<usize>> = Vec::with_capacity(query.aggregates.len());
    for a in &query.aggregates {
        match &a.attribute {
            None => agg_cols.push(None),
            Some(attr) => match resolve(attr) {
                Some(i) => agg_cols.push(Some(i)),
                None => return Vec::new(),
            },
        }
    }
    let mut pred_cols = Vec::with_capacity(query.predicates.len());
    for p in &query.predicates {
        match resolve(&p.attribute) {
            Some(i) => pred_cols.push(i),
            None => return Vec::new(),
        }
    }

    // Columnar scan over the referenced segments only.
    let column = |c: usize| table.column(c).unwrap_or(&[]);
    let pred_slices: Vec<&[Value]> = pred_cols.iter().map(|&c| column(c)).collect();
    let group_slices: Vec<&[Value]> = group_cols.iter().map(|&c| column(c)).collect();
    let agg_slices: Vec<Option<&[Value]>> = agg_cols.iter().map(|c| c.map(&column)).collect();

    let mut groups: BTreeMap<Row, Vec<AggState>> = BTreeMap::new();
    'rows: for ri in 0..table.row_count() {
        for (p, col) in query.predicates.iter().zip(&pred_slices) {
            // Checked access: a short column (impossible for a well-formed
            // table) reads as no-match instead of panicking.
            let Some(v) = col.get(ri) else { continue 'rows };
            if !p.op.eval(v, &p.value) {
                continue 'rows;
            }
        }
        let key: Row = group_slices
            .iter()
            .map(|s| s.get(ri).cloned().unwrap_or(Value::Null))
            .collect();
        let states = groups.entry(key).or_insert_with(|| {
            query
                .aggregates
                .iter()
                .map(|a| AggState::new(a.func))
                .collect()
        });
        for (state, col) in states.iter_mut().zip(&agg_slices) {
            state.feed(col.and_then(|s| s.get(ri)));
        }
    }
    if groups.is_empty() && query.group_by.is_empty() {
        // SQL: an ungrouped aggregate over zero rows still yields one row.
        groups.insert(
            Vec::new(),
            query
                .aggregates
                .iter()
                .map(|a| AggState::new(a.func))
                .collect(),
        );
    }
    groups
        .into_iter()
        .map(|(mut key, states)| {
            key.extend(states.into_iter().map(AggState::finish));
            key
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CompareOp;

    fn table() -> Table {
        let mut t = Table::new("movies", ["genre", "rating", "title"]);
        t.push_raw_row(["Drama", "8", "A"]).unwrap();
        t.push_raw_row(["Drama", "6", "B"]).unwrap();
        t.push_raw_row(["Comedy", "7", "C"]).unwrap();
        t.push_raw_row(["Comedy", "", "D"]).unwrap(); // NULL rating
        t
    }

    fn binding() -> Binding {
        let mut b = Binding::new();
        b.bind("genre", "genre")
            .bind("rating", "rating")
            .bind("title", "title");
        b
    }

    fn q(group: &[&str], aggs: &[(AggFunc, Option<&str>)]) -> AggregateQuery {
        AggregateQuery {
            group_by: group.iter().map(|s| (*s).to_owned()).collect(),
            aggregates: aggs
                .iter()
                .map(|(f, a)| Aggregate {
                    func: *f,
                    attribute: a.map(str::to_owned),
                })
                .collect(),
            predicates: vec![],
            from: "t".to_owned(),
        }
    }

    #[test]
    fn count_star_per_group() {
        let rows = execute_aggregate_with_binding(
            &table(),
            &q(&["genre"], &[(AggFunc::Count, None)]),
            &binding(),
        );
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![Value::text("Comedy"), Value::Int(2)]);
        assert_eq!(rows[1], vec![Value::text("Drama"), Value::Int(2)]);
    }

    #[test]
    fn count_attr_skips_nulls() {
        let rows = execute_aggregate_with_binding(
            &table(),
            &q(&["genre"], &[(AggFunc::Count, Some("rating"))]),
            &binding(),
        );
        assert_eq!(rows[0], vec![Value::text("Comedy"), Value::Int(1)]);
    }

    #[test]
    fn sum_avg_min_max() {
        let rows = execute_aggregate_with_binding(
            &table(),
            &q(
                &["genre"],
                &[
                    (AggFunc::Sum, Some("rating")),
                    (AggFunc::Avg, Some("rating")),
                    (AggFunc::Min, Some("rating")),
                    (AggFunc::Max, Some("rating")),
                ],
            ),
            &binding(),
        );
        // Drama: sum 14, avg 7, min 6, max 8.
        assert_eq!(
            rows[1],
            vec![
                Value::text("Drama"),
                Value::Int(14),
                Value::Int(7),
                Value::Int(6),
                Value::Int(8),
            ]
        );
    }

    #[test]
    fn ungrouped_aggregate_is_one_row() {
        let rows = execute_aggregate_with_binding(
            &table(),
            &q(
                &[],
                &[(AggFunc::Count, None), (AggFunc::Max, Some("rating"))],
            ),
            &binding(),
        );
        assert_eq!(rows, vec![vec![Value::Int(4), Value::Int(8)]]);
    }

    #[test]
    fn ungrouped_over_empty_selection_yields_zero_count() {
        let mut query = q(
            &[],
            &[(AggFunc::Count, None), (AggFunc::Sum, Some("rating"))],
        );
        query
            .predicates
            .push(Predicate::new("genre", CompareOp::Eq, "Western"));
        let rows = execute_aggregate_with_binding(&table(), &query, &binding());
        assert_eq!(rows, vec![vec![Value::Int(0), Value::Null]]);
    }

    #[test]
    fn grouped_over_empty_selection_yields_nothing() {
        let mut query = q(&["genre"], &[(AggFunc::Count, None)]);
        query
            .predicates
            .push(Predicate::new("genre", CompareOp::Eq, "Western"));
        assert!(execute_aggregate_with_binding(&table(), &query, &binding()).is_empty());
    }

    #[test]
    fn unbound_attribute_yields_nothing() {
        let query = q(&["genre"], &[(AggFunc::Sum, Some("salary"))]);
        assert!(execute_aggregate_with_binding(&table(), &query, &binding()).is_empty());
    }

    #[test]
    fn predicates_filter_before_grouping() {
        let mut query = q(&["genre"], &[(AggFunc::Count, None)]);
        query
            .predicates
            .push(Predicate::new("rating", CompareOp::Ge, 7_i64));
        let rows = execute_aggregate_with_binding(&table(), &query, &binding());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![Value::text("Comedy"), Value::Int(1)]);
        assert_eq!(rows[1], vec![Value::text("Drama"), Value::Int(1)]);
    }

    #[test]
    fn display_renders_sql() {
        let mut query = q(
            &["genre"],
            &[(AggFunc::Count, None), (AggFunc::Avg, Some("rating"))],
        );
        query
            .predicates
            .push(Predicate::new("rating", CompareOp::Gt, 5_i64));
        assert_eq!(
            query.to_string(),
            "SELECT genre, COUNT(*), AVG(rating) FROM t WHERE rating > 5 GROUP BY genre"
        );
    }

    #[test]
    fn referenced_attributes_cover_all_clauses() {
        let mut query = q(&["genre"], &[(AggFunc::Avg, Some("rating"))]);
        query
            .predicates
            .push(Predicate::new("title", CompareOp::Ne, "X"));
        assert_eq!(
            query.referenced_attributes(),
            vec!["genre", "rating", "title"]
        );
    }
}

//! Query AST: select list plus conjunctive comparison predicates.

use udi_store::{like_match, Value};

/// Comparison operators supported in `WHERE` clauses (§7.1: "the operator
/// can be =, ≠, <, ≤, >, ≥ and LIKE").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `LIKE` with `%`/`_` wildcards, case-insensitive.
    Like,
}

impl CompareOp {
    /// Evaluate the operator under SQL three-valued logic: comparisons with
    /// NULL are not satisfied.
    pub fn eval(self, left: &Value, right: &Value) -> bool {
        use std::cmp::Ordering::*;
        if let CompareOp::Like = self {
            if left.is_null() || right.is_null() {
                return false;
            }
            return like_match(&left.to_string(), &right.to_string());
        }
        let Some(ord) = left.sql_cmp(right) else {
            return false;
        };
        match self {
            CompareOp::Eq => ord == Equal,
            CompareOp::Ne => ord != Equal,
            CompareOp::Lt => ord == Less,
            CompareOp::Le => ord != Greater,
            CompareOp::Gt => ord == Greater,
            CompareOp::Ge => ord != Less,
            // Returned early at the top of the function; any ordering here
            // is unreachable, and `false` is the safe SQL answer anyway.
            CompareOp::Like => false,
        }
    }

    /// SQL spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
            CompareOp::Like => "LIKE",
        }
    }
}

/// A single predicate `attribute OP literal`.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Attribute the predicate constrains (a mediated/source attribute name).
    pub attribute: String,
    /// Comparison operator.
    pub op: CompareOp,
    /// Literal right-hand side.
    pub value: Value,
}

impl Predicate {
    /// Construct a predicate.
    pub fn new(attribute: impl Into<String>, op: CompareOp, value: impl Into<Value>) -> Predicate {
        Predicate {
            attribute: attribute.into(),
            op,
            value: value.into(),
        }
    }
}

/// A select–project query: `SELECT select... FROM <table> WHERE predicates`.
///
/// The `FROM` table name is kept for display but is semantically inert —
/// the paper's mediated schema is a single virtual table.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Projected attributes, in output order.
    pub select: Vec<String>,
    /// Conjunctive predicates.
    pub predicates: Vec<Predicate>,
    /// The (inert) table name from the FROM clause.
    pub from: String,
}

impl Query {
    /// Build a query programmatically.
    pub fn new<I, S>(select: I, predicates: Vec<Predicate>) -> Query
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Query {
            select: select.into_iter().map(Into::into).collect(),
            predicates,
            from: "T".to_owned(),
        }
    }

    /// All attribute names the query references (select list then predicate
    /// attributes), deduplicated, in first-appearance order.
    pub fn referenced_attributes(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for a in self.select.iter().map(String::as_str) {
            if !out.contains(&a) {
                out.push(a);
            }
        }
        for p in &self.predicates {
            let a = p.attribute.as_str();
            if !out.contains(&a) {
                out.push(a);
            }
        }
        out
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SELECT {} FROM {}", self.select.join(", "), self.from)?;
        if !self.predicates.is_empty() {
            let preds: Vec<String> = self
                .predicates
                .iter()
                .map(|p| {
                    let rhs = match &p.value {
                        Value::Text(s) => format!("'{s}'"),
                        v => v.to_string(),
                    };
                    format!("{} {} {}", p.attribute, p.op.symbol(), rhs)
                })
                .collect();
            write!(f, " WHERE {}", preds.join(" AND "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_op_numeric() {
        let a = Value::Int(3);
        let b = Value::Int(5);
        assert!(CompareOp::Lt.eval(&a, &b));
        assert!(CompareOp::Le.eval(&a, &b));
        assert!(CompareOp::Ne.eval(&a, &b));
        assert!(!CompareOp::Gt.eval(&a, &b));
        assert!(!CompareOp::Ge.eval(&a, &b));
        assert!(!CompareOp::Eq.eval(&a, &b));
        assert!(CompareOp::Eq.eval(&a, &Value::Float(3.0)));
    }

    #[test]
    fn compare_op_null_is_never_satisfied() {
        for op in [
            CompareOp::Eq,
            CompareOp::Ne,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
            CompareOp::Like,
        ] {
            assert!(!op.eval(&Value::Null, &Value::Int(1)), "{op:?}");
            assert!(!op.eval(&Value::Int(1), &Value::Null), "{op:?}");
        }
    }

    #[test]
    fn like_operator_delegates_to_pattern_matching() {
        let txt = Value::text("Data Integration");
        assert!(CompareOp::Like.eval(&txt, &Value::text("%integr%")));
        assert!(!CompareOp::Like.eval(&txt, &Value::text("integr")));
    }

    #[test]
    fn referenced_attributes_dedupes_in_order() {
        let q = Query::new(
            ["name", "phone"],
            vec![
                Predicate::new("phone", CompareOp::Eq, "x"),
                Predicate::new("city", CompareOp::Eq, "y"),
            ],
        );
        assert_eq!(q.referenced_attributes(), vec!["name", "phone", "city"]);
    }

    #[test]
    fn display_round_trip_shape() {
        let q = Query::new(
            ["name"],
            vec![Predicate::new("year", CompareOp::Ge, 1990_i64)],
        );
        assert_eq!(q.to_string(), "SELECT name FROM T WHERE year >= 1990");
    }
}

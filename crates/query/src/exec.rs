//! Query execution against one source table under an attribute binding.
//!
//! After p-mapping reformulation, a query over the mediated schema becomes a
//! query over a concrete source with each query attribute *bound* to at most
//! one source attribute (one-to-one mappings, Definition 3.2). A query whose
//! referenced attribute is unbound produces no answers from that source
//! under that mapping — the source simply cannot contribute.

use std::collections::HashMap;

use udi_store::{Row, Table, Value};

use crate::ast::Query;

/// An attribute binding: query attribute name → source attribute name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Binding {
    map: HashMap<String, String>,
}

impl Binding {
    /// Empty binding.
    pub fn new() -> Binding {
        Binding::default()
    }

    /// Bind query attribute `q` to source attribute `s`.
    pub fn bind(&mut self, q: impl Into<String>, s: impl Into<String>) -> &mut Binding {
        self.map.insert(q.into(), s.into());
        self
    }

    /// The source attribute bound to `q`, if any.
    pub fn get(&self, q: &str) -> Option<&str> {
        self.map.get(q).map(String::as_str)
    }

    /// The identity binding over a table's own attributes (used by the
    /// `Source` baseline, which poses queries directly on each source).
    pub fn identity(table: &Table) -> Binding {
        let mut b = Binding::new();
        for a in table.attributes() {
            b.bind(a.clone(), a.clone());
        }
        b
    }

    /// Number of bound attributes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no attribute is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Execute `query` on `table` under `binding`, returning the projected rows
/// (bag semantics, as SQL would).
///
/// Returns the empty bag when any referenced query attribute is unbound or
/// bound to an attribute missing from the table.
pub fn execute_with_binding(table: &Table, query: &Query, binding: &Binding) -> Vec<Row> {
    execute_with_binding_indexed(table, query, binding)
        .into_iter()
        .map(|(_, row)| row)
        .collect()
}

/// Like [`execute_with_binding`], but each projected row carries the index
/// of the source row that produced it. Row provenance is what by-tuple
/// semantics needs: under it, every *source tuple* independently selects a
/// mapping, so answer probabilities combine per producing row.
pub fn execute_with_binding_indexed(
    table: &Table,
    query: &Query,
    binding: &Binding,
) -> Vec<(usize, Row)> {
    // Resolve every referenced attribute to a column index up front.
    let resolve = |attr: &str| -> Option<usize> {
        binding.get(attr).and_then(|src| table.attribute_index(src))
    };
    let mut select_cols = Vec::with_capacity(query.select.len());
    for a in &query.select {
        match resolve(a) {
            Some(i) => select_cols.push(i),
            None => return Vec::new(),
        }
    }
    let mut pred_cols = Vec::with_capacity(query.predicates.len());
    for p in &query.predicates {
        match resolve(&p.attribute) {
            Some(i) => pred_cols.push(i),
            None => return Vec::new(),
        }
    }

    // Columnar scan: each referenced attribute is one contiguous segment,
    // so predicate evaluation strides a few slices instead of every row.
    let column = |c: usize| table.column(c).unwrap_or(&[]);
    let pred_slices: Vec<&[Value]> = pred_cols.iter().map(|&c| column(c)).collect();
    let select_slices: Vec<&[Value]> = select_cols.iter().map(|&c| column(c)).collect();

    let mut out = Vec::new();
    'rows: for ri in 0..table.row_count() {
        for (p, col) in query.predicates.iter().zip(&pred_slices) {
            // Checked access: a short column (impossible for a well-formed
            // table) reads as no-match instead of panicking.
            let Some(v) = col.get(ri) else { continue 'rows };
            if !p.op.eval(v, &p.value) {
                continue 'rows;
            }
        }
        out.push((
            ri,
            select_slices
                .iter()
                .map(|s| s.get(ri).cloned().unwrap_or(Value::Null))
                .collect::<Vec<Value>>(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CompareOp, Predicate};
    use crate::parse::parse_query;

    fn table() -> Table {
        let mut t = Table::new("people", ["full_name", "tel", "years"]);
        t.push_raw_row(["Alice", "123-4567", "34"]).unwrap();
        t.push_raw_row(["Bob", "765-4321", "41"]).unwrap();
        t.push_raw_row(["Carol", "", "29"]).unwrap();
        t
    }

    fn binding() -> Binding {
        let mut b = Binding::new();
        b.bind("name", "full_name")
            .bind("phone", "tel")
            .bind("age", "years");
        b
    }

    #[test]
    fn projection_and_selection() {
        let q = parse_query("SELECT name FROM T WHERE age > 30").unwrap();
        let rows = execute_with_binding(&table(), &q, &binding());
        assert_eq!(
            rows,
            vec![vec![Value::text("Alice")], vec![Value::text("Bob")]]
        );
    }

    #[test]
    fn unbound_select_attribute_yields_nothing() {
        let q = parse_query("SELECT salary FROM T").unwrap();
        assert!(execute_with_binding(&table(), &q, &binding()).is_empty());
    }

    #[test]
    fn unbound_predicate_attribute_yields_nothing() {
        let q = parse_query("SELECT name FROM T WHERE salary > 10").unwrap();
        assert!(execute_with_binding(&table(), &q, &binding()).is_empty());
    }

    #[test]
    fn binding_to_missing_source_column_yields_nothing() {
        let q = parse_query("SELECT name FROM T").unwrap();
        let mut b = Binding::new();
        b.bind("name", "no_such_column");
        assert!(execute_with_binding(&table(), &q, &b).is_empty());
    }

    #[test]
    fn null_cells_fail_predicates_but_project_fine() {
        // Carol's phone is NULL: excluded by a phone predicate...
        let q = parse_query("SELECT name FROM T WHERE phone != 'x'").unwrap();
        let rows = execute_with_binding(&table(), &q, &binding());
        assert_eq!(rows.len(), 2);
        // ...but projected as NULL when selected without predicate.
        let q = parse_query("SELECT phone FROM T WHERE name = 'Carol'").unwrap();
        let rows = execute_with_binding(&table(), &q, &binding());
        assert_eq!(rows, vec![vec![Value::Null]]);
    }

    #[test]
    fn bag_semantics_keeps_duplicates() {
        let mut t = Table::new("t", ["a", "b"]);
        t.push_raw_row(["x", "1"]).unwrap();
        t.push_raw_row(["x", "2"]).unwrap();
        let q = Query::new(["a"], vec![]);
        let mut b = Binding::new();
        b.bind("a", "a");
        let rows = execute_with_binding(&t, &q, &b);
        assert_eq!(rows.len(), 2, "projection must not deduplicate");
    }

    #[test]
    fn like_and_numeric_predicates_compose() {
        let q = Query::new(
            ["name", "age"],
            vec![
                Predicate::new("name", CompareOp::Like, "%o%"),
                Predicate::new("age", CompareOp::Lt, 40_i64),
            ],
        );
        let rows = execute_with_binding(&table(), &q, &binding());
        assert_eq!(rows, vec![vec![Value::text("Carol"), Value::Int(29)]]);
    }

    #[test]
    fn indexed_execution_reports_provenance() {
        let q = parse_query("SELECT name FROM T WHERE age > 30").unwrap();
        let rows = execute_with_binding_indexed(&table(), &q, &binding());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, 0, "Alice is row 0");
        assert_eq!(rows[1].0, 1, "Bob is row 1");
        assert_eq!(rows[0].1, vec![Value::text("Alice")]);
    }

    #[test]
    fn identity_binding_covers_all_columns() {
        let t = table();
        let b = Binding::identity(&t);
        assert_eq!(b.len(), 3);
        assert_eq!(b.get("tel"), Some("tel"));
        let q = parse_query("SELECT full_name FROM T").unwrap();
        assert_eq!(execute_with_binding(&t, &q, &b).len(), 3);
    }

    #[test]
    fn empty_select_returns_empty_tuples_per_matching_row() {
        // Degenerate but well-defined: zero projected columns.
        let q = Query::new(Vec::<String>::new(), vec![]);
        let rows = execute_with_binding(&table(), &q, &binding());
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(Vec::is_empty));
    }
}

//! The structured event vocabulary shared by every sink.

use std::fmt;

/// A scalar attached to an event as a named field.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// An unsigned integer (ids, counts, sizes).
    U64(u64),
    /// A floating-point value (probabilities, residuals).
    F64(f64),
    /// A short label (source names, query text).
    Str(String),
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Field::U64(v) => write!(f, "{v}"),
            Field::F64(v) => write!(f, "{v}"),
            Field::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for Field {
    fn from(v: u64) -> Field {
        Field::U64(v)
    }
}

impl From<usize> for Field {
    fn from(v: usize) -> Field {
        Field::U64(v as u64)
    }
}

impl From<f64> for Field {
    fn from(v: f64) -> Field {
        Field::F64(v)
    }
}

impl From<&str> for Field {
    fn from(v: &str) -> Field {
        Field::Str(v.to_owned())
    }
}

impl From<String> for Field {
    fn from(v: String) -> Field {
        Field::Str(v)
    }
}

/// What kind of measurement an [`Event`] carries.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span opened. `span` identifies it; `parent` is the enclosing span.
    SpanStart,
    /// A span closed. `dur_us` is its wall-clock duration in microseconds.
    SpanEnd {
        /// Microseconds between the span's start and end.
        dur_us: u64,
    },
    /// A monotonic counter increment (never negative, never reset).
    Counter {
        /// Amount added to the counter named by the event.
        delta: u64,
    },
    /// One scalar observation, destined for a [`crate::Histogram`].
    Value {
        /// The observed value.
        value: f64,
    },
}

/// One structured telemetry record.
///
/// Span events carry their own id and parent id so a sink can rebuild the
/// tree without shared state; counters and values carry the id of the span
/// they were emitted under (`0` = no enclosing span). Span ids are unique
/// process-wide, so events from several [`crate::Recorder`]s can share one
/// sink (the bench binaries fan engine and harness events into one trace).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Metric or span name, e.g. `engine.refresh` or `maxent.solve.hit`.
    /// Names are `'static` by design: the taxonomy is part of the API.
    pub name: &'static str,
    /// The measurement.
    pub kind: EventKind,
    /// Span id for span events; `0` otherwise.
    pub span: u64,
    /// Enclosing span id; `0` at the root.
    pub parent: u64,
    /// Microseconds since the process-wide trace epoch (first recorder use).
    pub t_us: u64,
    /// Optional named scalars (`n_sources`, `source`, …).
    pub fields: Vec<(&'static str, Field)>,
}

impl Event {
    /// The value of field `name`, if present.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|(n, _)| *n == name).map(|(_, v)| v)
    }

    /// Render the event as one JSON object (the `JsonLinesSink` format).
    ///
    /// The encoding is hand-rolled so the crate stays dependency-free; the
    /// output is plain RFC 8259 JSON, one object per line, parseable by any
    /// JSON library or `jq`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"t_us\":");
        out.push_str(&self.t_us.to_string());
        out.push_str(",\"kind\":\"");
        out.push_str(match self.kind {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd { .. } => "span_end",
            EventKind::Counter { .. } => "counter",
            EventKind::Value { .. } => "value",
        });
        out.push_str("\",\"name\":\"");
        escape_into(self.name, &mut out);
        out.push('"');
        if self.span != 0 {
            out.push_str(",\"span\":");
            out.push_str(&self.span.to_string());
        }
        if self.parent != 0 {
            out.push_str(",\"parent\":");
            out.push_str(&self.parent.to_string());
        }
        match &self.kind {
            EventKind::SpanStart => {}
            EventKind::SpanEnd { dur_us } => {
                out.push_str(",\"dur_us\":");
                out.push_str(&dur_us.to_string());
            }
            EventKind::Counter { delta } => {
                out.push_str(",\"delta\":");
                out.push_str(&delta.to_string());
            }
            EventKind::Value { value } => {
                out.push_str(",\"value\":");
                push_f64(*value, &mut out);
            }
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (name, value)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_into(name, &mut out);
                out.push_str("\":");
                match value {
                    Field::U64(v) => out.push_str(&v.to_string()),
                    Field::F64(v) => push_f64(*v, &mut out),
                    Field::Str(v) => {
                        out.push('"');
                        escape_into(v, &mut out);
                        out.push('"');
                    }
                }
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// JSON has no NaN/Infinity; encode them as null like `serde_json` does.
fn push_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Minimal JSON string escaping (quotes, backslash, control characters).
fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_encoding_covers_every_kind() {
        let e = Event {
            name: "engine.refresh",
            kind: EventKind::SpanStart,
            span: 3,
            parent: 1,
            t_us: 17,
            fields: vec![],
        };
        assert_eq!(
            e.to_json(),
            "{\"t_us\":17,\"kind\":\"span_start\",\"name\":\"engine.refresh\",\"span\":3,\"parent\":1}"
        );

        let e = Event {
            name: "maxent.residual",
            kind: EventKind::Value { value: 0.5 },
            span: 0,
            parent: 0,
            t_us: 0,
            fields: vec![("source", Field::Str("a\"b".into())), ("n", Field::U64(2))],
        };
        let json = e.to_json();
        assert!(json.contains("\"value\":0.5"), "{json}");
        assert!(json.contains("\"source\":\"a\\\"b\""), "{json}");
        assert!(json.contains("\"n\":2"), "{json}");
    }

    #[test]
    fn non_finite_values_encode_as_null() {
        let e = Event {
            name: "x",
            kind: EventKind::Value {
                value: f64::INFINITY,
            },
            span: 0,
            parent: 0,
            t_us: 0,
            fields: vec![],
        };
        assert!(e.to_json().contains("\"value\":null"));
    }

    #[test]
    fn control_characters_are_escaped() {
        let e = Event {
            name: "x",
            kind: EventKind::Counter { delta: 1 },
            span: 0,
            parent: 0,
            t_us: 0,
            fields: vec![("s", Field::Str("a\nb\u{1}".into()))],
        };
        let json = e.to_json();
        assert!(json.contains("a\\nb\\u0001"), "{json}");
    }

    #[test]
    fn field_lookup_and_conversions() {
        let e = Event {
            name: "x",
            kind: EventKind::SpanEnd { dur_us: 9 },
            span: 1,
            parent: 0,
            t_us: 1,
            fields: vec![("n", 4usize.into()), ("p", 0.25.into()), ("s", "hi".into())],
        };
        assert_eq!(e.field("n"), Some(&Field::U64(4)));
        assert_eq!(e.field("p"), Some(&Field::F64(0.25)));
        assert_eq!(e.field("s"), Some(&Field::Str("hi".into())));
        assert_eq!(e.field("missing"), None);
        assert_eq!(Field::U64(4).to_string(), "4");
    }
}

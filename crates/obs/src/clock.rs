//! Wall-clock timing, owned by the observability layer.
//!
//! `udi-obs` is the workspace's single timing authority: library crates
//! never touch `std::time::Instant` directly (the `no-raw-time` audit lint
//! enforces this). Code that needs a duration — stage timings in the setup
//! engine, solver budgets — measures it through a [`Stopwatch`], which
//! keeps the raw clock access in one auditable place and gives tests a
//! single seam should timing ever need to be virtualised.

use std::time::{Duration, Instant};

/// A started wall-clock timer.
///
/// ```
/// use udi_obs::Stopwatch;
///
/// let sw = Stopwatch::start();
/// let d = sw.elapsed();
/// assert!(d >= std::time::Duration::ZERO);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Wall-clock time since [`Stopwatch::start`]. Monotonic; never panics.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Restart the timer and return the time elapsed up to the restart —
    /// the idiom for timing consecutive stages with one watch.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let d = now.duration_since(self.started);
        self.started = now;
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
    }

    #[test]
    fn lap_resets_the_origin() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        let first = sw.lap();
        assert!(first >= Duration::from_millis(1));
        // Immediately after a lap the elapsed time starts near zero again.
        assert!(sw.elapsed() <= first + Duration::from_millis(100));
    }
}

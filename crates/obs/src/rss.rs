//! Peak resident-set-size introspection.
//!
//! The scale benchmarks report memory alongside wall-clock: a setup path
//! that is fast because it materialized the whole corpus twice is not a
//! win. On Linux the kernel already tracks the high-water mark (`VmHWM` in
//! `/proc/self/status`), so the reader is a dozen lines of text parsing
//! with zero dependencies; elsewhere it degrades to `None` and callers
//! print `n/a`.

/// The process's peak resident set size in bytes, if the platform exposes
/// it. Linux only (`/proc/self/status`, `VmHWM` line); `None` elsewhere or
/// if the file is missing/unparseable.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        parse_vm_hwm(&status)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Parse the `VmHWM` line of a `/proc/<pid>/status` document into bytes.
/// The kernel reports kibibytes (`VmHWM:   123456 kB`).
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kib * 1024)
}

/// Render a byte count as a human-readable figure (`1.50 GiB`, `32.0 MiB`,
/// `512 KiB`), or `"n/a"` for `None` — the form the bench binaries print.
pub fn fmt_rss(bytes: Option<u64>) -> String {
    match bytes {
        None => "n/a".to_owned(),
        Some(b) if b >= 1 << 30 => format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64),
        Some(b) if b >= 1 << 20 => format!("{:.1} MiB", b as f64 / (1u64 << 20) as f64),
        Some(b) => format!("{} KiB", b / 1024),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_kernel_format() {
        let doc = "Name:\tudi\nVmPeak:\t  999 kB\nVmHWM:\t   12345 kB\nVmRSS:\t 100 kB\n";
        assert_eq!(parse_vm_hwm(doc), Some(12345 * 1024));
    }

    #[test]
    fn missing_or_malformed_lines_yield_none() {
        assert_eq!(parse_vm_hwm(""), None);
        assert_eq!(parse_vm_hwm("VmRSS:\t 100 kB\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\t lots kB\n"), None);
    }

    #[test]
    fn formatting_covers_the_scales() {
        assert_eq!(fmt_rss(None), "n/a");
        assert_eq!(fmt_rss(Some(512 * 1024)), "512 KiB");
        assert_eq!(fmt_rss(Some(32 << 20)), "32.0 MiB");
        assert_eq!(fmt_rss(Some(3 << 30)), "3.00 GiB");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_reading_is_plausible() {
        let rss = peak_rss_bytes().expect("Linux exposes VmHWM");
        // A running test binary holds at least a mebibyte and (hopefully)
        // less than a tebibyte.
        assert!(rss > 1 << 20, "{rss}");
        assert!(rss < 1 << 40, "{rss}");
    }
}

//! Where events go: the [`Sink`] trait and the stock implementations.

use std::collections::{BTreeMap, HashMap};
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};

use crate::event::{Event, EventKind};
use crate::hist::Histogram;

/// A destination for [`Event`]s.
///
/// Sinks must be thread-safe: the setup engine fans p-mapping generation
/// across worker threads that all record into one sink. `record` takes the
/// event by reference so a fanout can serve several sinks from one
/// construction.
pub trait Sink: Send + Sync {
    /// Accept one event.
    fn record(&self, event: &Event);

    /// Flush buffered output, if any. Called by trace writers at exit; the
    /// default is a no-op.
    fn flush(&self) {}
}

/// Discards everything. [`crate::Recorder::disabled`] is cheaper (it skips
/// event construction entirely); `NullSink` exists for call sites that need
/// a real sink object.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: &Event) {}
}

/// One finished span reconstructed from a `SpanStart`/`SpanEnd` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span id.
    pub id: u64,
    /// Parent span id (`0` = root).
    pub parent: u64,
    /// Span name.
    pub name: &'static str,
    /// Start timestamp, µs since the trace epoch.
    pub start_us: u64,
    /// Wall-clock duration in µs.
    pub dur_us: u64,
}

/// Collects every event in memory — the sink tests and examples use to
/// assert on traces.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A copy of every event recorded so far, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all recorded events.
    pub fn clear(&self) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// Total of all `Counter` deltas recorded under `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .filter(|e| e.name == name)
            .map(|e| match e.kind {
                EventKind::Counter { delta } => delta,
                _ => 0,
            })
            .sum()
    }

    /// All finished spans (a `SpanEnd` with its matching `SpanStart`), in
    /// end order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let events = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        let mut starts: HashMap<u64, u64> = HashMap::new();
        let mut out = Vec::new();
        for e in events.iter() {
            match e.kind {
                EventKind::SpanStart => {
                    starts.insert(e.span, e.t_us);
                }
                EventKind::SpanEnd { dur_us } => {
                    if let Some(&start_us) = starts.get(&e.span) {
                        out.push(SpanRecord {
                            id: e.span,
                            parent: e.parent,
                            name: e.name,
                            start_us,
                            dur_us,
                        });
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Finished spans named `name`.
    pub fn spans_named(&self, name: &str) -> Vec<SpanRecord> {
        self.spans()
            .into_iter()
            .filter(|s| s.name == name)
            .collect()
    }

    /// Build a [`Histogram`] over every `Value` observation of `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut h = Histogram::new();
        for e in self
            .events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            if e.name == name {
                if let EventKind::Value { value } = e.kind {
                    h.observe(value);
                }
            }
        }
        h
    }

    /// Check the structural well-formedness of the recorded trace:
    ///
    /// - every `SpanEnd` has a matching earlier `SpanStart`;
    /// - every non-root parent id refers to a started span;
    /// - every child starts no earlier than its parent and ends no later
    ///   than its parent ends (1 ms of slack absorbs clock granularity).
    ///
    /// Returns the first violation found, rendered for a test assertion.
    pub fn verify_nesting(&self) -> Result<(), String> {
        let events = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        let mut started: HashMap<u64, (u64, &'static str)> = HashMap::new();
        let mut ended: HashMap<u64, u64> = HashMap::new(); // id → end t_us
        for e in events.iter() {
            match e.kind {
                EventKind::SpanStart => {
                    if e.span == 0 {
                        return Err(format!("span start for '{}' has id 0", e.name));
                    }
                    if started.insert(e.span, (e.t_us, e.name)).is_some() {
                        return Err(format!("span id {} started twice", e.span));
                    }
                    if e.parent != 0 && !started.contains_key(&e.parent) {
                        return Err(format!(
                            "span '{}' ({}) has unknown parent {}",
                            e.name, e.span, e.parent
                        ));
                    }
                }
                EventKind::SpanEnd { .. } => {
                    let Some(&(start_us, name)) = started.get(&e.span) else {
                        return Err(format!("span end {} without a start", e.span));
                    };
                    if e.t_us + 1 < start_us {
                        return Err(format!("span '{name}' ends before it starts"));
                    }
                    ended.insert(e.span, e.t_us);
                }
                _ => {}
            }
        }
        // Children must be contained in their parents' lifetimes.
        const SLACK_US: u64 = 1_000;
        for e in events.iter() {
            if !matches!(e.kind, EventKind::SpanStart) || e.parent == 0 {
                continue;
            }
            let (child_start, child_name) = started[&e.span];
            let (parent_start, parent_name) = started[&e.parent];
            if child_start + SLACK_US < parent_start {
                return Err(format!(
                    "span '{child_name}' starts before its parent '{parent_name}'"
                ));
            }
            if let (Some(&child_end), Some(&parent_end)) =
                (ended.get(&e.span), ended.get(&e.parent))
            {
                if child_end > parent_end + SLACK_US {
                    return Err(format!(
                        "span '{child_name}' outlives its parent '{parent_name}'"
                    ));
                }
            }
        }
        Ok(())
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event.clone());
    }
}

/// Aggregate-only sink: per-name counter totals and value histograms, no
/// event retention. Span events are ignored. This is what `udi-core` keeps
/// permanently installed to derive its `CacheStats` view — bounded memory
/// no matter how long the engine lives.
#[derive(Debug, Default)]
pub struct CounterSink {
    counters: Mutex<HashMap<&'static str, u64>>,
    values: Mutex<HashMap<&'static str, Histogram>>,
}

impl CounterSink {
    /// An empty sink.
    pub fn new() -> CounterSink {
        CounterSink::default()
    }

    /// Current total of counter `name` (0 if never seen).
    pub fn get(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Snapshot of every counter, in sorted name order, for before/after
    /// deltas.
    pub fn snapshot(&self) -> BTreeMap<&'static str, u64> {
        self.counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// The histogram of `Value` observations of `name` so far.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.values
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .cloned()
            .unwrap_or_default()
    }
}

impl Sink for CounterSink {
    fn record(&self, event: &Event) {
        match event.kind {
            EventKind::Counter { delta } => {
                *self
                    .counters
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .entry(event.name)
                    .or_insert(0) += delta;
            }
            EventKind::Value { value } => {
                self.values
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .entry(event.name)
                    .or_default()
                    .observe(value);
            }
            _ => {}
        }
    }
}

/// Writes one JSON object per event — the `--trace out.jsonl` format of the
/// bench binaries. Output is buffered; [`Sink::flush`] (called by the bench
/// harness at exit) or dropping the sink flushes it.
pub struct JsonLinesSink {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonLinesSink").finish_non_exhaustive()
    }
}

impl JsonLinesSink {
    /// Create (truncating) the file at `path` and write events to it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonLinesSink> {
        let file = std::fs::File::create(path)?;
        Ok(JsonLinesSink::from_writer(Box::new(file)))
    }

    /// Write events to an arbitrary writer.
    pub fn from_writer(writer: Box<dyn Write + Send>) -> JsonLinesSink {
        JsonLinesSink {
            out: Mutex::new(BufWriter::new(writer)),
        }
    }
}

impl Sink for JsonLinesSink {
    fn record(&self, event: &Event) {
        let mut out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        // Trace files are diagnostics; an I/O error must not take the
        // instrumented computation down with it.
        let _ = writeln!(out, "{}", event.to_json());
    }

    fn flush(&self) {
        let _ = self
            .out
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .flush();
    }
}

impl Drop for JsonLinesSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Duplicates every event to each inner sink, letting one recorder feed a
/// trace file and an in-memory aggregate at once.
#[derive(Clone, Default)]
pub struct FanoutSink {
    sinks: Vec<Arc<dyn Sink>>,
}

impl std::fmt::Debug for FanoutSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutSink")
            .field("n", &self.sinks.len())
            .finish()
    }
}

impl FanoutSink {
    /// Fan out to `sinks`.
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> FanoutSink {
        FanoutSink { sinks }
    }
}

impl Sink for FanoutSink {
    fn record(&self, event: &Event) {
        for s in &self.sinks {
            s.record(event);
        }
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn memory_sink_aggregates_counters_and_histograms() {
        let sink = Arc::new(MemorySink::new());
        let rec = Recorder::new(sink.clone());
        rec.count("hits", 2);
        rec.count("hits", 3);
        rec.count("other", 1);
        rec.observe("lat", 5.0);
        rec.observe("lat", 50.0);
        assert_eq!(sink.counter_total("hits"), 5);
        assert_eq!(sink.counter_total("missing"), 0);
        let h = sink.histogram("lat");
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), Some(27.5));
        assert_eq!(sink.len(), 5);
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn counter_sink_keeps_totals_not_events() {
        let sink = Arc::new(CounterSink::new());
        let rec = Recorder::new(sink.clone());
        let before = sink.snapshot();
        assert!(before.is_empty());
        {
            let s = rec.span("ignored");
            s.count("n", 7);
            s.observe("v", 0.5);
        }
        rec.count("n", 1);
        assert_eq!(sink.get("n"), 8);
        assert_eq!(sink.get("absent"), 0);
        assert_eq!(sink.histogram("v").count(), 1);
        let after = sink.snapshot();
        assert_eq!(after.get("n"), Some(&8));
    }

    #[test]
    fn json_lines_sink_writes_parseable_lines() {
        // Write into a shared buffer through the Sink interface.
        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Buf::default();
        let sink = JsonLinesSink::from_writer(Box::new(buf.clone()));
        let rec = Recorder::new(Arc::new(sink));
        {
            let s = rec.span("root");
            s.count("c", 1);
        }
        // Recorder holds the sink; drop it to flush.
        drop(rec);
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "start, counter, end: {text}");
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"kind\":\""), "{line}");
        }
    }

    #[test]
    fn fanout_duplicates_and_flushes() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(CounterSink::new());
        let fan = FanoutSink::new(vec![a.clone(), b.clone()]);
        let rec = Recorder::new(Arc::new(fan));
        rec.count("x", 4);
        assert_eq!(a.counter_total("x"), 4);
        assert_eq!(b.get("x"), 4);
    }

    #[test]
    fn verify_nesting_accepts_good_and_rejects_bad_traces() {
        let sink = Arc::new(MemorySink::new());
        let rec = Recorder::new(sink.clone());
        {
            let root = rec.span("root");
            let _child = root.child("child");
        }
        assert!(sink.verify_nesting().is_ok());

        // A hand-forged orphan parent must be rejected.
        let bad = MemorySink::new();
        bad.record(&Event {
            name: "orphan",
            kind: EventKind::SpanStart,
            span: 99,
            parent: 98,
            t_us: 0,
            fields: vec![],
        });
        let err = bad.verify_nesting().unwrap_err();
        assert!(err.contains("unknown parent"), "{err}");

        // An end without a start must be rejected.
        let bad = MemorySink::new();
        bad.record(&Event {
            name: "endless",
            kind: EventKind::SpanEnd { dur_us: 1 },
            span: 7,
            parent: 0,
            t_us: 0,
            fields: vec![],
        });
        let err = bad.verify_nesting().unwrap_err();
        assert!(err.contains("without a start"), "{err}");
    }

    #[test]
    fn spans_named_filters_by_name() {
        let sink = Arc::new(MemorySink::new());
        let rec = Recorder::new(sink.clone());
        for _ in 0..3 {
            rec.span("a").close();
        }
        rec.span("b").close();
        assert_eq!(sink.spans_named("a").len(), 3);
        assert_eq!(sink.spans_named("b").len(), 1);
        assert_eq!(sink.spans_named("c").len(), 0);
    }
}

#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `udi-obs` — a hand-rolled, zero-dependency tracing and metrics layer for
//! the UDI workspace.
//!
//! The setup engine, the max-entropy solver, and the query paths all emit
//! structured [`Event`]s — hierarchical spans with wall-clock timing,
//! monotonic counters, and scalar observations — through a pluggable
//! [`Sink`]. Three sinks ship with the crate:
//!
//! - disabled recording ([`Recorder::disabled`]): every call is an inlined
//!   no-op on an `Option` that is `None` — the instrumented hot paths cost
//!   nothing when nobody is listening;
//! - [`MemorySink`]: collects events in memory, with helpers to reconstruct
//!   the span tree, total counters, and build [`Histogram`]s — the sink
//!   unit and integration tests use;
//! - [`JsonLinesSink`]: writes one JSON object per event to a file, the
//!   format behind the bench binaries' `--trace out.jsonl` flag (see
//!   `OBSERVABILITY.md` at the repository root for how to read a trace).
//!
//! [`CounterSink`] is a fourth, aggregate-only sink: it keeps per-name
//! counter totals and ignores spans, which is how `udi-core` derives its
//! `CacheStats` view without retaining events. [`FanoutSink`] composes
//! sinks, and [`TraceSummary`] renders the per-span-name timing table the
//! bench binaries print at exit.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use udi_obs::{MemorySink, Recorder};
//!
//! let sink = Arc::new(MemorySink::new());
//! let rec = Recorder::new(sink.clone());
//! {
//!     let setup = rec.span("setup");
//!     let stage = setup.child("stage.import");
//!     stage.count("attrs.seen", 42);
//!     rec.observe("solver.residual", 1e-9);
//! }
//! assert_eq!(sink.counter_total("attrs.seen"), 42);
//! assert!(sink.verify_nesting().is_ok());
//! assert_eq!(sink.spans().len(), 2);
//! ```

mod clock;
mod event;
mod hist;
mod recorder;
mod rss;
mod sink;
mod summary;

pub use clock::Stopwatch;
pub use event::{Event, EventKind, Field};
pub use hist::Histogram;
pub use recorder::{Recorder, Span};
pub use rss::{fmt_rss, peak_rss_bytes};
pub use sink::{CounterSink, FanoutSink, JsonLinesSink, MemorySink, NullSink, Sink, SpanRecord};
pub use summary::TraceSummary;

//! The recording handle and its RAII span guard.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::event::{Event, EventKind, Field};
use crate::sink::Sink;

/// Process-wide trace epoch: all recorders stamp events relative to the
/// first recorder use, so events from several recorders interleave
/// coherently in one sink.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Process-wide span-id allocator (`0` is reserved for "no span").
fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// A cheap, cloneable handle that emits [`Event`]s into a [`Sink`].
///
/// A disabled recorder ([`Recorder::disabled`], also the [`Default`]) holds
/// no sink; every method on it and on the spans it hands out is an inlined
/// no-op over `Option::None`, so instrumentation can stay in hot paths
/// unconditionally. This is the "NullSink path" guarantee: the instrumented
/// engine code costs nothing measurable when recording is off.
#[derive(Clone, Default)]
pub struct Recorder {
    sink: Option<Arc<dyn Sink>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.sink.is_some())
            .finish()
    }
}

impl Recorder {
    /// A recorder that writes into `sink`.
    pub fn new(sink: Arc<dyn Sink>) -> Recorder {
        Recorder { sink: Some(sink) }
    }

    /// A recorder that records nothing, for free.
    pub fn disabled() -> Recorder {
        Recorder { sink: None }
    }

    /// Whether events actually go anywhere.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Add `delta` to the counter `name` (outside any span).
    #[inline]
    pub fn count(&self, name: &'static str, delta: u64) {
        self.count_in(name, delta, 0);
    }

    /// Record one scalar observation of `name` (outside any span).
    #[inline]
    pub fn observe(&self, name: &'static str, value: f64) {
        self.observe_in(name, value, 0);
    }

    /// Open a root span. Close it by dropping the guard (or
    /// [`Span::close`]). Children open via [`Span::child`].
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        self.span_with_parent(name, 0)
    }

    /// Open a span under an explicit parent span id — for handing work to
    /// another thread, where the parent [`Span`] guard cannot move along.
    pub fn span_with_parent(&self, name: &'static str, parent: u64) -> Span {
        let Some(sink) = &self.sink else {
            return Span {
                recorder: Recorder::disabled(),
                id: 0,
                parent: 0,
                name,
                start: None,
                fields: Vec::new(),
            };
        };
        let id = next_span_id();
        let start = Instant::now();
        sink.record(&Event {
            name,
            kind: EventKind::SpanStart,
            span: id,
            parent,
            t_us: now_us(),
            fields: Vec::new(),
        });
        Span {
            recorder: self.clone(),
            id,
            parent,
            name,
            start: Some(start),
            fields: Vec::new(),
        }
    }

    fn count_in(&self, name: &'static str, delta: u64, parent: u64) {
        if let Some(sink) = &self.sink {
            sink.record(&Event {
                name,
                kind: EventKind::Counter { delta },
                span: 0,
                parent,
                t_us: now_us(),
                fields: Vec::new(),
            });
        }
    }

    fn observe_in(&self, name: &'static str, value: f64, parent: u64) {
        if let Some(sink) = &self.sink {
            sink.record(&Event {
                name,
                kind: EventKind::Value { value },
                span: 0,
                parent,
                t_us: now_us(),
                fields: Vec::new(),
            });
        }
    }
}

/// RAII guard for one span: emits `SpanStart` on creation (via
/// [`Recorder::span`]) and `SpanEnd` — carrying the duration and any
/// attached fields — when dropped or [`close`](Span::close)d.
///
/// Spans from a disabled recorder are inert; every method is a no-op.
#[derive(Debug)]
#[must_use = "a span measures the time until it is dropped"]
pub struct Span {
    recorder: Recorder,
    id: u64,
    parent: u64,
    name: &'static str,
    /// `None` on inert spans.
    start: Option<Instant>,
    fields: Vec<(&'static str, Field)>,
}

impl Span {
    /// This span's id (`0` if recording is disabled). Pass to
    /// [`Recorder::span_with_parent`] to parent work on another thread.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether the span actually records.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.start.is_some()
    }

    /// Open a child span.
    #[inline]
    pub fn child(&self, name: &'static str) -> Span {
        self.recorder.span_with_parent(name, self.id)
    }

    /// Add `delta` to counter `name`, attributed to this span.
    #[inline]
    pub fn count(&self, name: &'static str, delta: u64) {
        self.recorder.count_in(name, delta, self.id);
    }

    /// Record a scalar observation, attributed to this span.
    #[inline]
    pub fn observe(&self, name: &'static str, value: f64) {
        self.recorder.observe_in(name, value, self.id);
    }

    /// Attach a named field, reported on the span's end event.
    #[inline]
    pub fn field(&mut self, name: &'static str, value: impl Into<Field>) {
        if self.start.is_some() {
            self.fields.push((name, value.into()));
        }
    }

    /// Close the span now (equivalent to dropping it).
    pub fn close(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        if let Some(sink) = &self.recorder.sink {
            sink.record(&Event {
                name: self.name,
                kind: EventKind::SpanEnd {
                    dur_us: start.elapsed().as_micros() as u64,
                },
                span: self.id,
                parent: self.parent,
                t_us: now_us(),
                fields: std::mem::take(&mut self.fields),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    #[test]
    fn disabled_recorder_emits_nothing_and_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.count("x", 1);
        rec.observe("y", 2.0);
        let mut s = rec.span("root");
        assert_eq!(s.id(), 0);
        assert!(!s.is_enabled());
        s.field("k", 1u64);
        let c = s.child("child");
        c.count("z", 3);
        c.close();
        s.close();
        // Nothing to assert against — the point is that no sink exists and
        // none of the calls panic or allocate a span id.
    }

    #[test]
    fn span_ids_are_unique_and_parented() {
        let sink = Arc::new(MemorySink::new());
        let rec = Recorder::new(sink.clone());
        let root = rec.span("root");
        let a = root.child("a");
        let b = root.child("b");
        assert_ne!(a.id(), b.id());
        drop(a);
        drop(b);
        root.close();
        let spans = sink.spans();
        assert_eq!(spans.len(), 3);
        let root_rec = spans.iter().find(|s| s.name == "root").unwrap();
        for name in ["a", "b"] {
            let s = spans.iter().find(|s| s.name == name).unwrap();
            assert_eq!(s.parent, root_rec.id);
        }
        assert!(sink.verify_nesting().is_ok());
    }

    #[test]
    fn cross_thread_spans_parent_explicitly() {
        let sink = Arc::new(MemorySink::new());
        let rec = Recorder::new(sink.clone());
        let stage = rec.span("stage");
        let stage_id = stage.id();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rec = rec.clone();
                scope.spawn(move || {
                    let s = rec.span_with_parent("work", stage_id);
                    s.count("items", 1);
                });
            }
        });
        stage.close();
        assert_eq!(sink.counter_total("items"), 4);
        let spans = sink.spans();
        assert_eq!(spans.iter().filter(|s| s.name == "work").count(), 4);
        assert!(sink.verify_nesting().is_ok());
    }

    #[test]
    fn fields_ride_on_the_end_event() {
        let sink = Arc::new(MemorySink::new());
        let rec = Recorder::new(sink.clone());
        let mut s = rec.span("s");
        s.field("n_sources", 7u64);
        s.close();
        let events = sink.events();
        let end = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::SpanEnd { .. }))
            .unwrap();
        assert_eq!(end.field("n_sources"), Some(&Field::U64(7)));
    }
}

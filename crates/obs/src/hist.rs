//! Fixed-bucket histograms for scalar observations.

/// Number of buckets: one per decade from `1e-12` to `1e13`, plus an
/// underflow bucket below and an overflow bucket above.
pub(crate) const N_BUCKETS: usize = 27;

/// A fixed-bucket histogram over positive-ish scalars.
///
/// Buckets are decades: bucket `i` (for `1 ≤ i ≤ 25`) covers
/// `[10^(i-13), 10^(i-12))`; bucket `0` collects everything below `1e-12`
/// (including zero and negatives) and bucket `26` everything at or above
/// `1e13`. Decades fit every scalar the workspace observes — solver
/// residuals (`1e-11`…`1e-3`), iteration counts (`1`…`1e4`), and
/// microsecond durations (`1`…`1e8`) — with no configuration, which keeps
/// histograms mergeable across runs by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: [u64; N_BUCKETS],
    n: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: [0; N_BUCKETS],
            n: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket index a value falls into.
    pub fn bucket_of(value: f64) -> usize {
        if !value.is_finite() || value < 1e-12 {
            return 0;
        }
        // floor(log10) via the exponent, robust at decade boundaries.
        let exp = value.log10().floor() as i32;
        ((exp + 13).clamp(0, (N_BUCKETS - 1) as i32)) as usize
    }

    /// The `[low, high)` value range of bucket `i` (underflow and overflow
    /// extend to the infinities).
    pub fn bucket_bounds(i: usize) -> (f64, f64) {
        assert!(i < N_BUCKETS, "bucket {i} out of range");
        match i {
            0 => (f64::NEG_INFINITY, 1e-12),
            _ if i == N_BUCKETS - 1 => (1e13, f64::INFINITY),
            _ => (10f64.powi(i as i32 - 13), 10f64.powi(i as i32 - 12)),
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        if let Some(slot) = self.counts.get_mut(Histogram::bucket_of(value)) {
            *slot += 1;
        }
        self.n += 1;
        if value.is_finite() {
            self.sum += value;
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the (finite) observations; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum / self.n as f64)
    }

    /// Smallest finite observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.min.is_finite().then_some(self.min)
    }

    /// Largest finite observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.max.is_finite().then_some(self.max)
    }

    /// Per-bucket counts, in bucket order.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The `(low, high)` bounds of the bucket containing the `q`-quantile
    /// observation (`0 ≤ q ≤ 1`); `None` when empty. Fixed buckets trade
    /// exact quantiles for mergeability — a decade of resolution is enough
    /// to tell "µs" from "ms" from "s".
    pub fn quantile_bucket(&self, q: f64) -> Option<(f64, f64)> {
        if self.n == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * (self.n as f64 - 1.0)).round() as u64).min(self.n - 1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Some(Histogram::bucket_bounds(i));
            }
        }
        unreachable!("rank < n implies some bucket contains it")
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_decades() {
        assert_eq!(Histogram::bucket_of(0.0), 0);
        assert_eq!(Histogram::bucket_of(-5.0), 0);
        assert_eq!(Histogram::bucket_of(f64::NAN), 0);
        assert_eq!(Histogram::bucket_of(1e-13), 0);
        assert_eq!(Histogram::bucket_of(1e-12), 1);
        assert_eq!(Histogram::bucket_of(1.0), 13);
        assert_eq!(Histogram::bucket_of(9.99), 13);
        assert_eq!(Histogram::bucket_of(10.0), 14);
        assert_eq!(Histogram::bucket_of(1e11), 24);
        assert_eq!(Histogram::bucket_of(1e12), 25);
        assert_eq!(Histogram::bucket_of(1e13), 26);
        assert_eq!(Histogram::bucket_of(f64::MAX), 26);
        // bounds round-trip: every bucket's low edge maps back to it.
        for i in 1..N_BUCKETS - 1 {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_of(lo), i, "low edge of {i}");
            assert!(hi > lo);
        }
    }

    #[test]
    fn observe_tracks_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile_bucket(0.5), None);
        for v in [1.0, 2.0, 3.0, 400.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), Some(101.5));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(400.0));
        // Median bucket is the ones decade [1, 10).
        assert_eq!(h.quantile_bucket(0.5), Some((1.0, 10.0)));
        // p100 bucket is the hundreds decade.
        assert_eq!(h.quantile_bucket(1.0), Some((100.0, 1000.0)));
    }

    #[test]
    fn merge_adds_counts_and_stats() {
        let mut a = Histogram::new();
        a.observe(1.0);
        let mut b = Histogram::new();
        b.observe(1000.0);
        b.observe(0.5);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(0.5));
        assert_eq!(a.max(), Some(1000.0));
        let total: u64 = a.bucket_counts().iter().sum();
        assert_eq!(total, 3);
    }
}

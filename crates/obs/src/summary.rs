//! Post-hoc aggregation of a recorded trace into a printable table.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind};
use crate::hist::Histogram;

/// Per-span-name aggregate: how many times the span ran and for how long.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanStat {
    /// Number of completed spans with this name.
    pub count: u64,
    /// Sum of their durations, µs.
    pub total_us: u64,
    /// Longest single duration, µs.
    pub max_us: u64,
}

impl SpanStat {
    /// Mean duration in µs (0 when `count` is 0).
    pub fn mean_us(&self) -> u64 {
        self.total_us.checked_div(self.count).unwrap_or(0)
    }
}

/// Aggregated view of a trace: span timings, counter totals, and value
/// histograms, keyed by event name. Built from a slice of events (e.g.
/// [`crate::MemorySink::events`]) and rendered by the bench binaries as
/// their exit summary table via [`std::fmt::Display`].
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    spans: BTreeMap<&'static str, SpanStat>,
    counters: BTreeMap<&'static str, u64>,
    values: BTreeMap<&'static str, Histogram>,
}

impl TraceSummary {
    /// Aggregate `events` (order does not matter: only `SpanEnd`, `Counter`
    /// and `Value` events contribute).
    pub fn from_events(events: &[Event]) -> TraceSummary {
        let mut s = TraceSummary::default();
        for e in events {
            match e.kind {
                EventKind::SpanEnd { dur_us } => {
                    let stat = s.spans.entry(e.name).or_default();
                    stat.count += 1;
                    stat.total_us += dur_us;
                    stat.max_us = stat.max_us.max(dur_us);
                }
                EventKind::Counter { delta } => {
                    *s.counters.entry(e.name).or_insert(0) += delta;
                }
                EventKind::Value { value } => {
                    s.values.entry(e.name).or_default().observe(value);
                }
                EventKind::SpanStart => {}
            }
        }
        s
    }

    /// Aggregate for span `name`, if any span of that name completed.
    pub fn span(&self, name: &str) -> Option<&SpanStat> {
        self.spans.get(name)
    }

    /// Total of counter `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram of `Value` observations of `name`, if any.
    pub fn values(&self, name: &str) -> Option<&Histogram> {
        self.values.get(name)
    }

    /// Whether the trace contained nothing aggregatable.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty() && self.values.is_empty()
    }

    /// Span names present, sorted.
    pub fn span_names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.spans.keys().copied()
    }
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

impl std::fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return writeln!(f, "(empty trace)");
        }
        if !self.spans.is_empty() {
            writeln!(
                f,
                "{:<34} {:>7} {:>12} {:>12} {:>12}",
                "span", "count", "total", "mean", "max"
            )?;
            for (name, s) in &self.spans {
                writeln!(
                    f,
                    "{:<34} {:>7} {:>12} {:>12} {:>12}",
                    name,
                    s.count,
                    fmt_us(s.total_us),
                    fmt_us(s.mean_us()),
                    fmt_us(s.max_us),
                )?;
            }
        }
        if !self.counters.is_empty() {
            writeln!(f, "{:<34} {:>7}", "counter", "total")?;
            for (name, total) in &self.counters {
                writeln!(f, "{name:<34} {total:>7}")?;
            }
        }
        if !self.values.is_empty() {
            writeln!(
                f,
                "{:<34} {:>7} {:>12} {:>12} {:>12}",
                "value", "count", "mean", "min", "max"
            )?;
            for (name, h) in &self.values {
                writeln!(
                    f,
                    "{:<34} {:>7} {:>12.4} {:>12.4} {:>12.4}",
                    name,
                    h.count(),
                    h.mean().unwrap_or(f64::NAN),
                    h.min().unwrap_or(f64::NAN),
                    h.max().unwrap_or(f64::NAN),
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::sink::MemorySink;
    use std::sync::Arc;

    #[test]
    fn summary_aggregates_spans_counters_values() {
        let sink = Arc::new(MemorySink::new());
        let rec = Recorder::new(sink.clone());
        for _ in 0..3 {
            let s = rec.span("engine.pmapping.build");
            s.count("engine.rows.computed", 1);
        }
        rec.observe("maxent.iterations", 12.0);
        rec.observe("maxent.iterations", 20.0);
        let summary = TraceSummary::from_events(&sink.events());
        assert!(!summary.is_empty());
        let stat = summary.span("engine.pmapping.build").unwrap();
        assert_eq!(stat.count, 3);
        assert!(stat.max_us >= stat.mean_us());
        assert_eq!(summary.counter("engine.rows.computed"), 3);
        assert_eq!(summary.counter("absent"), 0);
        assert_eq!(summary.values("maxent.iterations").unwrap().count(), 2);
        assert_eq!(summary.span_names().count(), 1);
        let rendered = summary.to_string();
        assert!(rendered.contains("engine.pmapping.build"), "{rendered}");
        assert!(rendered.contains("engine.rows.computed"), "{rendered}");
        assert!(rendered.contains("maxent.iterations"), "{rendered}");
    }

    #[test]
    fn empty_summary_renders_placeholder() {
        let summary = TraceSummary::from_events(&[]);
        assert!(summary.is_empty());
        assert_eq!(summary.span("x"), None);
        assert!(summary.to_string().contains("empty trace"));
    }

    #[test]
    fn fmt_us_scales_units() {
        assert_eq!(fmt_us(5), "5µs");
        assert_eq!(fmt_us(2_500), "2.50ms");
        assert_eq!(fmt_us(3_200_000), "3.20s");
    }
}

//! The `TopMapping` baseline of §7.3.

use udi_core::UdiSystem;
use udi_query::{AnswerSet, Query};

use crate::Integrator;

/// "`TopMapping`: use the consolidated mediated schema but consider only the
/// schema mapping with the highest probability, rather than all the mappings
/// in the p-mapping."
pub struct TopMapping<'a> {
    system: &'a UdiSystem,
}

impl<'a> TopMapping<'a> {
    /// Wrap a configured UDI system.
    pub fn new(system: &'a UdiSystem) -> Self {
        TopMapping { system }
    }
}

impl Integrator for TopMapping<'_> {
    fn name(&self) -> &'static str {
        "TopMapping"
    }

    fn answer(&self, query: &Query) -> AnswerSet {
        self.system.answer_top_mapping(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udi_core::UdiConfig;
    use udi_query::parse_query;
    use udi_store::{Catalog, Table};

    fn system() -> UdiSystem {
        let mut catalog = Catalog::new();
        for (name, attrs, row) in [
            ("s1", vec!["name", "phone"], vec!["Alice", "123"]),
            ("s2", vec!["name", "phone-no"], vec!["Bob", "456"]),
            ("s3", vec!["name", "phone"], vec!["Carol", "789"]),
        ] {
            let mut t = Table::new(name, attrs);
            t.push_raw_row(row).unwrap();
            catalog.add_source(t).unwrap();
        }
        UdiSystem::setup(catalog, UdiConfig::default()).unwrap()
    }

    #[test]
    fn top_mapping_returns_certain_probabilities() {
        let sys = system();
        let tm = TopMapping::new(&sys);
        let q = parse_query("SELECT name, phone FROM t").unwrap();
        let ans = tm.answer(&q);
        assert!(!ans.is_empty());
        for t in ans.flat() {
            assert_eq!(t.probability, 1.0, "top mapping is taken as certain");
        }
    }

    #[test]
    fn recall_is_bounded_by_full_udi() {
        let sys = system();
        let tm = TopMapping::new(&sys);
        let q = parse_query("SELECT name, phone FROM t").unwrap();
        let top = tm.answer(&q).combined();
        let full = sys.answer(&q).combined();
        assert!(top.len() <= full.len());
    }
}

//! The `Source` baseline of §7.3: pose the query directly on every source
//! that contains all the query's attributes, union the answers.

use udi_query::{execute_with_binding, AnswerSet, Binding, Query, SourceAccumulator};
use udi_store::Catalog;

use crate::Integrator;

/// "The second alternative approach, `Source`, answers Q directly on every
/// data source that contains all the attributes in Q, and takes the union
/// of returned answers."
///
/// In essence this considers only attribute-identity mappings, so it misses
/// every answer that needs an actual match (`phone-no` ≠ `phone`) — high
/// precision, low recall. Its precision dips below 1 only through artifacts
/// like the Course domain's string-typed numeric comparisons, which this
/// substrate reproduces.
pub struct SourceDirect<'a> {
    catalog: &'a Catalog,
}

impl<'a> SourceDirect<'a> {
    /// Wrap a catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        SourceDirect { catalog }
    }
}

impl Integrator for SourceDirect<'_> {
    fn name(&self) -> &'static str {
        "Source"
    }

    fn answer(&self, query: &Query) -> AnswerSet {
        let mut set = AnswerSet::new();
        let needed = query.referenced_attributes();
        for (sid, table) in self.catalog.iter_sources() {
            if !needed.iter().all(|a| table.has_attribute(a)) {
                continue;
            }
            let binding = Binding::identity(table);
            let rows = execute_with_binding(table, query, &binding);
            let mut acc = SourceAccumulator::new();
            acc.add_mapping(&rows, 1.0);
            set.add_source(sid, acc.finish());
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udi_query::parse_query;
    use udi_store::{Table, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut t0 = Table::new("s0", ["name", "phone"]);
        t0.push_raw_row(["Alice", "123"]).unwrap();
        c.add_source(t0).unwrap();
        let mut t1 = Table::new("s1", ["name", "phone-no"]);
        t1.push_raw_row(["Bob", "456"]).unwrap();
        c.add_source(t1).unwrap();
        c
    }

    #[test]
    fn answers_only_from_exact_attribute_sources() {
        let c = catalog();
        let s = SourceDirect::new(&c);
        let q = parse_query("SELECT name, phone FROM t").unwrap();
        let ans = s.answer(&q);
        // Only s0 has the literal attribute `phone`: Bob is missed (the
        // low-recall behaviour of the baseline).
        assert_eq!(ans.len(), 1);
        assert_eq!(ans.flat()[0].values[0], Value::text("Alice"));
        assert_eq!(ans.flat()[0].probability, 1.0);
    }

    #[test]
    fn predicates_apply() {
        let c = catalog();
        let s = SourceDirect::new(&c);
        let q = parse_query("SELECT name FROM t WHERE phone = '999'").unwrap();
        assert!(s.answer(&q).is_empty());
    }

    #[test]
    fn stringly_numeric_artifact_lowers_precision() {
        // A source storing a number as text answers `> 30` wrongly for "9".
        let mut c = Catalog::new();
        let mut t = Table::new("course", ["title", "enrollment"]);
        t.push_row(vec![Value::text("Algebra"), Value::text("9")])
            .unwrap();
        t.push_row(vec![Value::text("Calculus"), Value::Int(45)])
            .unwrap();
        c.add_source(t).unwrap();
        let s = SourceDirect::new(&c);
        let q = parse_query("SELECT title FROM t WHERE enrollment > 30").unwrap();
        let names: Vec<String> = s
            .answer(&q)
            .flat()
            .iter()
            .map(|t| t.values[0].to_string())
            .collect();
        // "9" > 30 lexicographically: the incorrect answer appears.
        assert!(names.contains(&"Algebra".to_owned()));
        assert!(names.contains(&"Calculus".to_owned()));
    }
}

//! The `SingleMed` baseline of §7.4: a single deterministic mediated schema
//! (§4.1) instead of a probabilistic one.

use udi_core::{UdiConfig, UdiError, UdiSystem};
use udi_query::{AnswerSet, Query};
use udi_store::Catalog;

use crate::Integrator;

/// "`SingleMed`: create a deterministic mediated schema based on the
/// algorithm in Section 4.1."
///
/// Implementation: §4.1 is exactly Algorithm 1 with no error bar — every
/// edge at or above τ is certain — so `SingleMed` is the full UDI pipeline
/// with `ε = 0`. P-mappings are still probabilistic; only the mediated
/// schema collapses to one clustering. The paper finds precision similar to
/// UDI but lower recall on queries over ambiguous attributes, and a worse
/// R-P curve (Figure 6).
#[derive(Debug)]
pub struct SingleMed {
    system: UdiSystem,
}

impl SingleMed {
    /// Run the ε = 0 pipeline over the catalog.
    pub fn setup(catalog: Catalog, mut config: UdiConfig) -> Result<SingleMed, UdiError> {
        config.params.epsilon = 0.0;
        let system = UdiSystem::setup(catalog, config)?;
        debug_assert!(system.pmed().is_deterministic());
        Ok(SingleMed { system })
    }

    /// The underlying (deterministic-schema) system.
    pub fn system(&self) -> &UdiSystem {
        &self.system
    }
}

impl Integrator for SingleMed {
    fn name(&self) -> &'static str {
        "SingleMed"
    }

    fn answer(&self, query: &Query) -> AnswerSet {
        self.system.answer(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udi_query::parse_query;
    use udi_store::Table;

    #[test]
    fn produces_a_deterministic_schema() {
        let mut catalog = Catalog::new();
        for (name, attrs) in [
            ("s1", vec!["name", "phone"]),
            ("s2", vec!["name", "phone-no"]),
            ("s3", vec!["name", "phone"]),
        ] {
            let mut t = Table::new(name, attrs);
            t.push_raw_row(vec!["x", "1"]).unwrap();
            catalog.add_source(t).unwrap();
        }
        let sm = SingleMed::setup(catalog, UdiConfig::default()).unwrap();
        assert!(sm.system().pmed().is_deterministic());
        assert_eq!(sm.name(), "SingleMed");
        let q = parse_query("SELECT name FROM t").unwrap();
        assert_eq!(sm.answer(&q).combined().len(), 1, "all three rows are 'x'");
    }
}

#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Competing bootstrap approaches from §7.3–§7.4 of the paper.
//!
//! The evaluation compares UDI against every plausible way of standing up a
//! data integration system with zero human effort:
//!
//! | Approach | Idea | Expected behaviour (paper) |
//! |---|---|---|
//! | [`KeywordNaive`] | rows containing *any* query keyword | poor P and R |
//! | [`KeywordStruct`] | classify keywords into structure/value terms; rows with any value term | poor |
//! | [`KeywordStrict`] | rows with *all* value terms | poor |
//! | [`SourceDirect`] | pose the query verbatim on every source containing all its attributes | high P, low R |
//! | [`TopMapping`] | consolidated schema, but only the most probable mapping | erratic P, low R |
//! | [`SingleMed`] | deterministic mediated schema (§4.1, ε = 0) + p-mappings | P ≈ UDI, lower R |
//! | [`UnionAll`] | one singleton cluster per frequent attribute | high P, much lower R, state explosion on Bib |
//!
//! All approaches implement [`Integrator`], so the experiment harness can
//! drive them uniformly.

pub mod keyword;
pub mod single_med;
pub mod source_direct;
pub mod top_mapping;
pub mod union_all;

pub use keyword::{KeywordNaive, KeywordStrict, KeywordStruct};
pub use single_med::SingleMed;
pub use source_direct::SourceDirect;
pub use top_mapping::TopMapping;
pub use union_all::UnionAll;

use udi_query::{AnswerSet, Query};

/// Anything that can answer a select–project query over the integrated
/// sources.
pub trait Integrator {
    /// Short display name used in experiment tables.
    fn name(&self) -> &'static str;
    /// Answer the query.
    fn answer(&self, query: &Query) -> AnswerSet;
}

/// UDI itself, viewed as an [`Integrator`].
pub struct Udi<'a>(pub &'a udi_core::UdiSystem);

impl Integrator for Udi<'_> {
    fn name(&self) -> &'static str {
        "UDI"
    }

    fn answer(&self, query: &Query) -> AnswerSet {
        self.0.answer(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udi_core::{UdiConfig, UdiSystem};
    use udi_query::parse_query;
    use udi_store::{Catalog, Table};

    #[test]
    fn udi_wrapper_delegates() {
        let mut catalog = Catalog::new();
        let mut t = Table::new("s", ["name", "phone"]);
        t.push_raw_row(["Alice", "123"]).unwrap();
        catalog.add_source(t).unwrap();
        let mut t2 = Table::new("s2", ["name", "phone"]);
        t2.push_raw_row(["Bob", "456"]).unwrap();
        catalog.add_source(t2).unwrap();
        let udi = UdiSystem::setup(catalog, UdiConfig::default()).unwrap();
        let w = Udi(&udi);
        assert_eq!(w.name(), "UDI");
        let q = parse_query("SELECT name FROM t").unwrap();
        assert_eq!(w.answer(&q).combined().len(), 2);
    }
}

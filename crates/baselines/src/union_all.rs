//! The `UnionAll` baseline of §7.4: no clustering at all — every frequent
//! attribute is its own mediated attribute.

use std::collections::BTreeSet;

use udi_core::{UdiConfig, UdiError, UdiSystem};
use udi_query::{AnswerSet, Query};
use udi_schema::{generate_pmapping, MediatedSchema, PMedSchema, SchemaSet, SimilarityMatrix};
use udi_store::Catalog;

use crate::Integrator;

/// "`UnionAll`: create a deterministic mediated schema that contains a
/// singleton cluster for each frequent source attribute."
///
/// Not grouping similar attributes leaves correspondences weak and
/// multiplies the possible mappings per p-mapping; the paper reports high
/// precision, much lower recall, and an out-of-memory failure on the Bib
/// domain. Here the explosion is surfaced as
/// [`udi_schema::MaxEntError::Explosion`] through [`UdiError::MaxEnt`].
#[derive(Debug)]
pub struct UnionAll {
    system: UdiSystem,
}

impl UnionAll {
    /// Run the singleton-cluster pipeline over the catalog.
    pub fn setup(catalog: Catalog, config: UdiConfig) -> Result<UnionAll, UdiError> {
        if catalog.source_count() == 0 {
            return Err(UdiError::EmptyCatalog);
        }
        let params = &config.params;
        let measure = config.measure.build();

        let mut schema_set = SchemaSet::default();
        for (_, table) in catalog.iter_sources() {
            schema_set.add_source(table.name(), table.attributes().iter().map(String::as_str));
        }
        let singletons: Vec<BTreeSet<udi_schema::AttrId>> = schema_set
            .frequent_attributes(params.theta)
            .into_iter()
            .map(|a| std::iter::once(a).collect())
            .collect();
        let med = MediatedSchema::new(singletons);
        let pmed = PMedSchema::new(vec![(med.clone(), 1.0)]);

        let matrix = SimilarityMatrix::new(schema_set.vocab(), &*measure);
        let mut pmappings = Vec::with_capacity(schema_set.sources().len());
        for source in schema_set.sources() {
            let pm = generate_pmapping(source, &med, &matrix, params)?;
            pmappings.push(vec![pm]);
        }
        drop(matrix);
        let system = UdiSystem::from_parts(catalog, pmed, pmappings)?;
        Ok(UnionAll { system })
    }

    /// The underlying system.
    pub fn system(&self) -> &UdiSystem {
        &self.system
    }
}

impl Integrator for UnionAll {
    fn name(&self) -> &'static str {
        "UnionAll"
    }

    fn answer(&self, query: &Query) -> AnswerSet {
        self.system.answer(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udi_query::parse_query;
    use udi_store::Table;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for (name, attrs, row) in [
            ("s1", vec!["name", "phone"], vec!["Alice", "123"]),
            ("s2", vec!["name", "phone-no"], vec!["Bob", "456"]),
            ("s3", vec!["name", "phone"], vec!["Carol", "789"]),
        ] {
            let mut t = Table::new(name, attrs);
            t.push_raw_row(row).unwrap();
            c.add_source(t).unwrap();
        }
        c
    }

    #[test]
    fn schema_is_all_singletons() {
        let ua = UnionAll::setup(catalog(), UdiConfig::default()).unwrap();
        let med = ua.system().consolidated();
        assert!(med.clusters().iter().all(|c| c.len() == 1));
        assert!(ua.system().pmed().is_deterministic());
    }

    #[test]
    fn misses_cross_variant_answers_on_exact_select() {
        let ua = UnionAll::setup(catalog(), UdiConfig::default()).unwrap();
        let q = parse_query("SELECT name, phone FROM t").unwrap();
        let names: Vec<String> = ua
            .answer(&q)
            .combined()
            .iter()
            .map(|t| t.values[0].to_string())
            .collect();
        // `phone-no` is a separate mediated attribute: Bob is reachable only
        // through a (thresholded) correspondence phone-no → {phone}. The
        // names pass through Jaro-Winkler fine, so here Bob may appear, but
        // never with certainty; the structural point is that the schema has
        // no clusters.
        assert!(names.contains(&"Alice".to_owned()));
        assert!(names.contains(&"Carol".to_owned()));
    }

    #[test]
    fn explosion_surfaces_as_error() {
        // Many mutually-similar attributes + singleton clusters → the
        // matching count blows past a small cap.
        let mut c = Catalog::new();
        for s in 0..6 {
            let attrs: Vec<String> = (0..8).map(|i| format!("phone{i}{s}")).collect();
            let mut t = Table::new(format!("s{s}"), attrs.clone());
            t.push_raw_row(attrs.iter().map(|_| "1")).unwrap();
            c.add_source(t).unwrap();
        }
        let mut config = UdiConfig::default();
        config.params.theta = 0.0;
        config.params.mapping_cap = 100;
        let err = UnionAll::setup(c, config).unwrap_err();
        assert!(matches!(
            err,
            UdiError::MaxEnt(udi_schema::MaxEntError::Explosion { .. })
        ));
    }
}

//! The document-centric keyword baselines of §7.3.
//!
//! "In the absence of UDI, the typical approach imagined to bootstrap
//! pay-as-you-go data integration systems is to consider all the data
//! sources as a collection of text documents and apply keyword search
//! techniques."
//!
//! Given a query `Q`, the keyword query `Q′` is built from all attribute
//! names in the SELECT clause and all values in the WHERE clause. Retrieved
//! rows are projected onto the SELECT attributes by *identity* — the only
//! notion of structure a keyword engine has — with NULL for attributes the
//! source lacks. All three variants return every tuple with probability 1
//! (keyword search is unranked for our purposes, as in the paper, where
//! these baselines "do not return ranked answers").

use udi_query::{AnswerSet, AnswerTuple, Query};
use udi_store::{Catalog, KeywordIndex, RowRef, Value};

use crate::Integrator;

/// Split a query into its keyword form `Q′`: SELECT attribute names plus
/// WHERE values, tokenized.
fn keyword_query(query: &Query) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for a in &query.select {
        out.extend(tokens(a));
    }
    for p in &query.predicates {
        out.extend(tokens(&p.value.to_string()));
    }
    out.sort();
    out.dedup();
    out
}

fn tokens(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            cur.extend(c.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Project a retrieved row onto the SELECT attributes by attribute-name
/// identity; NULL where the source has no such attribute.
fn project(catalog: &Catalog, rref: RowRef, query: &Query) -> AnswerTuple {
    // Row refs come from the index so the source is present; should the
    // catalog and index ever drift, the row projects to all-NULL instead
    // of killing the whole evaluation sweep.
    let table = catalog.source(rref.source).ok();
    let values: Vec<Value> = query
        .select
        .iter()
        .map(|a| {
            table
                .and_then(|t| {
                    t.attribute_index(a)
                        .and_then(|i| t.value_at(rref.row, i).cloned())
                })
                .unwrap_or(Value::Null)
        })
        .collect();
    AnswerTuple {
        values,
        probability: 1.0,
    }
}

fn collect(catalog: &Catalog, rows: impl IntoIterator<Item = RowRef>, query: &Query) -> AnswerSet {
    let mut per_source: std::collections::BTreeMap<udi_store::SourceId, Vec<AnswerTuple>> =
        Default::default();
    for r in rows {
        per_source
            .entry(r.source)
            .or_default()
            .push(project(catalog, r, query));
    }
    let mut set = AnswerSet::new();
    for (sid, tuples) in per_source {
        set.add_source(sid, tuples);
    }
    set
}

/// `KeywordNaive`: rows containing *any* keyword of `Q′` (attribute names
/// included).
pub struct KeywordNaive<'a> {
    catalog: &'a Catalog,
    index: KeywordIndex,
}

impl<'a> KeywordNaive<'a> {
    /// Index the catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        KeywordNaive {
            catalog,
            index: KeywordIndex::build(catalog),
        }
    }
}

impl Integrator for KeywordNaive<'_> {
    fn name(&self) -> &'static str {
        "KeywordNaive"
    }

    fn answer(&self, query: &Query) -> AnswerSet {
        let kws = keyword_query(query);
        let rows = self.index.rows_with_any(kws.iter().map(String::as_str));
        collect(self.catalog, rows, query)
    }
}

/// `KeywordStruct`: classify each keyword as a *structure term* (occurs in
/// some attribute name) or a *value term*; return rows containing any value
/// term.
pub struct KeywordStruct<'a> {
    catalog: &'a Catalog,
    index: KeywordIndex,
}

impl<'a> KeywordStruct<'a> {
    /// Index the catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        KeywordStruct {
            catalog,
            index: KeywordIndex::build(catalog),
        }
    }

    fn value_terms(&self, query: &Query) -> Vec<String> {
        keyword_query(query)
            .into_iter()
            .filter(|k| !self.index.is_structure_term(k))
            .collect()
    }
}

impl Integrator for KeywordStruct<'_> {
    fn name(&self) -> &'static str {
        "KeywordStruct"
    }

    fn answer(&self, query: &Query) -> AnswerSet {
        let vts = self.value_terms(query);
        let rows = self.index.rows_with_any(vts.iter().map(String::as_str));
        collect(self.catalog, rows, query)
    }
}

/// `KeywordStrict`: like [`KeywordStruct`] but rows must contain *all*
/// value terms.
pub struct KeywordStrict<'a> {
    catalog: &'a Catalog,
    index: KeywordIndex,
}

impl<'a> KeywordStrict<'a> {
    /// Index the catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        KeywordStrict {
            catalog,
            index: KeywordIndex::build(catalog),
        }
    }
}

impl Integrator for KeywordStrict<'_> {
    fn name(&self) -> &'static str {
        "KeywordStrict"
    }

    fn answer(&self, query: &Query) -> AnswerSet {
        let idx = &self.index;
        let vts: Vec<String> = keyword_query(query)
            .into_iter()
            .filter(|k| !idx.is_structure_term(k))
            .collect();
        let rows = idx.rows_with_all(vts.iter().map(String::as_str));
        collect(self.catalog, rows, query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udi_query::parse_query;
    use udi_store::Table;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut t0 = Table::new("s0", ["name", "city"]);
        t0.push_raw_row(["Alice", "Springfield"]).unwrap();
        t0.push_raw_row(["Bob", "Salem"]).unwrap();
        c.add_source(t0).unwrap();
        let mut t1 = Table::new("s1", ["title", "city"]);
        t1.push_raw_row(["Engineer", "Springfield"]).unwrap();
        c.add_source(t1).unwrap();
        c
    }

    #[test]
    fn keyword_query_mixes_select_attrs_and_where_values() {
        let q = parse_query("SELECT name, city FROM t WHERE city = 'Springfield'").unwrap();
        let kws = keyword_query(&q);
        assert!(kws.contains(&"name".to_owned()));
        assert!(kws.contains(&"city".to_owned()));
        assert!(kws.contains(&"springfield".to_owned()));
    }

    #[test]
    fn naive_matches_attribute_names_too() {
        let c = catalog();
        let naive = KeywordNaive::new(&c);
        // "name" is an attribute name token: naive retrieves nothing for it
        // from cell text, but "springfield" hits two rows across sources.
        let q = parse_query("SELECT name FROM t WHERE city = 'Springfield'").unwrap();
        let ans = naive.answer(&q);
        assert_eq!(ans.len(), 2);
        // s1 lacks `name`: its projection is NULL.
        let flat = ans.flat();
        assert!(flat.iter().any(|t| t.values[0] == Value::Null));
        assert!(flat.iter().any(|t| t.values[0] == Value::text("Alice")));
    }

    #[test]
    fn struct_ignores_structure_terms() {
        let c = catalog();
        let ks = KeywordStruct::new(&c);
        let q = parse_query("SELECT name FROM t WHERE city = 'Salem'").unwrap();
        // Value terms: {salem}; structure terms {name, city} ignored.
        let ans = ks.answer(&q);
        assert_eq!(ans.len(), 1);
        assert_eq!(ans.flat()[0].values[0], Value::text("Bob"));
    }

    #[test]
    fn strict_requires_all_value_terms() {
        let c = catalog();
        let strict = KeywordStrict::new(&c);
        let q = parse_query("SELECT name FROM t WHERE name = 'Alice' AND city = 'Salem'").unwrap();
        // No row contains both "alice" and "salem".
        assert!(strict.answer(&q).is_empty());
        let q2 = parse_query("SELECT name FROM t WHERE name = 'Alice' AND city = 'Springfield'")
            .unwrap();
        assert_eq!(strict.answer(&q2).len(), 1);
    }

    #[test]
    fn no_value_terms_yields_empty_for_struct_variants() {
        let c = catalog();
        let q = parse_query("SELECT name FROM t").unwrap();
        assert!(KeywordStruct::new(&c).answer(&q).is_empty());
        assert!(KeywordStrict::new(&c).answer(&q).is_empty());
    }
}

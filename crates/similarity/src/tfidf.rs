//! Corpus-weighted token similarity (soft TF-IDF).
//!
//! Cohen, Ravikumar & Fienberg's IJCAI'03 study — the paper's cited basis
//! for choosing Jaro–Winkler — found *soft TF-IDF* the strongest hybrid
//! measure for name matching: cosine similarity over TF-IDF-weighted
//! tokens, where tokens match softly (by Jaro–Winkler above a threshold)
//! rather than exactly. Unlike the other measures in this crate it is
//! corpus-aware: a token like `home` that appears in half the attribute
//! names carries less weight than a rare token like `issn`.

use std::collections::BTreeMap;

use crate::jaro::jaro_winkler;
use crate::normalize::tokenize_name;
use crate::Similarity;

/// Soft TF-IDF similarity over a fixed corpus of attribute names.
///
/// Construct with [`SoftTfIdf::from_names`]; names not seen at construction
/// still compare (their tokens get the maximum IDF, as unseen tokens are
/// maximally distinctive).
///
/// ```
/// use udi_similarity::{SoftTfIdf, Similarity};
///
/// let corpus = ["home phone", "home address", "office phone", "name"];
/// let sim = SoftTfIdf::from_names(corpus);
/// // The shared, common token `home` matters less than the rare ones.
/// let same_rare = sim.similarity("home phone", "home phones");
/// let same_common = sim.similarity("home phone", "home address");
/// assert!(same_rare > same_common);
/// ```
#[derive(Debug, Clone)]
pub struct SoftTfIdf {
    /// token → inverse document frequency (ordered: IDF construction and
    /// lookup must be reproducible run to run).
    idf: BTreeMap<String, f64>,
    /// IDF assigned to tokens outside the corpus.
    max_idf: f64,
    /// Inner-match threshold: tokens pair up when their Jaro–Winkler
    /// similarity reaches this (0.9 in the original formulation).
    pub soft_threshold: f64,
}

impl SoftTfIdf {
    /// Build the IDF table from a corpus of attribute names.
    pub fn from_names<I, S>(names: I) -> SoftTfIdf
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut doc_freq: BTreeMap<String, usize> = BTreeMap::new();
        let mut n_docs = 0usize;
        for name in names {
            n_docs += 1;
            let mut tokens = tokenize_name(name.as_ref());
            tokens.sort();
            tokens.dedup();
            for t in tokens {
                *doc_freq.entry(t).or_insert(0) += 1;
            }
        }
        let n = n_docs.max(1) as f64;
        let idf: BTreeMap<String, f64> = doc_freq
            .into_iter()
            .map(|(t, df)| (t, (n / df as f64).ln() + 1.0))
            .collect();
        let max_idf = n.ln() + 1.0;
        SoftTfIdf {
            idf,
            max_idf,
            soft_threshold: 0.9,
        }
    }

    fn weight(&self, token: &str) -> f64 {
        self.idf.get(token).copied().unwrap_or(self.max_idf)
    }

    /// TF-IDF weight vector of a name (token → weight, L2-normalized).
    fn vector(&self, name: &str) -> Vec<(String, f64)> {
        let tokens = tokenize_name(name);
        let mut tf: BTreeMap<String, f64> = BTreeMap::new();
        for t in tokens {
            *tf.entry(t).or_insert(0.0) += 1.0;
        }
        let mut v: Vec<(String, f64)> = tf
            .into_iter()
            .map(|(t, f)| (t.clone(), f * self.weight(&t)))
            .collect();
        let norm = v.iter().map(|(_, w)| w * w).sum::<f64>().sqrt();
        if norm > 0.0 {
            for (_, w) in &mut v {
                *w /= norm;
            }
        }
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

impl Similarity for SoftTfIdf {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        let va = self.vector(a);
        let vb = self.vector(b);
        if va.is_empty() && vb.is_empty() {
            return 1.0;
        }
        if va.is_empty() || vb.is_empty() {
            return 0.0;
        }
        // Soft cosine: each token of `a` matches its best soft partner in
        // `b`; the pair contributes weight_a * weight_b * inner_sim.
        let mut total = 0.0;
        for (ta, wa) in &va {
            let mut best = 0.0_f64;
            let mut best_w = 0.0;
            for (tb, wb) in &vb {
                let s = if ta == tb { 1.0 } else { jaro_winkler(ta, tb) };
                if s >= self.soft_threshold && s > best {
                    best = s;
                    best_w = *wb;
                }
            }
            total += wa * best_w * best;
        }
        total.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> SoftTfIdf {
        SoftTfIdf::from_names([
            "home phone",
            "home address",
            "office phone",
            "office address",
            "name",
            "email",
            "phone",
            "address",
        ])
    }

    #[test]
    fn identical_names_score_one() {
        let s = corpus();
        assert!((s.similarity("home phone", "home phone") - 1.0).abs() < 1e-9);
        assert!((s.similarity("name", "name") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn common_tokens_are_downweighted() {
        let s = corpus();
        // `home` and `office` are rarer than `phone`/`address` here? Both
        // appear twice; phone appears 3 times. Compare: sharing the rarer
        // token scores higher than sharing the commoner one.
        let share_home = s.similarity("home phone", "home address");
        let share_phone = s.similarity("home phone", "office phone");
        // phone (df=3) is more common than home (df=2): sharing `home`
        // should count more.
        assert!(share_home > share_phone, "{share_home} vs {share_phone}");
    }

    #[test]
    fn soft_matching_unifies_morphology() {
        let s = corpus();
        // `phones` is not in the corpus: soft-matches `phone`.
        let soft = s.similarity("home phones", "home phone");
        assert!(soft > 0.9, "{soft}");
    }

    #[test]
    fn disjoint_names_score_zero() {
        let s = corpus();
        assert_eq!(s.similarity("email", "address"), 0.0);
    }

    #[test]
    fn unseen_tokens_get_max_idf() {
        let s = corpus();
        // Entirely out-of-corpus names still compare sensibly.
        let v = s.similarity("zzyzx road", "zzyzx road");
        assert!((v - 1.0).abs() < 1e-9);
        assert!(s.similarity("zzyzx", "email") < 0.2);
    }

    #[test]
    fn empty_inputs() {
        let s = corpus();
        assert_eq!(s.similarity("", ""), 1.0);
        assert_eq!(s.similarity("", "phone"), 0.0);
    }

    #[test]
    fn symmetric_enough_for_clustering() {
        let s = corpus();
        for (a, b) in [("home phone", "phone"), ("office address", "address")] {
            let ab = s.similarity(a, b);
            let ba = s.similarity(b, a);
            assert!((ab - ba).abs() < 0.2, "{a}/{b}: {ab} vs {ba}");
        }
    }
}

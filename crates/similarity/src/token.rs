//! Token-level hybrid similarity (symmetric Monge–Elkan).
//!
//! Multi-word attribute labels ("link to pubmed", "home address") are better
//! compared token-by-token: each token of one name is aligned with its best
//! match in the other, scores are averaged, and the two directions are
//! averaged to restore symmetry.

use crate::{normalize::tokenize_name, Similarity};

/// Symmetric Monge–Elkan similarity over token slices with inner measure
/// `inner`.
///
/// `ME(A→B) = (1/|A|) Σ_{a∈A} max_{b∈B} inner(a, b)`; the symmetric form is
/// the mean of both directions. Empty token lists compare as `1.0` to each
/// other and `0.0` to anything non-empty.
pub fn monge_elkan<S, T>(a: &[S], b: &[T], inner: &dyn Similarity) -> f64
where
    S: AsRef<str>,
    T: AsRef<str>,
{
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return 1.0,
        (true, false) | (false, true) => return 0.0,
        _ => {}
    }
    let dir = |xs: &[&str], ys: &[&str]| -> f64 {
        let total: f64 = xs
            .iter()
            .map(|x| {
                ys.iter()
                    .map(|y| inner.similarity(x, y))
                    .fold(0.0_f64, f64::max)
            })
            .sum();
        total / xs.len() as f64
    };
    let av: Vec<&str> = a.iter().map(AsRef::as_ref).collect();
    let bv: Vec<&str> = b.iter().map(AsRef::as_ref).collect();
    (dir(&av, &bv) + dir(&bv, &av)) / 2.0
}

/// [`Similarity`] adapter: tokenize both names and apply symmetric
/// Monge–Elkan with Jaro–Winkler inside.
#[derive(Debug, Clone, Copy, Default)]
pub struct TokenHybrid;

impl Similarity for TokenHybrid {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        let ta = tokenize_name(a);
        let tb = tokenize_name(b);
        monge_elkan(&ta, &tb, &crate::jaro::JaroWinkler::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact() -> impl Similarity {
        |a: &str, b: &str| if a == b { 1.0 } else { 0.0 }
    }

    #[test]
    fn identical_token_sets_score_one() {
        let a = ["home", "phone"];
        assert_eq!(monge_elkan(&a, &a, &exact()), 1.0);
    }

    #[test]
    fn order_insensitive() {
        let a = ["phone", "home"];
        let b = ["home", "phone"];
        assert_eq!(monge_elkan(&a, &b, &exact()), 1.0);
    }

    #[test]
    fn partial_overlap_is_fractional() {
        let a = ["email", "address"];
        let b = ["home", "address"];
        // Directionally: (0 + 1)/2 each way = 0.5.
        assert_eq!(monge_elkan(&a, &b, &exact()), 0.5);
    }

    #[test]
    fn asymmetric_sizes_are_symmetrized() {
        let a = ["address"];
        let b = ["home", "address"];
        // A→B: 1.0; B→A: (0+1)/2 = 0.5; symmetric = 0.75.
        let s = monge_elkan(&a, &b, &exact());
        assert_eq!(s, 0.75);
        assert_eq!(s, monge_elkan(&b, &a, &exact()));
    }

    #[test]
    fn empty_cases() {
        let empty: [&str; 0] = [];
        let some = ["x"];
        assert_eq!(monge_elkan(&empty, &empty, &exact()), 1.0);
        assert_eq!(monge_elkan(&empty, &some, &exact()), 0.0);
        assert_eq!(monge_elkan(&some, &empty, &exact()), 0.0);
    }

    #[test]
    fn token_hybrid_end_to_end() {
        let th = TokenHybrid;
        assert_eq!(th.similarity("home phone", "HomePhone"), 1.0);
        assert!(th.similarity("link to pubmed", "pubmed link") > 0.8);
        assert!(th.similarity("year", "instructor name") < 0.6);
    }
}

//! Jaro and Jaro–Winkler similarity.
//!
//! Jaro–Winkler is the measure the UDI paper used (via SecondString) for
//! pairwise attribute-name comparison, following the name-matching study of
//! Cohen, Ravikumar and Fienberg (IJCAI 2003). The Winkler refinement boosts
//! pairs sharing a common prefix, which suits attribute labels
//! (`phone`/`phone-no`, `author`/`authors`).

use crate::Similarity;

/// Jaro similarity between two strings, in `[0, 1]`.
///
/// Defined over matching characters within a sliding window of half the
/// longer string's length, discounted by transpositions:
/// `J = (m/|a| + m/|b| + (m - t)/m) / 3`.
///
/// ```
/// use udi_similarity::jaro;
/// assert!((jaro("martha", "marhta") - 0.944444).abs() < 1e-5);
/// assert_eq!(jaro("abc", "abc"), 1.0);
/// assert_eq!(jaro("abc", "xyz"), 0.0);
/// ```
pub fn jaro(a: &str, b: &str) -> f64 {
    let ca: Vec<char> = a.chars().collect();
    let cb: Vec<char> = b.chars().collect();
    let (la, lb) = (ca.len(), cb.len());
    if la == 0 && lb == 0 {
        return 1.0;
    }
    if la == 0 || lb == 0 {
        return 0.0;
    }
    let window = (la.max(lb) / 2).saturating_sub(1);
    let mut b_used = vec![false; lb];
    let mut a_matches: Vec<char> = Vec::new();
    for (i, &c) in ca.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(lb);
        for j in lo..hi {
            let used = b_used.get(j).copied().unwrap_or(true);
            if !used && cb.get(j) == Some(&c) {
                if let Some(slot) = b_used.get_mut(j) {
                    *slot = true;
                }
                a_matches.push(c);
                break;
            }
        }
    }
    let m = a_matches.len();
    if m == 0 {
        return 0.0;
    }
    // Characters of b that matched, in b order.
    let b_matches: Vec<char> = cb
        .iter()
        .zip(b_used.iter())
        .filter_map(|(&c, &u)| u.then_some(c))
        .collect();
    let transpositions = a_matches
        .iter()
        .zip(b_matches.iter())
        .filter(|(x, y)| x != y)
        .count();
    let m = m as f64;
    let t = transpositions as f64 / 2.0;
    (m / la as f64 + m / lb as f64 + (m - t) / m) / 3.0
}

/// Jaro–Winkler similarity with the standard prefix scale `p = 0.1` and a
/// prefix cap of 4 characters.
///
/// `JW = J + ℓ · p · (1 − J)` where `ℓ` is the length of the common prefix
/// (at most 4).
///
/// ```
/// use udi_similarity::{jaro, jaro_winkler};
/// let (j, jw) = (jaro("phone", "phoneno"), jaro_winkler("phone", "phoneno"));
/// assert!(jw > j);
/// assert_eq!(jaro_winkler("same", "same"), 1.0);
/// ```
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    jaro_winkler_with(a, b, 0.1, 4)
}

/// Jaro–Winkler with explicit prefix scale and prefix cap.
///
/// `scale` must lie in `[0, 0.25]` so the result stays in `[0, 1]`.
pub fn jaro_winkler_with(a: &str, b: &str, scale: f64, max_prefix: usize) -> f64 {
    assert!((0.0..=0.25).contains(&scale), "prefix scale out of range");
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(max_prefix)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * scale * (1.0 - j)
}

/// [`Similarity`] adapter for [`jaro`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Jaro;

impl Similarity for Jaro {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        jaro(a, b)
    }
}

/// [`Similarity`] adapter for [`jaro_winkler_with`].
#[derive(Debug, Clone, Copy)]
pub struct JaroWinkler {
    /// Prefix scale `p`; standard value `0.1`.
    pub prefix_scale: f64,
    /// Maximum common prefix length rewarded; standard value `4`.
    pub max_prefix: usize,
}

impl Default for JaroWinkler {
    fn default() -> Self {
        JaroWinkler {
            prefix_scale: 0.1,
            max_prefix: 4,
        }
    }
}

impl Similarity for JaroWinkler {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        jaro_winkler_with(a, b, self.prefix_scale, self.max_prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(x: f64, y: f64) -> bool {
        (x - y).abs() < 1e-6
    }

    #[test]
    fn classic_reference_values() {
        // Winkler's canonical examples.
        assert!(close(jaro("DWAYNE", "DUANE"), 0.8222222222));
        assert!(close(jaro("DIXON", "DICKSONX"), 0.7666666667));
        assert!(close(jaro_winkler("DIXON", "DICKSONX"), 0.8133333333));
        assert!(close(jaro_winkler("MARTHA", "MARHTA"), 0.9611111111));
    }

    #[test]
    fn identical_and_disjoint() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("", "a"), 0.0);
        assert_eq!(jaro("abcd", "abcd"), 1.0);
        assert_eq!(jaro_winkler("abcd", "abcd"), 1.0);
        assert_eq!(jaro("abc", "def"), 0.0);
    }

    #[test]
    fn symmetry() {
        let pairs = [
            ("phone", "phoneno"),
            ("issn", "eissn"),
            ("martha", "marhta"),
        ];
        for (a, b) in pairs {
            assert!(close(jaro(a, b), jaro(b, a)), "{a} {b}");
            assert!(close(jaro_winkler(a, b), jaro_winkler(b, a)), "{a} {b}");
        }
    }

    #[test]
    fn winkler_only_boosts_shared_prefix() {
        // No common prefix: JW == J.
        assert!(close(
            jaro_winkler("xphone", "yphone"),
            jaro("xphone", "yphone")
        ));
        // Common prefix: JW > J strictly (when J < 1).
        assert!(jaro_winkler("phone", "phonex") > jaro("phone", "phonex"));
    }

    #[test]
    fn prefix_cap_is_respected() {
        // With identical 8-char prefixes, only 4 chars count.
        let j = jaro("abcdefgh1", "abcdefgh2");
        let jw = jaro_winkler("abcdefgh1", "abcdefgh2");
        assert!(close(jw, j + 4.0 * 0.1 * (1.0 - j)));
    }

    #[test]
    fn output_range_never_escapes_unit_interval() {
        let samples = ["", "a", "ab", "ba", "abcdef", "fedcba", "aaaa", "aaab"];
        for a in samples {
            for b in samples {
                let v = jaro_winkler(a, b);
                assert!((0.0..=1.0).contains(&v), "jw({a},{b}) = {v}");
            }
        }
    }

    #[test]
    fn unicode_safe() {
        assert_eq!(jaro("café", "café"), 1.0);
        assert!(jaro("café", "cafe") > 0.8);
    }

    #[test]
    #[should_panic(expected = "prefix scale")]
    fn rejects_invalid_scale() {
        jaro_winkler_with("a", "b", 0.5, 4);
    }

    proptest! {
        #[test]
        fn jaro_symmetric_and_bounded(a in ".{0,12}", b in ".{0,12}") {
            let ab = jaro(&a, &b);
            let ba = jaro(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&ab));
            let jw = jaro_winkler(&a, &b);
            prop_assert!((0.0..=1.0).contains(&jw));
            prop_assert!(jw >= ab - 1e-12, "Winkler never reduces Jaro");
        }

        #[test]
        fn jaro_reflexive(a in ".{1,12}") {
            prop_assert_eq!(jaro(&a, &a), 1.0);
            prop_assert_eq!(jaro_winkler(&a, &a), 1.0);
        }
    }
}

//! Levenshtein edit distance and its normalized similarity form.

use crate::Similarity;

/// Levenshtein (unit-cost insert/delete/substitute) edit distance.
///
/// Runs in `O(|a| · |b|)` time and `O(min(|a|, |b|))` space.
///
/// ```
/// use udi_similarity::levenshtein;
/// assert_eq!(levenshtein("kitten", "sitting"), 3);
/// assert_eq!(levenshtein("", "abc"), 3);
/// assert_eq!(levenshtein("same", "same"), 0);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    let (short, long): (Vec<char>, Vec<char>) = {
        let ca: Vec<char> = a.chars().collect();
        let cb: Vec<char> = b.chars().collect();
        if ca.len() <= cb.len() {
            (ca, cb)
        } else {
            (cb, ca)
        }
    };
    if short.is_empty() {
        return long.len();
    }
    let mut row: Vec<usize> = (0..=short.len()).collect();
    for (i, &cl) in long.iter().enumerate() {
        let mut prev_diag = row.first().copied().unwrap_or(0);
        if let Some(first) = row.first_mut() {
            *first = i + 1;
        }
        for (j, &cs) in short.iter().enumerate() {
            let cost = usize::from(cl != cs);
            let left = row.get(j).copied().unwrap_or(0);
            let up = row.get(j + 1).copied().unwrap_or(0);
            let next = (prev_diag + cost).min(left + 1).min(up + 1);
            prev_diag = up;
            if let Some(slot) = row.get_mut(j + 1) {
                *slot = next;
            }
        }
    }
    row.last().copied().unwrap_or(0)
}

/// Normalized Levenshtein similarity: `1 − d(a, b) / max(|a|, |b|)`.
///
/// Two empty strings are maximally similar.
///
/// ```
/// use udi_similarity::normalized_levenshtein;
/// assert_eq!(normalized_levenshtein("", ""), 1.0);
/// assert_eq!(normalized_levenshtein("abcd", "abcd"), 1.0);
/// assert_eq!(normalized_levenshtein("abcd", "wxyz"), 0.0);
/// ```
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let longest = la.max(lb);
    if longest == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / longest as f64
}

/// [`Similarity`] adapter for [`normalized_levenshtein`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Levenshtein;

impl Similarity for Levenshtein {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        normalized_levenshtein(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_distances() {
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("intention", "execution"), 5);
        assert_eq!(levenshtein("a", "b"), 1);
        assert_eq!(levenshtein("ab", "ba"), 2);
    }

    #[test]
    fn unicode_counts_chars_not_bytes() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("ü", "u"), 1);
    }

    proptest! {
        #[test]
        fn symmetric(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        }

        #[test]
        fn identity_of_indiscernibles(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            let d = levenshtein(&a, &b);
            prop_assert_eq!(d == 0, a == b);
        }

        #[test]
        fn triangle_inequality(
            a in "[a-z]{0,8}",
            b in "[a-z]{0,8}",
            c in "[a-z]{0,8}",
        ) {
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        }

        #[test]
        fn bounded_by_longer_length(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            let d = levenshtein(&a, &b);
            let la = a.chars().count();
            let lb = b.chars().count();
            prop_assert!(d >= la.abs_diff(lb));
            prop_assert!(d <= la.max(lb));
        }

        #[test]
        fn normalized_in_unit_interval(a in ".{0,12}", b in ".{0,12}") {
            let s = normalized_levenshtein(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }
}

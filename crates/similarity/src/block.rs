//! Character n-gram blocking: an inverted index that narrows the quadratic
//! attribute-pair space down to *candidate* pairs sharing at least one gram.
//!
//! The SIGMOD'08 setup pipeline scores every frequent-attribute pair (and,
//! for p-mapping generation, every attribute × cluster-attribute pair) with
//! the full similarity measure. At the paper's 817 sources that is fine; at
//! the 100k-source target it is the dominant quadratic cost. Blocking is
//! the standard remedy from the record-linkage and large-scale schema
//! integration literature: two names whose similarity could clear the
//! decision thresholds share character structure, so only pairs sharing at
//! least one padded n-gram are scored and every other pair is pruned
//! without ever running the measure.
//!
//! Determinism: candidate streams are emitted in ascending key order —
//! [`BlockIndex::candidates_of`] returns ascending keys, and
//! [`BlockIndex::pairs_among`] emits `(low, high)` pairs sorted by
//! `(high, low)` — so a consumer that iterates candidates performs the
//! exact same work in the exact same order on every run. No hash-map
//! iteration order ever reaches the output: postings are `Vec`s appended
//! in key order, and the interner's map is only ever *queried* by key.
//!
//! Grams are interned as fixed-width byte ids ([`GramId`]): each gram of up
//! to four `char`s packs into a 16-byte key (four little-endian code
//! points), so the index, its postings, and the candidate queries all work
//! on `u32` ids and never allocate or compare per-gram strings. The gram
//! windows themselves are borrowed from one padded buffer per name (see
//! [`crate::ngram`]) — indexing a name allocates nothing per gram.

use std::collections::HashMap;

use crate::ngram::padded_chars;
use crate::normalize::normalize_name;

/// Interned id of a fixed-width gram key. Ids are dense (`0..gram_count`)
/// and assigned in first-seen order, which is deterministic because names
/// are only ever inserted in key order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GramId(pub u32);

/// Pack a gram of at most four chars into its fixed-width 16-byte key.
fn pack(gram: &[char]) -> [u8; 16] {
    debug_assert!(gram.len() <= 4, "gram wider than the fixed-width key");
    let mut key = [0u8; 16];
    for (i, &c) in gram.iter().enumerate() {
        if let Some(chunk) = key.get_mut(i * 4..i * 4 + 4) {
            chunk.copy_from_slice(&(c as u32).to_le_bytes());
        }
    }
    key
}

/// Gram interner: fixed-width byte key → dense [`GramId`].
#[derive(Debug, Clone, Default)]
struct GramInterner {
    /// Queried by packed key only; gram ids are handed out in insertion
    /// order and iteration always goes through the postings `Vec`s, so the
    /// map's own ordering never influences any output.
    ids: HashMap<[u8; 16], GramId>,
}

impl GramInterner {
    fn intern(&mut self, gram: &[char]) -> (GramId, bool) {
        let next = GramId(self.ids.len() as u32);
        match self.ids.entry(pack(gram)) {
            std::collections::hash_map::Entry::Occupied(e) => (*e.get(), false),
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(next);
                (next, true)
            }
        }
    }

    fn len(&self) -> usize {
        self.ids.len()
    }
}

/// The n-gram inverted index over attribute names.
///
/// Keys are dense `u32`s assigned by insertion order ([`BlockIndex::insert`]
/// returns them), which lets the setup engine use attribute ids directly:
/// interning the vocabulary in id order makes key `k` *be* `AttrId(k)`.
///
/// Each name is indexed under the grams of its normalized form
/// ([`normalize_name`]) *and* of its raw lowercased form when the two
/// differ — the default matcher compares normalized names, but the
/// pluggable measures (plain Jaro–Winkler on raw labels) do not, and an
/// extra gram can only *add* candidates, never change a score.
#[derive(Debug, Clone)]
pub struct BlockIndex {
    n: usize,
    interner: GramInterner,
    /// gram id → keys indexed under the gram, ascending (keys arrive in
    /// ascending order and each key posts to a gram at most once).
    postings: Vec<Vec<u32>>,
    /// key → its distinct gram ids (sorted), for candidate queries.
    key_grams: Vec<Vec<GramId>>,
}

impl BlockIndex {
    /// An empty index over `n`-grams. `n` must be in `1..=4` (the
    /// fixed-width gram key holds four chars).
    pub fn new(n: usize) -> BlockIndex {
        assert!((1..=4).contains(&n), "gram size {n} outside 1..=4");
        BlockIndex {
            n,
            interner: GramInterner::default(),
            postings: Vec::new(),
            key_grams: Vec::new(),
        }
    }

    /// The conventional configuration for short attribute labels: padded
    /// bigrams. Bigrams keep recall high (any shared normalized token of
    /// length ≥ 1 shares a gram) while still pruning cross-concept pairs.
    pub fn bigram() -> BlockIndex {
        BlockIndex::new(2)
    }

    /// Index `name` under the next dense key, returning that key.
    ///
    /// Keys are assigned `0, 1, 2, ...` in insertion order, so inserting a
    /// vocabulary in id order aligns keys with attribute ids.
    pub fn insert(&mut self, name: &str) -> u32 {
        let key = self.key_grams.len() as u32;
        let mut grams: Vec<GramId> = Vec::new();
        let normalized = normalize_name(name);
        self.collect_grams(&normalized, &mut grams);
        let lowered = name.to_lowercase();
        if lowered != normalized {
            self.collect_grams(&lowered, &mut grams);
        }
        grams.sort_unstable();
        grams.dedup();
        for &g in &grams {
            if let Some(posting) = self.postings.get_mut(g.0 as usize) {
                posting.push(key);
            }
        }
        self.key_grams.push(grams);
        key
    }

    fn collect_grams(&mut self, form: &str, out: &mut Vec<GramId>) {
        let padded = padded_chars(form, self.n);
        for w in padded.windows(self.n) {
            let (id, fresh) = self.interner.intern(w);
            if fresh {
                self.postings.push(Vec::new());
            }
            out.push(id);
        }
    }

    /// Number of indexed names.
    pub fn len(&self) -> usize {
        self.key_grams.len()
    }

    /// Whether no name has been indexed.
    pub fn is_empty(&self) -> bool {
        self.key_grams.is_empty()
    }

    /// Number of distinct interned grams.
    pub fn gram_count(&self) -> usize {
        self.interner.len()
    }

    /// All indexed keys sharing at least one gram with `key`, ascending,
    /// excluding `key` itself. Unknown keys have no candidates.
    pub fn candidates_of(&self, key: u32) -> Vec<u32> {
        let Some(grams) = self.key_grams.get(key as usize) else {
            return Vec::new();
        };
        let mut out: Vec<u32> = Vec::new();
        for &g in grams {
            let posting = self
                .postings
                .get(g.0 as usize)
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            out.extend(posting.iter().copied().filter(|&m| m != key));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Candidate pairs among `keys`: every unordered pair sharing at least
    /// one gram, emitted as `(low, high)` sorted by `(high, low)`. `keys`
    /// may arrive in any order; the output order depends only on the set.
    pub fn pairs_among(&self, keys: &[u32]) -> Vec<(u32, u32)> {
        let mut member = vec![false; self.len()];
        for &k in keys {
            if let Some(slot) = member.get_mut(k as usize) {
                *slot = true;
            }
        }
        let mut sorted: Vec<u32> = keys
            .iter()
            .copied()
            .filter(|&k| (k as usize) < self.len())
            .collect();
        sorted.sort_unstable();
        sorted.dedup();
        // Stamp-dedup: `seen[m] == stamp` marks m as already collected for
        // the current high key, without clearing the array between keys.
        let mut seen: Vec<u32> = vec![u32::MAX; self.len()];
        let mut out: Vec<(u32, u32)> = Vec::new();
        for &high in &sorted {
            let from = out.len();
            let grams = self
                .key_grams
                .get(high as usize)
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            for &g in grams {
                let posting = self
                    .postings
                    .get(g.0 as usize)
                    .map(Vec::as_slice)
                    .unwrap_or(&[]);
                for &m in posting {
                    let is_member = member.get(m as usize).copied().unwrap_or(false);
                    let fresh = seen.get(m as usize).is_some_and(|&s| s != high);
                    if m < high && is_member && fresh {
                        if let Some(slot) = seen.get_mut(m as usize) {
                            *slot = high;
                        }
                        out.push((m, high));
                    }
                }
            }
            if let Some(tail) = out.get_mut(from..) {
                tail.sort_unstable();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttributeSimilarity, Similarity};
    use proptest::prelude::*;

    fn index(names: &[&str]) -> BlockIndex {
        let mut idx = BlockIndex::bigram();
        for (i, n) in names.iter().enumerate() {
            assert_eq!(idx.insert(n), i as u32, "keys are dense");
        }
        idx
    }

    #[test]
    fn shared_grams_make_candidates() {
        let idx = index(&["phone", "phone-no", "year", "years"]);
        assert_eq!(idx.candidates_of(0), vec![1], "phone ~ phone-no");
        assert_eq!(idx.candidates_of(2), vec![3], "year ~ years");
        assert_eq!(idx.len(), 4);
        assert!(idx.gram_count() > 0);
    }

    #[test]
    fn disjoint_names_are_pruned() {
        let idx = index(&["zip", "make"]);
        assert!(idx.candidates_of(0).is_empty());
        assert!(idx.candidates_of(1).is_empty());
        assert!(idx.pairs_among(&[0, 1]).is_empty());
    }

    #[test]
    fn pairs_among_is_sorted_and_deduplicated() {
        let idx = index(&["issn", "eissn", "issue", "isbn"]);
        let pairs = idx.pairs_among(&[0, 1, 2, 3]);
        let mut sorted = pairs.clone();
        sorted.sort_unstable_by_key(|&(a, b)| (b, a));
        assert_eq!(pairs, sorted, "emitted in (high, low) order");
        let mut dedup = pairs.clone();
        dedup.dedup();
        assert_eq!(pairs, dedup);
        // All four share the `is`/`ss`/`sn` gram structure pairwise except
        // none are missed: issn–eissn must be a candidate (uncertain edge
        // material in the Bib domain).
        assert!(pairs.contains(&(0, 1)));
    }

    #[test]
    fn pairs_among_respects_the_key_subset() {
        let idx = index(&["phone", "phones", "phone no"]);
        let pairs = idx.pairs_among(&[0, 2]);
        assert_eq!(pairs, vec![(0, 2)], "key 1 excluded");
    }

    #[test]
    fn normalization_variants_share_grams() {
        // The index grams the normalized form, so punctuation/camel-case
        // variants of one concept are always candidates.
        let idx = index(&["HomePhone", "home_phone", "home-phone"]);
        assert_eq!(idx.candidates_of(0), vec![1, 2]);
    }

    #[test]
    fn punctuation_only_names_are_mutual_candidates() {
        // Their normalized forms are empty; both gram to the padding-only
        // bigram and the default measure scores them 1.0 — they must not
        // be pruned away from each other.
        let idx = index(&["---", "()", "phone"]);
        assert_eq!(idx.candidates_of(0), vec![1]);
        assert!(!idx.candidates_of(0).contains(&2));
    }

    #[test]
    fn raw_form_is_indexed_for_non_normalizing_measures() {
        // `author(s)` normalizes to "author s"; a raw-label measure sees
        // "author(s)". Both forms contribute grams.
        let idx = index(&["author(s)", "authors"]);
        assert_eq!(idx.candidates_of(0), vec![1]);
    }

    #[test]
    fn unknown_keys_are_harmless() {
        let idx = index(&["a"]);
        assert!(idx.candidates_of(99).is_empty());
        assert!(idx.pairs_among(&[0, 99]).is_empty());
        assert!(BlockIndex::bigram().is_empty());
    }

    proptest! {
        /// Soundness on realistic label shapes: any pair the default
        /// measure scores at or above the engine's scoring floor (0.83 =
        /// min(τ−ε, pair_floor)) must be a candidate pair.
        #[test]
        fn high_similarity_pairs_are_candidates(
            a in "[a-z]{1,8}( [a-z]{1,8})?",
            b in "[a-z]{1,8}( [a-z]{1,8})?",
        ) {
            let measure = AttributeSimilarity::default();
            let sim = measure.similarity(&a, &b);
            let idx = index(&[&a, &b]);
            if a != b && sim >= 0.83 {
                prop_assert!(
                    idx.candidates_of(0).contains(&1),
                    "sim({a}, {b}) = {sim} but the pair was pruned"
                );
            }
        }
    }
}

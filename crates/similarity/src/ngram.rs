//! Character n-gram set similarities (Jaccard and Dice).
//!
//! n-gram measures are robust to small word-order changes and are a common
//! alternative matcher in the schema-matching literature surveyed by Rahm &
//! Bernstein; UDI can be configured to use them in place of Jaro–Winkler.
//!
//! Gram extraction is allocation-frugal: both strings are decoded into one
//! padded `char` buffer each and every gram is a *borrowed window*
//! (`&[char]`) into that buffer — no per-gram `String`/`Vec` is ever
//! allocated, which matters because the n-gram blocking index
//! ([`crate::block`]) and the comparison loops of the setup pipeline walk
//! grams for every attribute of every source.

use std::collections::BTreeSet;

use crate::Similarity;

/// Decode `s` into a `char` buffer padded with `n - 1` leading and trailing
/// `#` sentinels, so that prefixes/suffixes are represented as grams.
///
/// For `n == 0` the buffer is empty (no grams are defined).
pub(crate) fn padded_chars(s: &str, n: usize) -> Vec<char> {
    if n == 0 {
        return Vec::new();
    }
    let mut padded: Vec<char> = Vec::with_capacity(s.chars().count() + 2 * (n - 1));
    padded.extend(std::iter::repeat_n('#', n - 1));
    padded.extend(s.chars());
    padded.extend(std::iter::repeat_n('#', n - 1));
    padded
}

/// The set of character `n`-grams of a padded buffer, as borrowed windows.
/// Ordered so the gram walk is reproducible wherever it is iterated.
fn gram_set(padded: &[char], n: usize) -> BTreeSet<&[char]> {
    let mut set = BTreeSet::new();
    if n == 0 {
        return set;
    }
    for w in padded.windows(n) {
        set.insert(w);
    }
    set
}

/// Shared set-overlap core: `(|A ∩ B|, |A|, |B|)` of the two gram sets,
/// built without allocating any per-gram storage.
fn gram_overlap(a: &str, b: &str, n: usize) -> (usize, usize, usize) {
    let pa = padded_chars(a, n);
    let pb = padded_chars(b, n);
    let ga = gram_set(&pa, n);
    let gb = gram_set(&pb, n);
    let inter = ga.intersection(&gb).count();
    (inter, ga.len(), gb.len())
}

/// Jaccard similarity of the `n`-gram sets: `|A ∩ B| / |A ∪ B|`.
///
/// ```
/// use udi_similarity::jaccard_ngram;
/// assert_eq!(jaccard_ngram("phone", "phone", 3), 1.0);
/// assert!(jaccard_ngram("phone", "phones", 3) >= 0.5);
/// assert_eq!(jaccard_ngram("abc", "xyz", 3), 0.0);
/// ```
pub fn jaccard_ngram(a: &str, b: &str, n: usize) -> f64 {
    let (inter, la, lb) = gram_overlap(a, b, n);
    if la == 0 && lb == 0 {
        return 1.0;
    }
    let union = la + lb - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Dice coefficient of the `n`-gram sets: `2|A ∩ B| / (|A| + |B|)`.
///
/// ```
/// use udi_similarity::dice_ngram;
/// assert_eq!(dice_ngram("night", "night", 2), 1.0);
/// assert!(dice_ngram("night", "nacht", 2) > 0.2);
/// ```
pub fn dice_ngram(a: &str, b: &str, n: usize) -> f64 {
    let (inter, la, lb) = gram_overlap(a, b, n);
    if la == 0 && lb == 0 {
        return 1.0;
    }
    let denom = la + lb;
    if denom == 0 {
        1.0
    } else {
        2.0 * inter as f64 / denom as f64
    }
}

/// [`Similarity`] adapter for [`jaccard_ngram`] with a fixed `n`.
#[derive(Debug, Clone, Copy)]
pub struct NGramJaccard {
    /// Gram size; `3` is the conventional choice for short labels.
    pub n: usize,
}

impl Default for NGramJaccard {
    fn default() -> Self {
        NGramJaccard { n: 3 }
    }
}

impl Similarity for NGramJaccard {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        jaccard_ngram(a, b, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gram_extraction_pads_ends() {
        let p = padded_chars("ab", 2);
        let g = gram_set(&p, 2);
        assert!(g.contains(&['#', 'a'][..]));
        assert!(g.contains(&['a', 'b'][..]));
        assert!(g.contains(&['b', '#'][..]));
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn zero_n_yields_empty_sets_and_full_similarity() {
        assert_eq!(jaccard_ngram("abc", "xyz", 0), 1.0);
    }

    #[test]
    fn empty_strings() {
        assert_eq!(jaccard_ngram("", "", 3), 1.0);
        // "" with n=3 still produces padding-only grams; a real string shares
        // none of its interior grams.
        assert!(jaccard_ngram("", "abcdef", 3) < 0.5);
    }

    #[test]
    fn dice_dominates_jaccard() {
        // Dice >= Jaccard always (equal iff sets identical or disjoint).
        let pairs = [("phone", "phones"), ("issn", "eissn"), ("car", "cat")];
        for (a, b) in pairs {
            assert!(dice_ngram(a, b, 2) >= jaccard_ngram(a, b, 2), "{a},{b}");
        }
    }

    proptest! {
        #[test]
        fn unit_interval_and_symmetry(a in "[a-z]{0,10}", b in "[a-z]{0,10}", n in 1usize..4) {
            let j = jaccard_ngram(&a, &b, n);
            let d = dice_ngram(&a, &b, n);
            prop_assert!((0.0..=1.0).contains(&j));
            prop_assert!((0.0..=1.0).contains(&d));
            prop_assert_eq!(j, jaccard_ngram(&b, &a, n));
            prop_assert_eq!(d, dice_ngram(&b, &a, n));
        }

        #[test]
        fn reflexive(a in "[a-z]{1,10}", n in 1usize..4) {
            prop_assert_eq!(jaccard_ngram(&a, &a, n), 1.0);
            prop_assert_eq!(dice_ngram(&a, &a, n), 1.0);
        }
    }
}

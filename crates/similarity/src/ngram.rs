//! Character n-gram set similarities (Jaccard and Dice).
//!
//! n-gram measures are robust to small word-order changes and are a common
//! alternative matcher in the schema-matching literature surveyed by Rahm &
//! Bernstein; UDI can be configured to use them in place of Jaro–Winkler.

use std::collections::HashSet;

use crate::Similarity;

/// Extract the set of character `n`-grams of a string, padded with `#`
/// sentinels so that prefixes/suffixes are represented.
///
/// For `n == 0` this returns the empty set.
fn ngrams(s: &str, n: usize) -> HashSet<Vec<char>> {
    let mut set = HashSet::new();
    if n == 0 {
        return set;
    }
    let mut padded: Vec<char> = Vec::with_capacity(s.chars().count() + 2 * (n - 1));
    padded.extend(std::iter::repeat_n('#', n - 1));
    padded.extend(s.chars());
    padded.extend(std::iter::repeat_n('#', n - 1));
    for w in padded.windows(n) {
        set.insert(w.to_vec());
    }
    set
}

/// Jaccard similarity of the `n`-gram sets: `|A ∩ B| / |A ∪ B|`.
///
/// ```
/// use udi_similarity::jaccard_ngram;
/// assert_eq!(jaccard_ngram("phone", "phone", 3), 1.0);
/// assert!(jaccard_ngram("phone", "phones", 3) >= 0.5);
/// assert_eq!(jaccard_ngram("abc", "xyz", 3), 0.0);
/// ```
pub fn jaccard_ngram(a: &str, b: &str, n: usize) -> f64 {
    let ga = ngrams(a, n);
    let gb = ngrams(b, n);
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    let inter = ga.intersection(&gb).count();
    let union = ga.len() + gb.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Dice coefficient of the `n`-gram sets: `2|A ∩ B| / (|A| + |B|)`.
///
/// ```
/// use udi_similarity::dice_ngram;
/// assert_eq!(dice_ngram("night", "night", 2), 1.0);
/// assert!(dice_ngram("night", "nacht", 2) > 0.2);
/// ```
pub fn dice_ngram(a: &str, b: &str, n: usize) -> f64 {
    let ga = ngrams(a, n);
    let gb = ngrams(b, n);
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    let inter = ga.intersection(&gb).count();
    let denom = ga.len() + gb.len();
    if denom == 0 {
        1.0
    } else {
        2.0 * inter as f64 / denom as f64
    }
}

/// [`Similarity`] adapter for [`jaccard_ngram`] with a fixed `n`.
#[derive(Debug, Clone, Copy)]
pub struct NGramJaccard {
    /// Gram size; `3` is the conventional choice for short labels.
    pub n: usize,
}

impl Default for NGramJaccard {
    fn default() -> Self {
        NGramJaccard { n: 3 }
    }
}

impl Similarity for NGramJaccard {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        jaccard_ngram(a, b, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gram_extraction_pads_ends() {
        let g = ngrams("ab", 2);
        assert!(g.contains(&vec!['#', 'a']));
        assert!(g.contains(&vec!['a', 'b']));
        assert!(g.contains(&vec!['b', '#']));
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn zero_n_yields_empty_sets_and_full_similarity() {
        assert_eq!(jaccard_ngram("abc", "xyz", 0), 1.0);
    }

    #[test]
    fn empty_strings() {
        assert_eq!(jaccard_ngram("", "", 3), 1.0);
        // "" with n=3 still produces padding-only grams; a real string shares
        // none of its interior grams.
        assert!(jaccard_ngram("", "abcdef", 3) < 0.5);
    }

    #[test]
    fn dice_dominates_jaccard() {
        // Dice >= Jaccard always (equal iff sets identical or disjoint).
        let pairs = [("phone", "phones"), ("issn", "eissn"), ("car", "cat")];
        for (a, b) in pairs {
            assert!(dice_ngram(a, b, 2) >= jaccard_ngram(a, b, 2), "{a},{b}");
        }
    }

    proptest! {
        #[test]
        fn unit_interval_and_symmetry(a in "[a-z]{0,10}", b in "[a-z]{0,10}", n in 1usize..4) {
            let j = jaccard_ngram(&a, &b, n);
            let d = dice_ngram(&a, &b, n);
            prop_assert!((0.0..=1.0).contains(&j));
            prop_assert!((0.0..=1.0).contains(&d));
            prop_assert_eq!(j, jaccard_ngram(&b, &a, n));
            prop_assert_eq!(d, dice_ngram(&b, &a, n));
        }

        #[test]
        fn reflexive(a in "[a-z]{1,10}", n in 1usize..4) {
            prop_assert_eq!(jaccard_ngram(&a, &a, n), 1.0);
            prop_assert_eq!(dice_ngram(&a, &a, n), 1.0);
        }
    }
}

#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! String similarity measures and attribute-name normalization for schema
//! matching.
//!
//! The SIGMOD'08 UDI system used the Java SecondString library's
//! Jaro–Winkler measure for pairwise attribute comparison. This crate is a
//! from-scratch Rust replacement offering the same measure plus several
//! alternatives (Levenshtein, n-gram Jaccard/Dice, and a Monge–Elkan style
//! token hybrid), all behind the [`Similarity`] trait so the mediated-schema
//! generator can treat the matcher as a black box — exactly the design point
//! the paper emphasizes ("our algorithm is designed so it can leverage any
//! existing technique").
//!
//! # Quickstart
//!
//! ```
//! use udi_similarity::{AttributeSimilarity, Similarity};
//!
//! let sim = AttributeSimilarity::default();
//! assert!(sim.similarity("phone-no", "phone") > 0.85);
//! assert!(sim.similarity("author(s)", "authors") > 0.85);
//! assert!(sim.similarity("price", "instructor") < 0.6);
//! ```

pub mod block;
pub mod edit;
pub mod jaro;
pub mod ngram;
pub mod normalize;
pub mod tfidf;
pub mod token;

pub use block::{BlockIndex, GramId};
pub use edit::{levenshtein, normalized_levenshtein, Levenshtein};
pub use jaro::{jaro, jaro_winkler, Jaro, JaroWinkler};
pub use ngram::{dice_ngram, jaccard_ngram, NGramJaccard};
pub use normalize::{normalize_name, tokenize_name};
pub use tfidf::SoftTfIdf;
pub use token::{monge_elkan, TokenHybrid};

/// A symmetric pairwise string-similarity measure on the `[0, 1]` scale.
///
/// `1.0` means the two strings denote the same real-world concept as far as
/// the measure can tell; `0.0` means no detectable relation. Implementations
/// must be symmetric (`s(a, b) == s(b, a)`) and reflexive (`s(a, a) == 1.0`
/// for non-empty `a`).
pub trait Similarity {
    /// Compute the similarity between `a` and `b` in `[0, 1]`.
    fn similarity(&self, a: &str, b: &str) -> f64;
}

impl<F> Similarity for F
where
    F: Fn(&str, &str) -> f64,
{
    fn similarity(&self, a: &str, b: &str) -> f64 {
        self(a, b)
    }
}

/// The default attribute-name matcher used by UDI.
///
/// Pipeline:
/// 1. normalize both names ([`normalize_name`]): lowercase, split camelCase
///    and punctuation, collapse separators;
/// 2. if the normalized forms are equal, return `1.0`;
/// 3. otherwise return the maximum of Jaro–Winkler on the joined normalized
///    strings and (when either side is multi-token) a symmetric Monge–Elkan
///    score with Jaro–Winkler as the inner measure.
///
/// The paper's matcher "considered only similarity of attribute names and did
/// not look at values in the corresponding columns"; this struct reproduces
/// that scope.
#[derive(Debug, Clone)]
pub struct AttributeSimilarity {
    /// Winkler prefix scaling factor (standard value 0.1).
    pub winkler_prefix_scale: f64,
    /// Whether to apply the Monge–Elkan token hybrid for multi-token names.
    pub use_token_hybrid: bool,
}

impl Default for AttributeSimilarity {
    fn default() -> Self {
        AttributeSimilarity {
            winkler_prefix_scale: 0.1,
            use_token_hybrid: true,
        }
    }
}

impl Similarity for AttributeSimilarity {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        let ta = tokenize_name(a);
        let tb = tokenize_name(b);
        if ta.is_empty() || tb.is_empty() {
            return if ta.is_empty() && tb.is_empty() {
                1.0
            } else {
                0.0
            };
        }
        let ja = ta.join(" ");
        let jb = tb.join(" ");
        if ja == jb {
            return 1.0;
        }
        let base = jaro_winkler(&ja.replace(' ', ""), &jb.replace(' ', ""));
        let mut best = base;
        if self.use_token_hybrid && (ta.len() > 1 || tb.len() > 1) {
            let me = monge_elkan(&ta, &tb, &|x: &str, y: &str| jaro_winkler(x, y));
            if me > best {
                best = me;
            }
        }
        best
    }
}

/// Clamp a floating similarity into `[0, 1]`, mapping NaN to `0`.
#[inline]
pub fn clamp01(x: f64) -> f64 {
    if x.is_nan() {
        0.0
    } else {
        x.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matcher_is_reflexive_on_variants() {
        let sim = AttributeSimilarity::default();
        assert_eq!(sim.similarity("Phone", "phone"), 1.0);
        assert_eq!(sim.similarity("home-address", "HomeAddress"), 1.0);
        assert_eq!(sim.similarity("", ""), 1.0);
    }

    #[test]
    fn default_matcher_scores_synonym_like_variants_high() {
        let sim = AttributeSimilarity::default();
        assert!(sim.similarity("author", "authors") > 0.9);
        assert!(sim.similarity("phone", "phone_no") > 0.85);
        assert!(sim.similarity("pages", "page") > 0.85);
    }

    #[test]
    fn default_matcher_scores_unrelated_low() {
        let sim = AttributeSimilarity::default();
        assert!(sim.similarity("year", "price") < 0.6);
        assert!(sim.similarity("make", "instructor") < 0.6);
    }

    #[test]
    fn empty_vs_nonempty_is_zero() {
        let sim = AttributeSimilarity::default();
        assert_eq!(sim.similarity("", "phone"), 0.0);
        assert_eq!(sim.similarity("phone", ""), 0.0);
    }

    #[test]
    fn multi_token_overlap_is_moderate_not_high() {
        let sim = AttributeSimilarity::default();
        // Shares a token but must stay below clustering threshold 0.85.
        let s = sim.similarity("email address", "home address");
        assert!(s > 0.3 && s < 0.85, "got {s}");
    }

    #[test]
    fn closure_implements_similarity() {
        let f = |a: &str, b: &str| if a == b { 1.0 } else { 0.0 };
        assert_eq!(f.similarity("x", "x"), 1.0);
        assert_eq!(f.similarity("x", "y"), 0.0);
    }

    #[test]
    fn clamp01_handles_nan_and_range() {
        assert_eq!(clamp01(f64::NAN), 0.0);
        assert_eq!(clamp01(-0.3), 0.0);
        assert_eq!(clamp01(1.7), 1.0);
        assert_eq!(clamp01(0.42), 0.42);
    }
}

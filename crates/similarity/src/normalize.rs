//! Attribute-name normalization.
//!
//! Web-table attribute labels arrive in wildly inconsistent shapes:
//! `HomePhone`, `home_phone`, `home-phone`, `Home Phone`, `home.phone`,
//! `phone (home)`. Normalization maps all of these to the same token
//! sequence `["home", "phone"]` before any similarity measure runs, which is
//! what lets a character-level measure like Jaro–Winkler concentrate on real
//! lexical differences.

/// Split an attribute label into lowercase word tokens.
///
/// Rules, applied in order:
/// - any non-alphanumeric character is a separator (`_`, `-`, `/`, `.`,
///   parentheses, whitespace, ...);
/// - a lower-to-upper case change splits camelCase (`homePhone` →
///   `home`, `phone`);
/// - an upper-to-lower change after a run of uppercase splits acronym
///   boundaries (`ISSNNumber` → `issn`, `number`);
/// - a digit/letter boundary splits (`phone2` → `phone`, `2`);
/// - all tokens are lowercased; empty tokens are dropped.
///
/// ```
/// use udi_similarity::tokenize_name;
/// assert_eq!(tokenize_name("HomePhone"), vec!["home", "phone"]);
/// assert_eq!(tokenize_name("pages/rec. no"), vec!["pages", "rec", "no"]);
/// assert_eq!(tokenize_name("eISSN"), vec!["e", "issn"]);
/// ```
pub fn tokenize_name(name: &str) -> Vec<String> {
    let mut tokens: Vec<String> = Vec::new();
    let mut cur = String::new();
    let mut prev: Option<char> = None;
    for c in name.chars() {
        if !c.is_alphanumeric() {
            flush(&mut tokens, &mut cur);
            prev = None;
            continue;
        }
        if let Some(p) = prev {
            let camel = p.is_lowercase() && c.is_uppercase();
            let acronym_end = p.is_uppercase() && c.is_lowercase() && cur.chars().count() > 1;
            let digit_boundary = p.is_ascii_digit() != c.is_ascii_digit();
            if camel || digit_boundary {
                flush(&mut tokens, &mut cur);
            } else if acronym_end {
                // `ISSNNumber`: cur currently holds "issnn"; the last char
                // belongs to the next word. `cur` is non-empty here (prev
                // was pushed), so the pop always yields a char.
                if let Some(last) = cur.pop() {
                    flush(&mut tokens, &mut cur);
                    cur.push(last);
                }
            }
        }
        cur.extend(c.to_lowercase());
        prev = Some(c);
    }
    flush(&mut tokens, &mut cur);
    tokens
}

fn flush(tokens: &mut Vec<String>, cur: &mut String) {
    if !cur.is_empty() {
        tokens.push(std::mem::take(cur));
    }
}

/// Normalize a name to a single canonical string: tokens joined by one space.
///
/// ```
/// use udi_similarity::normalize_name;
/// assert_eq!(normalize_name("Home-Phone_no"), "home phone no");
/// assert_eq!(normalize_name("  author(s) "), "author s");
/// ```
pub fn normalize_name(name: &str) -> String {
    tokenize_name(name).join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_snake_kebab_space_dot() {
        for raw in [
            "home_phone",
            "home-phone",
            "home phone",
            "home.phone",
            "home/phone",
        ] {
            assert_eq!(tokenize_name(raw), vec!["home", "phone"], "input {raw}");
        }
    }

    #[test]
    fn splits_camel_case() {
        assert_eq!(tokenize_name("homePhone"), vec!["home", "phone"]);
        assert_eq!(tokenize_name("HomePhone"), vec!["home", "phone"]);
    }

    #[test]
    fn splits_acronym_boundaries() {
        assert_eq!(tokenize_name("ISSNNumber"), vec!["issn", "number"]);
        assert_eq!(tokenize_name("ISSN"), vec!["issn"]);
    }

    #[test]
    fn splits_digit_boundaries() {
        assert_eq!(tokenize_name("phone2"), vec!["phone", "2"]);
        assert_eq!(tokenize_name("2ndAuthor"), vec!["2", "nd", "author"]);
    }

    #[test]
    fn drops_punctuation_only_input() {
        assert!(tokenize_name("--- ()").is_empty());
        assert_eq!(normalize_name("---"), "");
    }

    #[test]
    fn preserves_single_word() {
        assert_eq!(tokenize_name("phone"), vec!["phone"]);
        assert_eq!(normalize_name("Phone"), "phone");
    }

    #[test]
    fn handles_unicode_letters() {
        assert_eq!(tokenize_name("Tél_Année"), vec!["tél", "année"]);
    }

    #[test]
    fn normalization_is_idempotent() {
        for raw in ["HomePhone", "pages/rec. no", "eISSN", "author(s)"] {
            let once = normalize_name(raw);
            assert_eq!(normalize_name(&once), once, "input {raw}");
        }
    }
}

#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `udi-serve`: the multi-tenant query server over snapshot-swapped
//! [`UdiSystem`](udi_core::UdiSystem)s.
//!
//! The paper's setting is a *service*: many tenants, each with their own
//! growing source corpus, querying a mediated schema that refreshes as
//! sources and feedback arrive. This crate turns the library into that
//! service without taking any dependencies:
//!
//! - **Protocol** ([`proto`], [`json`]): line-delimited JSON over TCP.
//!   One request line in, one response line out; answers render through
//!   the same deterministic renderer the identity tests run over library
//!   results, so a server answer is byte-identical to the library's.
//! - **State** ([`state`]): immutable per-tenant snapshot records,
//!   replaced wholesale on mutation so reads stay lock-free.
//!   Readers load an `Arc` and never block; mutations clone the snapshot,
//!   re-run setup off to the side, and publish atomically
//!   (clone-mutate-publish). [`execute_answer`] is the certified
//!   deterministic entry point.
//! - **Server** ([`server`]): thread-per-core blocking workers behind a
//!   bounded admission queue; when the queue fills, readers shed load at
//!   the edge with an `overloaded` response instead of buffering latency.
//!
//! Observability: every request opens a `serve.request` span whose id
//! parents the library's `query.answer` / `query.source` spans, so a
//! request's full fan-out shows up as one trace tree. Counters
//! (`serve.requests`, `serve.shed`, `serve.refresh`, ...) surface through
//! the `stats` op.
//!
//! # Quickstart
//!
//! ```
//! use udi_core::{UdiConfig, UdiSystem};
//! use udi_serve::{ServeState, Server, ServerConfig};
//! use udi_store::{Catalog, Table};
//!
//! let mut catalog = Catalog::new();
//! let mut t = Table::new("s1", ["name", "phone"]);
//! t.push_raw_row(["Alice", "123-4567"]).unwrap();
//! catalog.add_source(t).unwrap();
//! let system = UdiSystem::setup(catalog, UdiConfig::default()).unwrap();
//!
//! let state = ServeState::new();
//! state.register_tenant("acme", system);
//! let server = Server::start(state, ServerConfig::default()).unwrap();
//! // Clients connect to server.addr() and write lines like
//! //   {"op":"answer","tenant":"acme","query":"SELECT name FROM people"}
//! drop(server); // shuts down listener and workers
//! ```

pub mod json;
pub mod proto;
pub mod server;
pub mod state;

pub use json::{Json, ParseJsonError};
pub use proto::{
    error_response, ok_response, parse_request, render_answers, shed_response, AnswerPath, Op,
    Request, RequestError,
};
pub use server::{handle_line, Server, ServerConfig};
pub use state::{execute_answer, handle, stats_response, ServeState, Tenant};

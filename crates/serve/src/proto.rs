//! The line-delimited JSON wire protocol.
//!
//! Each request is one JSON object on one line; each response is one JSON
//! object on one line. Requests name an `op` (`prepare`, `answer`,
//! `add_source`, `apply_feedback`, `stats`) and a `tenant`; `answer`
//! additionally picks one of the five query paths and carries the SQL text.
//! An optional client-chosen `id` is echoed on the response so clients can
//! pipeline requests over one connection.
//!
//! Responses for `answer` embed the [`AnswerSet`] through [`render_answers`],
//! which preserves the library's per-source catalog order and renders
//! probabilities with shortest-round-trip formatting — the same renderer the
//! byte-identity tests run over the library result, so "server answer ==
//! library answer" is a string equality.

use std::collections::BTreeMap;

use udi_query::AnswerSet;
use udi_store::{Table, Value};

use crate::json::{parse, Json, ParseJsonError};

/// Which of the five answer paths an `answer` request runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnswerPath {
    /// Consolidated mediated schema (`UdiSystem::answer`).
    Consolidated,
    /// Full probabilistic mediated schema (`answer_with_pmed`).
    Pmed,
    /// Top-1 mapping only (`answer_top_mapping`).
    TopMapping,
    /// By-tuple semantics (`answer_by_tuple`).
    ByTuple,
    /// Aggregate queries (`answer_aggregate`).
    Aggregate,
}

impl AnswerPath {
    /// Parses the wire name of a path.
    pub fn from_name(name: &str) -> Option<AnswerPath> {
        match name {
            "consolidated" => Some(AnswerPath::Consolidated),
            "pmed" => Some(AnswerPath::Pmed),
            "top_mapping" => Some(AnswerPath::TopMapping),
            "by_tuple" => Some(AnswerPath::ByTuple),
            "aggregate" => Some(AnswerPath::Aggregate),
            _ => None,
        }
    }

    /// The wire name of this path.
    pub fn name(self) -> &'static str {
        match self {
            AnswerPath::Consolidated => "consolidated",
            AnswerPath::Pmed => "pmed",
            AnswerPath::TopMapping => "top_mapping",
            AnswerPath::ByTuple => "by_tuple",
            AnswerPath::Aggregate => "aggregate",
        }
    }

    /// All five paths, in wire-name order used by benches and tests.
    pub const ALL: [AnswerPath; 5] = [
        AnswerPath::Consolidated,
        AnswerPath::Pmed,
        AnswerPath::TopMapping,
        AnswerPath::ByTuple,
        AnswerPath::Aggregate,
    ];
}

/// The operation a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Compile and cache the plan for a query without executing it.
    Prepare,
    /// Execute a query on one of the five paths.
    Answer,
    /// Register a new source table and refresh the tenant's snapshot.
    AddSource,
    /// Fold attribute-pair judgments in and refresh the tenant's snapshot.
    ApplyFeedback,
    /// Report server counters and per-tenant snapshot facts.
    Stats,
}

impl Op {
    fn from_name(name: &str) -> Option<Op> {
        match name {
            "prepare" => Some(Op::Prepare),
            "answer" => Some(Op::Answer),
            "add_source" => Some(Op::AddSource),
            "apply_feedback" => Some(Op::ApplyFeedback),
            "stats" => Some(Op::Stats),
            _ => None,
        }
    }

    /// The wire name of this operation.
    pub fn name(self) -> &'static str {
        match self {
            Op::Prepare => "prepare",
            Op::Answer => "answer",
            Op::AddSource => "add_source",
            Op::ApplyFeedback => "apply_feedback",
            Op::Stats => "stats",
        }
    }
}

/// One parsed request line.
#[derive(Debug, Clone)]
pub struct Request {
    /// The operation to perform.
    pub op: Op,
    /// Which tenant's snapshot to run against.
    pub tenant: String,
    /// Client-chosen correlation id, echoed on the response.
    pub id: Option<i64>,
    /// Answer path for `answer` requests (default `consolidated`).
    pub path: AnswerPath,
    /// SQL text for `prepare` / `answer`.
    pub query: Option<String>,
    /// Table payload for `add_source`.
    pub table: Option<Table>,
    /// Same-concept judgments for `apply_feedback`.
    pub same: Vec<(String, String)>,
    /// Different-concept judgments for `apply_feedback`.
    pub different: Vec<(String, String)>,
}

/// Why a request line was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestError {
    /// The line is not valid JSON.
    Json(ParseJsonError),
    /// The line parsed but is not a JSON object.
    NotAnObject,
    /// A required field is absent.
    Missing(&'static str),
    /// A field is present but malformed; the string explains how.
    Bad(&'static str, String),
    /// The `op` field names no known operation.
    UnknownOp(String),
    /// The `path` field names no known answer path.
    UnknownPath(String),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Json(e) => write!(f, "invalid json: {e}"),
            RequestError::NotAnObject => write!(f, "request must be a json object"),
            RequestError::Missing(field) => write!(f, "missing field `{field}`"),
            RequestError::Bad(field, why) => write!(f, "bad field `{field}`: {why}"),
            RequestError::UnknownOp(op) => write!(f, "unknown op `{op}`"),
            RequestError::UnknownPath(p) => write!(f, "unknown path `{p}`"),
        }
    }
}

impl std::error::Error for RequestError {}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let value = parse(line).map_err(RequestError::Json)?;
    let Json::Obj(_) = value else {
        return Err(RequestError::NotAnObject);
    };
    let op_name = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or(RequestError::Missing("op"))?;
    let op = Op::from_name(op_name).ok_or_else(|| RequestError::UnknownOp(op_name.to_owned()))?;
    let tenant = value
        .get("tenant")
        .and_then(Json::as_str)
        .ok_or(RequestError::Missing("tenant"))?
        .to_owned();
    let id = value.get("id").and_then(Json::as_i64);
    let path = match value.get("path").and_then(Json::as_str) {
        Some(name) => {
            AnswerPath::from_name(name).ok_or_else(|| RequestError::UnknownPath(name.to_owned()))?
        }
        None => AnswerPath::Consolidated,
    };
    let query = value.get("query").and_then(Json::as_str).map(str::to_owned);
    if matches!(op, Op::Prepare | Op::Answer) && query.is_none() {
        return Err(RequestError::Missing("query"));
    }
    let table = match op {
        Op::AddSource => Some(table_from_json(
            value.get("table").ok_or(RequestError::Missing("table"))?,
        )?),
        _ => None,
    };
    let (same, different) = if op == Op::ApplyFeedback {
        let same = pairs_from_json(value.get("same"), "same")?;
        let different = pairs_from_json(value.get("different"), "different")?;
        if same.is_empty() && different.is_empty() {
            return Err(RequestError::Missing("same/different"));
        }
        (same, different)
    } else {
        (Vec::new(), Vec::new())
    };
    Ok(Request {
        op,
        tenant,
        id,
        path,
        query,
        table,
        same,
        different,
    })
}

/// Decodes `{"name": ..., "attrs": [...], "rows": [[...]]}` into a [`Table`].
fn table_from_json(value: &Json) -> Result<Table, RequestError> {
    let name = value
        .get("name")
        .and_then(Json::as_str)
        .ok_or(RequestError::Missing("table.name"))?;
    let attrs = match value.get("attrs") {
        Some(Json::Arr(items)) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                match item.as_str() {
                    Some(s) => out.push(s.to_owned()),
                    None => {
                        return Err(RequestError::Bad(
                            "table.attrs",
                            "attributes must be strings".to_owned(),
                        ))
                    }
                }
            }
            out
        }
        _ => return Err(RequestError::Missing("table.attrs")),
    };
    let mut table =
        Table::try_new(name, attrs).map_err(|e| RequestError::Bad("table.attrs", e.to_string()))?;
    let rows = match value.get("rows") {
        Some(Json::Arr(rows)) => rows,
        None => return Ok(table),
        _ => {
            return Err(RequestError::Bad(
                "table.rows",
                "rows must be an array of arrays".to_owned(),
            ))
        }
    };
    for row in rows {
        let Json::Arr(cells) = row else {
            return Err(RequestError::Bad(
                "table.rows",
                "each row must be an array".to_owned(),
            ));
        };
        let mut out = Vec::with_capacity(cells.len());
        for cell in cells {
            out.push(json_to_value(cell).ok_or_else(|| {
                RequestError::Bad(
                    "table.rows",
                    "cells must be null, numbers, or strings".to_owned(),
                )
            })?);
        }
        table
            .push_row(out)
            .map_err(|e| RequestError::Bad("table.rows", e.to_string()))?;
    }
    Ok(table)
}

fn pairs_from_json(
    value: Option<&Json>,
    field: &'static str,
) -> Result<Vec<(String, String)>, RequestError> {
    let items = match value {
        None => return Ok(Vec::new()),
        Some(Json::Arr(items)) => items,
        Some(_) => {
            return Err(RequestError::Bad(
                field,
                "must be an array of [a, b] string pairs".to_owned(),
            ))
        }
    };
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        match item {
            Json::Arr(pair) => match (
                pair.first().and_then(Json::as_str),
                pair.get(1).and_then(Json::as_str),
            ) {
                (Some(a), Some(b)) if pair.len() == 2 => out.push((a.to_owned(), b.to_owned())),
                _ => {
                    return Err(RequestError::Bad(
                        field,
                        "each entry must be an [a, b] string pair".to_owned(),
                    ))
                }
            },
            _ => {
                return Err(RequestError::Bad(
                    field,
                    "each entry must be an [a, b] string pair".to_owned(),
                ))
            }
        }
    }
    Ok(out)
}

/// Maps a JSON cell to a store [`Value`]. Strings stay text verbatim —
/// typed JSON is already past the CSV-importer stage, so no re-parsing.
fn json_to_value(cell: &Json) -> Option<Value> {
    match cell {
        Json::Null => Some(Value::Null),
        Json::Int(i) => Some(Value::Int(*i)),
        Json::Float(f) => Some(Value::float(*f)),
        Json::Str(s) => Some(Value::text(s.clone())),
        Json::Bool(_) | Json::Arr(_) | Json::Obj(_) => None,
    }
}

/// Renders a store value into its JSON answer form.
pub fn value_to_json(value: &Value) -> Json {
    match value {
        Value::Null => Json::Null,
        Value::Int(i) => Json::Int(*i),
        Value::Float(f) => Json::Float(*f),
        Value::Text(s) => Json::Str(s.clone()),
    }
}

/// Renders an [`AnswerSet`] as the wire `answers` array, preserving the
/// library's per-source order and tuple order exactly:
/// `[{"source": id, "tuples": [{"values": [...], "p": prob}, ...]}, ...]`.
pub fn render_answers(set: &AnswerSet) -> Json {
    let sources = set
        .by_source()
        .iter()
        .map(|(sid, tuples)| {
            let rendered = tuples
                .iter()
                .map(|t| {
                    let mut obj = BTreeMap::new();
                    obj.insert(
                        "values".to_owned(),
                        Json::Arr(t.values.iter().map(value_to_json).collect()),
                    );
                    obj.insert("p".to_owned(), Json::Float(t.probability));
                    Json::Obj(obj)
                })
                .collect();
            let mut obj = BTreeMap::new();
            obj.insert("source".to_owned(), Json::Int(i64::from(sid.0)));
            obj.insert("tuples".to_owned(), Json::Arr(rendered));
            Json::Obj(obj)
        })
        .collect();
    Json::Arr(sources)
}

/// Assembles a success response. `extra` fields merge in after the
/// standard `id` / `ok` / `generation` keys.
pub fn ok_response(id: Option<i64>, generation: u64, extra: BTreeMap<String, Json>) -> Json {
    let mut obj = extra;
    if let Some(id) = id {
        obj.insert("id".to_owned(), Json::Int(id));
    }
    obj.insert("ok".to_owned(), Json::Bool(true));
    obj.insert(
        "generation".to_owned(),
        Json::Int(i64::try_from(generation).unwrap_or(i64::MAX)),
    );
    Json::Obj(obj)
}

/// Assembles an error response.
pub fn error_response(id: Option<i64>, error: &str) -> Json {
    let mut obj = BTreeMap::new();
    if let Some(id) = id {
        obj.insert("id".to_owned(), Json::Int(id));
    }
    obj.insert("ok".to_owned(), Json::Bool(false));
    obj.insert("error".to_owned(), Json::Str(error.to_owned()));
    Json::Obj(obj)
}

/// The admission-control response written when the job queue is full.
/// Clients treat `shed: true` as "back off and retry".
pub fn shed_response() -> Json {
    let mut obj = BTreeMap::new();
    obj.insert("ok".to_owned(), Json::Bool(false));
    obj.insert("error".to_owned(), Json::Str("overloaded".to_owned()));
    obj.insert("shed".to_owned(), Json::Bool(true));
    Json::Obj(obj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_an_answer_request() {
        let r = parse_request(
            r#"{"op":"answer","tenant":"t0","id":7,"path":"pmed","query":"SELECT name FROM people"}"#,
        )
        .unwrap();
        assert_eq!(r.op, Op::Answer);
        assert_eq!(r.tenant, "t0");
        assert_eq!(r.id, Some(7));
        assert_eq!(r.path, AnswerPath::Pmed);
        assert_eq!(r.query.as_deref(), Some("SELECT name FROM people"));
    }

    #[test]
    fn path_defaults_to_consolidated() {
        let r = parse_request(r#"{"op":"answer","tenant":"t","query":"SELECT a FROM s"}"#).unwrap();
        assert_eq!(r.path, AnswerPath::Consolidated);
    }

    #[test]
    fn rejects_missing_and_unknown_fields() {
        assert_eq!(
            parse_request(r#"{"tenant":"t"}"#).unwrap_err(),
            RequestError::Missing("op")
        );
        assert_eq!(
            parse_request(r#"{"op":"fly","tenant":"t"}"#).unwrap_err(),
            RequestError::UnknownOp("fly".to_owned())
        );
        assert_eq!(
            parse_request(r#"{"op":"answer","tenant":"t","path":"sideways","query":"q"}"#)
                .unwrap_err(),
            RequestError::UnknownPath("sideways".to_owned())
        );
        assert_eq!(
            parse_request(r#"{"op":"answer","tenant":"t"}"#).unwrap_err(),
            RequestError::Missing("query")
        );
        assert!(parse_request("not json").is_err());
        assert_eq!(
            parse_request("[1,2]").unwrap_err(),
            RequestError::NotAnObject
        );
    }

    #[test]
    fn decodes_an_add_source_table() {
        let r = parse_request(
            r#"{"op":"add_source","tenant":"t","table":{"name":"cars","attrs":["make","year"],"rows":[["honda",2004],["ford",null]]}}"#,
        )
        .unwrap();
        let t = r.table.unwrap();
        assert_eq!(t.name(), "cars");
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.cell(0, "make"), Some(&Value::text("honda")));
        assert_eq!(t.cell(0, "year"), Some(&Value::Int(2004)));
        assert_eq!(t.cell(1, "year"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_tables() {
        for (line, field) in [
            (r#"{"op":"add_source","tenant":"t"}"#, "table"),
            (
                r#"{"op":"add_source","tenant":"t","table":{"attrs":["a"]}}"#,
                "table.name",
            ),
            (
                r#"{"op":"add_source","tenant":"t","table":{"name":"s"}}"#,
                "table.attrs",
            ),
        ] {
            match parse_request(line) {
                Err(RequestError::Missing(f)) => assert_eq!(f, field),
                other => panic!("expected Missing({field}), got {other:?}"),
            }
        }
        let bad_row = parse_request(
            r#"{"op":"add_source","tenant":"t","table":{"name":"s","attrs":["a"],"rows":[[1,2]]}}"#,
        );
        assert!(matches!(bad_row, Err(RequestError::Bad("table.rows", _))));
        let bad_cell = parse_request(
            r#"{"op":"add_source","tenant":"t","table":{"name":"s","attrs":["a"],"rows":[[true]]}}"#,
        );
        assert!(matches!(bad_cell, Err(RequestError::Bad("table.rows", _))));
    }

    #[test]
    fn decodes_feedback_pairs() {
        let r = parse_request(
            r#"{"op":"apply_feedback","tenant":"t","same":[["name","full_name"]],"different":[["phone","fax"]]}"#,
        )
        .unwrap();
        assert_eq!(r.same, vec![("name".to_owned(), "full_name".to_owned())]);
        assert_eq!(r.different, vec![("phone".to_owned(), "fax".to_owned())]);
        assert_eq!(
            parse_request(r#"{"op":"apply_feedback","tenant":"t"}"#).unwrap_err(),
            RequestError::Missing("same/different")
        );
    }

    #[test]
    fn renders_answers_in_catalog_order() {
        use udi_query::AnswerTuple;
        use udi_store::SourceId;
        let mut set = AnswerSet::new();
        set.add_source(
            SourceId(3),
            vec![AnswerTuple {
                values: vec![Value::text("a"), Value::Int(1)],
                probability: 0.5,
            }],
        );
        set.add_source(
            SourceId(1),
            vec![AnswerTuple {
                values: vec![Value::Null],
                probability: 1.0,
            }],
        );
        assert_eq!(
            render_answers(&set).render(),
            r#"[{"source":3,"tuples":[{"p":0.5,"values":["a",1]}]},{"source":1,"tuples":[{"p":1.0,"values":[null]}]}]"#
        );
    }

    #[test]
    fn response_shapes() {
        assert_eq!(
            ok_response(Some(4), 2, BTreeMap::new()).render(),
            r#"{"generation":2,"id":4,"ok":true}"#
        );
        assert_eq!(
            error_response(None, "boom").render(),
            r#"{"error":"boom","ok":false}"#
        );
        assert_eq!(
            shed_response().render(),
            r#"{"error":"overloaded","ok":false,"shed":true}"#
        );
    }
}

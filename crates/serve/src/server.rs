//! The TCP front end: thread-per-core blocking workers behind a bounded
//! admission queue.
//!
//! One detached reader thread per connection parses lines off the socket
//! and offers them to a bounded `JobQueue`. A fixed pool of worker
//! threads (default: one per core) drains the queue, dispatches through
//! [`crate::state::handle`], and writes the response line back through the
//! connection's shared writer. When the queue is full the *reader* writes
//! the load-shed response directly — admission control rejects at the edge
//! instead of letting latency collapse under unbounded buffering.
//!
//! Mutations (`add_source`, `apply_feedback`) never run on the worker
//! pool: each gets a detached thread so a multi-second snapshot rebuild
//! cannot sit ahead of reads in the queue. Readers keep answering on the
//! old snapshot for the whole rebuild and only ever see atomic publishes.
//!
//! No clocks are read here: latency is the client's to measure (the bench
//! harness owns the stopwatch), and the serving path stays inside the
//! workspace's no-raw-time perimeter.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::{Builder, JoinHandle};

use crate::proto::{error_response, parse_request, shed_response};
use crate::state::{handle, ServeState};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address. Port 0 picks a free port; read it back via
    /// [`Server::addr`].
    pub addr: String,
    /// Worker threads. `0` means one per available core.
    pub workers: usize,
    /// Admission-queue capacity; requests beyond it are shed.
    pub queue_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 0,
            queue_cap: 256,
        }
    }
}

/// One admitted request: the raw line plus the connection's shared writer.
struct Job {
    line: String,
    out: Arc<Mutex<TcpStream>>,
}

/// Outcome of offering a job to the queue.
enum Push {
    Queued,
    Full(Job),
    Closed,
}

/// Bounded MPMC queue: `Mutex<VecDeque>` + `Condvar`, capacity-checked at
/// push so admission control happens before any worker is involved.
struct JobQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    cap: usize,
}

struct QueueInner {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    fn new(cap: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn try_push(&self, job: Job) -> Push {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.closed {
            return Push::Closed;
        }
        if inner.jobs.len() >= self.cap {
            return Push::Full(job);
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Push::Queued
    }

    /// Blocks until a job is available; `None` once sealed and drained.
    // Named `next_job` (not `pop`) for the same aliasing reason as `seal`:
    // `.pop()` is everywhere in string/vec code, and this method blocks.
    fn next_job(&self) -> Option<Job> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    // Named `seal` (not `close`) so the workspace call graph's
    // method-name over-approximation cannot alias it with the ubiquitous
    // `udi_obs::Span::close` — the hot-path certificate would otherwise
    // pull the whole shutdown path into every span-using summary.
    fn seal(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.closed = true;
        drop(inner);
        self.ready.notify_all();
    }
}

/// A running server. Dropping it shuts the listener and workers down.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<JobQueue>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for JobQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobQueue").field("cap", &self.cap).finish()
    }
}

impl Server {
    /// Binds, spawns the accept loop and the worker pool, and returns.
    pub fn start(state: ServeState, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let queue = Arc::new(JobQueue::new(config.queue_cap));
        let stop = Arc::new(AtomicBool::new(false));

        let worker_count = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(2)
        } else {
            config.workers
        };
        let mut workers = Vec::with_capacity(worker_count);
        for i in 0..worker_count {
            let queue = queue.clone();
            let state = state.clone();
            let handle = Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&state, &queue))?;
            workers.push(handle);
        }

        let accept = {
            let queue = queue.clone();
            let state = state.clone();
            let stop = stop.clone();
            Builder::new()
                .name("serve-accept".to_owned())
                .spawn(move || accept_loop(&listener, &state, &queue, &stop))?
        };

        Ok(Server {
            addr,
            stop,
            queue,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the queue, and joins the worker pool.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.queue.seal();
        // Unblock the accept loop with a throwaway connection.
        TcpStream::connect(self.addr).ok();
        if let Some(accept) = self.accept.take() {
            accept.join().ok();
        }
        for worker in self.workers.drain(..) {
            worker.join().ok();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    state: &ServeState,
    queue: &Arc<JobQueue>,
    stop: &Arc<AtomicBool>,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        state.recorder().count("serve.connections", 1);
        let state = state.clone();
        let queue = queue.clone();
        // Reader threads are detached: they exit when the client hangs up
        // or the queue closes, so shutdown need not chase them.
        Builder::new()
            .name("serve-conn".to_owned())
            .spawn(move || connection_loop(stream, &state, &queue))
            .ok();
    }
}

fn connection_loop(stream: TcpStream, state: &ServeState, queue: &Arc<JobQueue>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let out = Arc::new(Mutex::new(write_half));
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match queue.try_push(Job {
            line,
            out: out.clone(),
        }) {
            Push::Queued => {}
            Push::Full(job) => {
                // Admission control: reject at the edge, synchronously.
                state.recorder().count("serve.shed", 1);
                if write_line(&job.out, &shed_response().render()).is_err() {
                    break;
                }
            }
            Push::Closed => break,
        }
    }
}

fn worker_loop(state: &ServeState, queue: &Arc<JobQueue>) {
    while let Some(job) = queue.next_job() {
        match parse_request(&job.line) {
            // Mutations rebuild a whole snapshot — minutes of CPU at large
            // corpus sizes. Running them on the worker pool would put a
            // refresh ahead of reads in the queue (head-of-line blocking),
            // so they get their own detached thread; the tenant's mutate
            // lock already serializes concurrent rebuilds.
            Ok(req)
                if matches!(
                    req.op,
                    crate::proto::Op::AddSource | crate::proto::Op::ApplyFeedback
                ) =>
            {
                let owned = state.clone();
                let spawned = Builder::new()
                    .name("serve-mutate".to_owned())
                    .spawn(move || {
                        let response = handle(&owned, &req).render();
                        if write_line(&job.out, &response).is_err() {
                            owned.recorder().count("serve.write_error", 1);
                        }
                    });
                if spawned.is_err() {
                    state.recorder().count("serve.write_error", 1);
                }
            }
            Ok(req) => {
                let response = handle(state, &req).render();
                if write_line(&job.out, &response).is_err() {
                    state.recorder().count("serve.write_error", 1);
                }
            }
            Err(e) => {
                state.recorder().count("serve.bad_request", 1);
                let response = error_response(None, &e.to_string()).render();
                if write_line(&job.out, &response).is_err() {
                    state.recorder().count("serve.write_error", 1);
                }
            }
        }
    }
}

/// Parses and dispatches one request line, returning the response line
/// (without the trailing newline). Malformed lines become error responses
/// rather than dropped connections, so one bad client request cannot
/// poison a pipelined stream.
pub fn handle_line(state: &ServeState, line: &str) -> String {
    match parse_request(line) {
        Ok(req) => handle(state, &req).render(),
        Err(e) => {
            state.recorder().count("serve.bad_request", 1);
            error_response(None, &e.to_string()).render()
        }
    }
}

fn write_line(out: &Arc<Mutex<TcpStream>>, line: &str) -> io::Result<()> {
    let mut stream = out.lock().unwrap_or_else(PoisonError::into_inner);
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn tiny_state() -> ServeState {
        use udi_core::{UdiConfig, UdiSystem};
        use udi_store::{Catalog, Table};
        let mut catalog = Catalog::new();
        let mut t = Table::new("s1", ["name", "phone"]);
        t.push_raw_row(["Alice", "123"]).unwrap();
        catalog.add_source(t).unwrap();
        let state = ServeState::new();
        state.register_tenant(
            "t0",
            UdiSystem::setup(catalog, UdiConfig::default()).unwrap(),
        );
        state
    }

    fn roundtrip(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
        let mut stream = TcpStream::connect(addr).unwrap();
        for line in lines {
            stream.write_all(line.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
        }
        stream.flush().unwrap();
        let reader = BufReader::new(stream);
        reader
            .lines()
            .take(lines.len())
            .map(|l| l.unwrap())
            .collect()
    }

    #[test]
    fn serves_answers_over_tcp() {
        let state = tiny_state();
        let server = Server::start(state.clone(), ServerConfig::default()).unwrap();
        let replies = roundtrip(
            server.addr(),
            &[
                r#"{"op":"answer","tenant":"t0","id":1,"query":"SELECT name FROM people WHERE name = 'Alice'"}"#,
                r#"{"op":"stats","tenant":"t0","id":2}"#,
            ],
        );
        assert_eq!(replies.len(), 2);
        assert!(replies[0].contains(r#""ok":true"#), "{}", replies[0]);
        assert!(replies[0].contains(r#""id":1"#));
        assert!(replies[1].contains(r#""id":2"#));
    }

    #[test]
    fn malformed_lines_get_error_responses_not_hangups() {
        let state = tiny_state();
        let server = Server::start(state.clone(), ServerConfig::default()).unwrap();
        let replies = roundtrip(
            server.addr(),
            &[
                "this is not json",
                r#"{"op":"answer","tenant":"t0","id":9,"query":"SELECT name FROM people"}"#,
            ],
        );
        assert!(replies[0].contains(r#""ok":false"#));
        assert!(replies[1].contains(r#""id":9"#), "{}", replies[1]);
        assert!(state.counters().get("serve.bad_request") >= 1);
    }

    #[test]
    fn shutdown_is_idempotent_and_joins_cleanly() {
        let state = tiny_state();
        let mut server = Server::start(state, ServerConfig::default()).unwrap();
        server.shutdown();
        server.shutdown();
    }
}

//! Multi-tenant server state and request dispatch.
//!
//! Each tenant is an **immutable snapshot record**: an `Arc<UdiSystem>`
//! plus the generation it was published under. Readers
//! [`Tenant::snapshot`] the `Arc` — a plain reference-count bump, no lock
//! anywhere — and answer against it without ever blocking on a refresh.
//! Mutations go through [`ServeState::mutate_tenant`]: writers serialize
//! on the tenant's gate (shared across record replacements), clone the
//! current snapshot, apply the change off to the side (the expensive part
//! — re-running setup — happens while readers keep using the old
//! snapshot), and publish by replacing the whole `Arc<Tenant>` record in
//! the tenant map. A reader therefore always sees a complete generation,
//! old or new, never a torn one — and the read path is certified
//! **lock-free + io-free + spawn-free** by udi-audit's `hot-path-cert`
//! pass (`audit.toml [effects]`), not just by convention.
//!
//! [`handle`] is the dispatcher: it opens a `serve.request` span whose id is
//! the per-request trace id, and [`execute_answer`] parents the library's
//! `query.answer` span (and, through it, the per-source `query.source`
//! spans) onto that id — one request, one connected trace tree.
//! [`execute_answer`] is also the crate's certified-deterministic entry
//! point (`audit.toml [determinism]`): everything reachable from it sticks
//! to order-stable containers and injected clocks. The dispatcher itself
//! is deliberately *not* a certified entry — the tenant-map lookup takes
//! the map lock; everything after the lookup routes through the certified
//! helpers ([`execute_answer`], [`stats_response`], [`Tenant::snapshot`]).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

use udi_core::{Feedback, UdiSystem};
use udi_obs::{CounterSink, Recorder};

use crate::json::Json;
use crate::proto::{error_response, ok_response, render_answers, AnswerPath, Op, Request};

/// One tenant, as an immutable published record.
///
/// A `Tenant` is never mutated in place: [`ServeState::mutate_tenant`]
/// builds a successor record and swaps the `Arc<Tenant>` in the tenant
/// map. That is what makes [`snapshot`](Tenant::snapshot) lock-free — a
/// reader holding any record (current or superseded) just bumps the
/// `Arc`'s reference count. The `gate` is shared by every record in a
/// tenant's lineage and serializes writers only; no read path touches it.
#[derive(Debug)]
pub struct Tenant {
    system: Arc<UdiSystem>,
    generation: u64,
    gate: Arc<Mutex<()>>,
}

impl Tenant {
    fn first(system: UdiSystem) -> Tenant {
        Tenant {
            system: Arc::new(system),
            generation: 1,
            gate: Arc::new(Mutex::new(())),
        }
    }

    /// The tenant's current system snapshot — a reference-count bump,
    /// nothing else. Certified lock-free + io-free + spawn-free
    /// (`audit.toml [effects]`).
    pub fn snapshot(&self) -> Arc<UdiSystem> {
        Arc::clone(&self.system)
    }

    /// The publish generation of this record: 1 for a fresh registration,
    /// +1 per successful [`ServeState::mutate_tenant`]. Distinct from the
    /// engine generation, which counts setup refreshes.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// Shared server state: the tenant map plus the serving-layer recorder.
#[derive(Debug, Clone)]
pub struct ServeState {
    tenants: Arc<Mutex<BTreeMap<String, Arc<Tenant>>>>,
    counters: Arc<CounterSink>,
    recorder: Recorder,
}

impl Default for ServeState {
    fn default() -> ServeState {
        ServeState::new()
    }
}

impl ServeState {
    /// Fresh state with a counter-backed recorder.
    pub fn new() -> ServeState {
        let counters = Arc::new(CounterSink::new());
        let recorder = Recorder::new(counters.clone());
        ServeState {
            tenants: Arc::new(Mutex::new(BTreeMap::new())),
            counters,
            recorder,
        }
    }

    /// Registers (or replaces) a tenant serving `system`.
    pub fn register_tenant(&self, name: impl Into<String>, system: UdiSystem) {
        let tenant = Arc::new(Tenant::first(system));
        self.tenants
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name.into(), tenant);
    }

    /// Clone-mutate-publish: run `apply` on a private clone of `name`'s
    /// current snapshot, then publish the result by replacing the whole
    /// tenant record. Returns the published generation, or `None` for an
    /// unknown tenant. Writers serialize on the tenant's gate; readers
    /// keep answering on the old record throughout and are never blocked.
    pub fn mutate_tenant<E>(
        &self,
        name: &str,
        apply: impl FnOnce(&mut UdiSystem) -> Result<(), E>,
    ) -> Option<Result<u64, E>> {
        let gate = Arc::clone(&self.tenant(name)?.gate);
        let _guard = gate.lock().unwrap_or_else(PoisonError::into_inner);
        // Re-read under the gate: another writer may have replaced the
        // record between our lookup and the lock.
        let current = self.tenant(name)?;
        let mut next = (*current.system).clone();
        if let Err(e) = apply(&mut next) {
            return Some(Err(e));
        }
        let generation = current.generation + 1;
        let successor = Arc::new(Tenant {
            system: Arc::new(next),
            generation,
            gate: Arc::clone(&gate),
        });
        self.tenants
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name.to_owned(), successor);
        Some(Ok(generation))
    }

    /// Looks up a tenant by name.
    pub fn tenant(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .cloned()
    }

    /// The serving-layer counters (`serve.requests`, `serve.shed`, ...).
    pub fn counters(&self) -> &Arc<CounterSink> {
        &self.counters
    }

    /// The serving-layer recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }
}

/// Dispatches one parsed request against the state, returning the response
/// value. Opens the `serve.request` span whose id is the request's trace id.
pub fn handle(state: &ServeState, req: &Request) -> Json {
    let mut span = state.recorder.span("serve.request");
    span.field("op", req.op.name());
    span.field("tenant", req.tenant.clone());
    state.recorder.count("serve.requests", 1);
    let trace = span.id();

    let Some(tenant) = state.tenant(&req.tenant) else {
        state.recorder.count("serve.unknown_tenant", 1);
        return error_response(req.id, &format!("unknown tenant `{}`", req.tenant));
    };

    match req.op {
        Op::Prepare => {
            let Some(query) = req.query.as_deref() else {
                return error_response(req.id, "missing query");
            };
            let sys = tenant.snapshot();
            match udi_query::parse_query(query) {
                Ok(q) => {
                    sys.prepare(&q);
                    let mut extra = BTreeMap::new();
                    extra.insert(
                        "plan_cache_len".to_owned(),
                        Json::Int(i64::try_from(sys.plan_cache_len()).unwrap_or(i64::MAX)),
                    );
                    ok_response(req.id, sys.engine().generation(), extra)
                }
                Err(e) => error_response(req.id, &e.to_string()),
            }
        }
        Op::Answer => {
            let Some(query) = req.query.as_deref() else {
                return error_response(req.id, "missing query");
            };
            let sys = tenant.snapshot();
            match execute_answer(&sys, req.path, query, trace) {
                Ok(answers) => {
                    let mut extra = BTreeMap::new();
                    extra.insert("answers".to_owned(), answers);
                    extra.insert("path".to_owned(), Json::Str(req.path.name().to_owned()));
                    ok_response(req.id, sys.engine().generation(), extra)
                }
                Err(e) => error_response(req.id, &e.to_string()),
            }
        }
        Op::AddSource => {
            let Some(table) = req.table.clone() else {
                return error_response(req.id, "missing table");
            };
            match state.mutate_tenant(&req.tenant, |sys| sys.add_source(table)) {
                Some(Ok(generation)) => {
                    state.recorder.count("serve.refresh", 1);
                    ok_response(req.id, generation, BTreeMap::new())
                }
                Some(Err(e)) => error_response(req.id, &e.to_string()),
                None => error_response(req.id, &format!("unknown tenant `{}`", req.tenant)),
            }
        }
        Op::ApplyFeedback => {
            let mut fb = Feedback::new();
            for (a, b) in &req.same {
                fb.confirm_same(a, b);
            }
            for (a, b) in &req.different {
                fb.confirm_different(a, b);
            }
            match state.mutate_tenant(&req.tenant, |sys| sys.apply_feedback(&fb)) {
                Some(Ok(generation)) => {
                    state.recorder.count("serve.refresh", 1);
                    ok_response(req.id, generation, BTreeMap::new())
                }
                Some(Err(e)) => error_response(req.id, &e.to_string()),
                None => error_response(req.id, &format!("unknown tenant `{}`", req.tenant)),
            }
        }
        Op::Stats => stats_response(state, &tenant, req.id),
    }
}

/// Builds the `stats` response for one tenant: the serving-layer counter
/// snapshot plus tenant facts (source count, plan-cache size). Hoisted out
/// of the dispatcher so the whole stats read path is a certified entry —
/// lock-free + io-free + spawn-free (`audit.toml [effects]`): the counter
/// snapshot is udi-obs (exempt instrumentation), the tenant snapshot is an
/// `Arc` clone, and the plan-cache length is a wait-free chain walk.
pub fn stats_response(state: &ServeState, tenant: &Tenant, id: Option<i64>) -> Json {
    let sys = tenant.snapshot();
    let counters = state
        .counters
        .snapshot()
        .into_iter()
        .map(|(name, v)| {
            (
                name.to_owned(),
                Json::Int(i64::try_from(v).unwrap_or(i64::MAX)),
            )
        })
        .collect();
    let mut t = BTreeMap::new();
    t.insert(
        "sources".to_owned(),
        Json::Int(i64::try_from(sys.catalog().source_count()).unwrap_or(i64::MAX)),
    );
    t.insert(
        "plan_cache_len".to_owned(),
        Json::Int(i64::try_from(sys.plan_cache_len()).unwrap_or(i64::MAX)),
    );
    let mut extra = BTreeMap::new();
    extra.insert("counters".to_owned(), Json::Obj(counters));
    extra.insert("tenant".to_owned(), Json::Obj(t));
    ok_response(id, sys.engine().generation(), extra)
}

/// Parses and executes `query` on `path` against one snapshot, rendering
/// the wire `answers` array. The `parent` span id parents the library's
/// `query.answer` span so per-source work joins the request's trace.
///
/// This is the crate's certified-deterministic entry point: given the same
/// snapshot and query text it renders the same bytes, on any path.
pub fn execute_answer(
    sys: &UdiSystem,
    path: AnswerPath,
    query: &str,
    parent: u64,
) -> Result<Json, udi_query::ParseError> {
    let set = match path {
        AnswerPath::Consolidated => {
            let q = udi_query::parse_query(query)?;
            sys.answer_traced(&q, parent)
        }
        AnswerPath::Pmed => {
            let q = udi_query::parse_query(query)?;
            sys.answer_with_pmed_traced(&q, parent)
        }
        AnswerPath::TopMapping => {
            let q = udi_query::parse_query(query)?;
            sys.answer_top_mapping_traced(&q, parent)
        }
        AnswerPath::ByTuple => {
            let q = udi_query::parse_query(query)?;
            sys.answer_by_tuple_traced(&q, parent)
        }
        AnswerPath::Aggregate => {
            let q = udi_query::parse_aggregate_query(query)?;
            sys.answer_aggregate_traced(&q, parent)
        }
    };
    Ok(render_answers(&set))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::parse_request;
    use udi_core::UdiConfig;
    use udi_store::{Catalog, Table};

    fn people_system() -> UdiSystem {
        let mut catalog = Catalog::new();
        let mut a = Table::new("s1", ["name", "phone"]);
        a.push_raw_row(["Alice", "123"]).unwrap();
        a.push_raw_row(["Bob", "456"]).unwrap();
        catalog.add_source(a).unwrap();
        let mut b = Table::new("s2", ["full_name", "tel"]);
        b.push_raw_row(["Alice", "999"]).unwrap();
        catalog.add_source(b).unwrap();
        UdiSystem::setup(catalog, UdiConfig::default()).unwrap()
    }

    fn state_with_tenant() -> ServeState {
        let state = ServeState::new();
        state.register_tenant("t0", people_system());
        state
    }

    #[test]
    fn answer_matches_library_bytes_on_every_path() {
        let state = state_with_tenant();
        let tenant = state.tenant("t0").unwrap();
        let sys = tenant.snapshot();
        for path in AnswerPath::ALL {
            let query = if path == AnswerPath::Aggregate {
                "SELECT COUNT(name) FROM people"
            } else {
                "SELECT name FROM people WHERE name = 'Alice'"
            };
            let req = parse_request(&format!(
                r#"{{"op":"answer","tenant":"t0","path":"{}","query":"{}"}}"#,
                path.name(),
                query
            ))
            .unwrap();
            let via_server = handle(&state, &req);
            let via_library = execute_answer(&sys, path, query, 0).unwrap();
            assert_eq!(
                via_server.get("answers").map(Json::render),
                Some(via_library.render()),
                "path {}",
                path.name()
            );
            assert_eq!(via_server.get("ok"), Some(&Json::Bool(true)));
        }
    }

    #[test]
    fn unknown_tenant_is_an_error_response() {
        let state = state_with_tenant();
        let req = parse_request(r#"{"op":"stats","tenant":"ghost"}"#).unwrap();
        let resp = handle(&state, &req);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(state.counters().get("serve.unknown_tenant"), 1);
    }

    #[test]
    fn add_source_publishes_a_new_generation_without_touching_readers() {
        let state = state_with_tenant();
        let tenant = state.tenant("t0").unwrap();
        let before = tenant.snapshot();
        let req = parse_request(
            r#"{"op":"add_source","tenant":"t0","table":{"name":"s3","attrs":["person","cell"],"rows":[["Eve","777"]]}}"#,
        )
        .unwrap();
        let resp = handle(&state, &req);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        // The held reader still sees the old snapshot...
        assert_eq!(before.catalog().source_count(), 2);
        // ...while a re-fetched record sees the published successor (a
        // held `Tenant` is immutable — readers re-fetch to advance).
        let after = state.tenant("t0").unwrap();
        assert_eq!(after.snapshot().catalog().source_count(), 3);
        assert_eq!(after.generation(), 2);
    }

    #[test]
    fn apply_feedback_merges_judgments() {
        let state = state_with_tenant();
        let req =
            parse_request(r#"{"op":"apply_feedback","tenant":"t0","same":[["name","full_name"]]}"#)
                .unwrap();
        let resp = handle(&state, &req);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        let tenant = state.tenant("t0").unwrap();
        assert_eq!(
            tenant.snapshot().feedback().judgment("name", "full_name"),
            Some(true)
        );
    }

    #[test]
    fn stats_reports_counters_and_tenant_facts() {
        let state = state_with_tenant();
        let answer =
            parse_request(r#"{"op":"answer","tenant":"t0","query":"SELECT name FROM people"}"#)
                .unwrap();
        handle(&state, &answer);
        let req = parse_request(r#"{"op":"stats","tenant":"t0","id":1}"#).unwrap();
        let resp = handle(&state, &req);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(resp.get("id"), Some(&Json::Int(1)));
        let counters = resp.get("counters").unwrap();
        assert_eq!(counters.get("serve.requests"), Some(&Json::Int(2)));
        let t = resp.get("tenant").unwrap();
        assert_eq!(t.get("sources"), Some(&Json::Int(2)));
    }

    #[test]
    fn prepare_populates_the_plan_cache() {
        let state = state_with_tenant();
        let req =
            parse_request(r#"{"op":"prepare","tenant":"t0","query":"SELECT name FROM people"}"#)
                .unwrap();
        let resp = handle(&state, &req);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(resp.get("plan_cache_len"), Some(&Json::Int(1)));
    }
}

//! Multi-tenant server state and request dispatch.
//!
//! Each tenant owns one [`SystemHandle`] — an atomically swapped
//! [`UdiSystem`] snapshot. Readers [`SystemHandle::load`] an `Arc` and answer
//! against it without ever blocking on a refresh; mutations serialize on the
//! tenant's `mutate` lock, clone the current snapshot, apply the change
//! off to the side (the expensive part — re-running setup — happens while
//! readers keep using the old snapshot), and publish the successor
//! atomically. A reader therefore always sees a complete generation, old or
//! new, never a torn one.
//!
//! [`handle`] is the dispatcher: it opens a `serve.request` span whose id is
//! the per-request trace id, and [`execute_answer`] parents the library's
//! `query.answer` span (and, through it, the per-source `query.source`
//! spans) onto that id — one request, one connected trace tree.
//! [`execute_answer`] is also the crate's certified-deterministic entry
//! point (`audit.toml [determinism]`): everything reachable from it sticks
//! to order-stable containers and injected clocks.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

use udi_core::{Feedback, SystemHandle, UdiSystem};
use udi_obs::{CounterSink, Recorder};

use crate::json::Json;
use crate::proto::{error_response, ok_response, render_answers, AnswerPath, Op, Request};

/// One tenant: a snapshot slot plus a mutation lock.
///
/// The `mutate` lock serializes writers only. Readers go straight to
/// [`SystemHandle::load`] and never touch it.
#[derive(Debug)]
pub struct Tenant {
    handle: SystemHandle,
    mutate: Mutex<()>,
}

impl Tenant {
    fn new(system: UdiSystem) -> Tenant {
        Tenant {
            handle: SystemHandle::new(system),
            mutate: Mutex::new(()),
        }
    }

    /// The tenant's snapshot slot.
    pub fn handle(&self) -> &SystemHandle {
        &self.handle
    }

    /// Clone-mutate-publish: run `apply` on a private clone of the current
    /// snapshot, then publish the result. Returns the published generation.
    /// Readers keep answering on the old snapshot throughout.
    pub fn mutate<E>(&self, apply: impl FnOnce(&mut UdiSystem) -> Result<(), E>) -> Result<u64, E> {
        let _guard = self.mutate.lock().unwrap_or_else(PoisonError::into_inner);
        let mut next = (*self.handle.load()).clone();
        apply(&mut next)?;
        Ok(self.handle.publish(next))
    }
}

/// Shared server state: the tenant map plus the serving-layer recorder.
#[derive(Debug, Clone)]
pub struct ServeState {
    tenants: Arc<Mutex<BTreeMap<String, Arc<Tenant>>>>,
    counters: Arc<CounterSink>,
    recorder: Recorder,
}

impl Default for ServeState {
    fn default() -> ServeState {
        ServeState::new()
    }
}

impl ServeState {
    /// Fresh state with a counter-backed recorder.
    pub fn new() -> ServeState {
        let counters = Arc::new(CounterSink::new());
        let recorder = Recorder::new(counters.clone());
        ServeState {
            tenants: Arc::new(Mutex::new(BTreeMap::new())),
            counters,
            recorder,
        }
    }

    /// Registers (or replaces) a tenant serving `system`.
    pub fn register_tenant(&self, name: impl Into<String>, system: UdiSystem) {
        let tenant = Arc::new(Tenant::new(system));
        self.tenants
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name.into(), tenant);
    }

    /// Looks up a tenant by name.
    pub fn tenant(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .cloned()
    }

    /// The serving-layer counters (`serve.requests`, `serve.shed`, ...).
    pub fn counters(&self) -> &Arc<CounterSink> {
        &self.counters
    }

    /// The serving-layer recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }
}

/// Dispatches one parsed request against the state, returning the response
/// value. Opens the `serve.request` span whose id is the request's trace id.
pub fn handle(state: &ServeState, req: &Request) -> Json {
    let mut span = state.recorder.span("serve.request");
    span.field("op", req.op.name());
    span.field("tenant", req.tenant.clone());
    state.recorder.count("serve.requests", 1);
    let trace = span.id();

    let Some(tenant) = state.tenant(&req.tenant) else {
        state.recorder.count("serve.unknown_tenant", 1);
        return error_response(req.id, &format!("unknown tenant `{}`", req.tenant));
    };

    match req.op {
        Op::Prepare => {
            let Some(query) = req.query.as_deref() else {
                return error_response(req.id, "missing query");
            };
            let sys = tenant.handle.load();
            match udi_query::parse_query(query) {
                Ok(q) => {
                    sys.prepare(&q);
                    let mut extra = BTreeMap::new();
                    extra.insert(
                        "plan_cache_len".to_owned(),
                        Json::Int(i64::try_from(sys.plan_cache_len()).unwrap_or(i64::MAX)),
                    );
                    ok_response(req.id, sys.engine().generation(), extra)
                }
                Err(e) => error_response(req.id, &e.to_string()),
            }
        }
        Op::Answer => {
            let Some(query) = req.query.as_deref() else {
                return error_response(req.id, "missing query");
            };
            let sys = tenant.handle.load();
            match execute_answer(&sys, req.path, query, trace) {
                Ok(answers) => {
                    let mut extra = BTreeMap::new();
                    extra.insert("answers".to_owned(), answers);
                    extra.insert("path".to_owned(), Json::Str(req.path.name().to_owned()));
                    ok_response(req.id, sys.engine().generation(), extra)
                }
                Err(e) => error_response(req.id, &e.to_string()),
            }
        }
        Op::AddSource => {
            let Some(table) = req.table.clone() else {
                return error_response(req.id, "missing table");
            };
            match tenant.mutate(|sys| sys.add_source(table)) {
                Ok(generation) => {
                    state.recorder.count("serve.refresh", 1);
                    ok_response(req.id, generation, BTreeMap::new())
                }
                Err(e) => error_response(req.id, &e.to_string()),
            }
        }
        Op::ApplyFeedback => {
            let mut fb = Feedback::new();
            for (a, b) in &req.same {
                fb.confirm_same(a, b);
            }
            for (a, b) in &req.different {
                fb.confirm_different(a, b);
            }
            match tenant.mutate(|sys| sys.apply_feedback(&fb)) {
                Ok(generation) => {
                    state.recorder.count("serve.refresh", 1);
                    ok_response(req.id, generation, BTreeMap::new())
                }
                Err(e) => error_response(req.id, &e.to_string()),
            }
        }
        Op::Stats => {
            let sys = tenant.handle.load();
            let counters = state
                .counters
                .snapshot()
                .into_iter()
                .map(|(name, v)| {
                    (
                        name.to_owned(),
                        Json::Int(i64::try_from(v).unwrap_or(i64::MAX)),
                    )
                })
                .collect();
            let mut t = BTreeMap::new();
            t.insert(
                "sources".to_owned(),
                Json::Int(i64::try_from(sys.catalog().source_count()).unwrap_or(i64::MAX)),
            );
            t.insert(
                "plan_cache_len".to_owned(),
                Json::Int(i64::try_from(sys.plan_cache_len()).unwrap_or(i64::MAX)),
            );
            let mut extra = BTreeMap::new();
            extra.insert("counters".to_owned(), Json::Obj(counters));
            extra.insert("tenant".to_owned(), Json::Obj(t));
            ok_response(req.id, sys.engine().generation(), extra)
        }
    }
}

/// Parses and executes `query` on `path` against one snapshot, rendering
/// the wire `answers` array. The `parent` span id parents the library's
/// `query.answer` span so per-source work joins the request's trace.
///
/// This is the crate's certified-deterministic entry point: given the same
/// snapshot and query text it renders the same bytes, on any path.
pub fn execute_answer(
    sys: &UdiSystem,
    path: AnswerPath,
    query: &str,
    parent: u64,
) -> Result<Json, udi_query::ParseError> {
    let set = match path {
        AnswerPath::Consolidated => {
            let q = udi_query::parse_query(query)?;
            sys.answer_traced(&q, parent)
        }
        AnswerPath::Pmed => {
            let q = udi_query::parse_query(query)?;
            sys.answer_with_pmed_traced(&q, parent)
        }
        AnswerPath::TopMapping => {
            let q = udi_query::parse_query(query)?;
            sys.answer_top_mapping_traced(&q, parent)
        }
        AnswerPath::ByTuple => {
            let q = udi_query::parse_query(query)?;
            sys.answer_by_tuple_traced(&q, parent)
        }
        AnswerPath::Aggregate => {
            let q = udi_query::parse_aggregate_query(query)?;
            sys.answer_aggregate_traced(&q, parent)
        }
    };
    Ok(render_answers(&set))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::parse_request;
    use udi_core::UdiConfig;
    use udi_store::{Catalog, Table};

    fn people_system() -> UdiSystem {
        let mut catalog = Catalog::new();
        let mut a = Table::new("s1", ["name", "phone"]);
        a.push_raw_row(["Alice", "123"]).unwrap();
        a.push_raw_row(["Bob", "456"]).unwrap();
        catalog.add_source(a).unwrap();
        let mut b = Table::new("s2", ["full_name", "tel"]);
        b.push_raw_row(["Alice", "999"]).unwrap();
        catalog.add_source(b).unwrap();
        UdiSystem::setup(catalog, UdiConfig::default()).unwrap()
    }

    fn state_with_tenant() -> ServeState {
        let state = ServeState::new();
        state.register_tenant("t0", people_system());
        state
    }

    #[test]
    fn answer_matches_library_bytes_on_every_path() {
        let state = state_with_tenant();
        let tenant = state.tenant("t0").unwrap();
        let sys = tenant.handle().load();
        for path in AnswerPath::ALL {
            let query = if path == AnswerPath::Aggregate {
                "SELECT COUNT(name) FROM people"
            } else {
                "SELECT name FROM people WHERE name = 'Alice'"
            };
            let req = parse_request(&format!(
                r#"{{"op":"answer","tenant":"t0","path":"{}","query":"{}"}}"#,
                path.name(),
                query
            ))
            .unwrap();
            let via_server = handle(&state, &req);
            let via_library = execute_answer(&sys, path, query, 0).unwrap();
            assert_eq!(
                via_server.get("answers").map(Json::render),
                Some(via_library.render()),
                "path {}",
                path.name()
            );
            assert_eq!(via_server.get("ok"), Some(&Json::Bool(true)));
        }
    }

    #[test]
    fn unknown_tenant_is_an_error_response() {
        let state = state_with_tenant();
        let req = parse_request(r#"{"op":"stats","tenant":"ghost"}"#).unwrap();
        let resp = handle(&state, &req);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(state.counters().get("serve.unknown_tenant"), 1);
    }

    #[test]
    fn add_source_publishes_a_new_generation_without_touching_readers() {
        let state = state_with_tenant();
        let tenant = state.tenant("t0").unwrap();
        let before = tenant.handle().load();
        let req = parse_request(
            r#"{"op":"add_source","tenant":"t0","table":{"name":"s3","attrs":["person","cell"],"rows":[["Eve","777"]]}}"#,
        )
        .unwrap();
        let resp = handle(&state, &req);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        // The held reader still sees the old snapshot...
        assert_eq!(before.catalog().source_count(), 2);
        // ...while fresh loads see the published successor.
        assert_eq!(tenant.handle().load().catalog().source_count(), 3);
    }

    #[test]
    fn apply_feedback_merges_judgments() {
        let state = state_with_tenant();
        let req =
            parse_request(r#"{"op":"apply_feedback","tenant":"t0","same":[["name","full_name"]]}"#)
                .unwrap();
        let resp = handle(&state, &req);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        let tenant = state.tenant("t0").unwrap();
        assert_eq!(
            tenant
                .handle()
                .load()
                .feedback()
                .judgment("name", "full_name"),
            Some(true)
        );
    }

    #[test]
    fn stats_reports_counters_and_tenant_facts() {
        let state = state_with_tenant();
        let answer =
            parse_request(r#"{"op":"answer","tenant":"t0","query":"SELECT name FROM people"}"#)
                .unwrap();
        handle(&state, &answer);
        let req = parse_request(r#"{"op":"stats","tenant":"t0","id":1}"#).unwrap();
        let resp = handle(&state, &req);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(resp.get("id"), Some(&Json::Int(1)));
        let counters = resp.get("counters").unwrap();
        assert_eq!(counters.get("serve.requests"), Some(&Json::Int(2)));
        let t = resp.get("tenant").unwrap();
        assert_eq!(t.get("sources"), Some(&Json::Int(2)));
    }

    #[test]
    fn prepare_populates_the_plan_cache() {
        let state = state_with_tenant();
        let req =
            parse_request(r#"{"op":"prepare","tenant":"t0","query":"SELECT name FROM people"}"#)
                .unwrap();
        let resp = handle(&state, &req);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(resp.get("plan_cache_len"), Some(&Json::Int(1)));
    }
}

//! A zero-dependency JSON value type with a panic-free parser and a
//! deterministic renderer.
//!
//! The serve protocol is line-delimited JSON, and the server must not pull in
//! `serde` (the workspace keeps third-party dependencies out of the serving
//! path) nor panic on hostile input. This module therefore hand-rolls the
//! small subset of JSON the protocol needs:
//!
//! * Objects render with keys in [`BTreeMap`] order, so a given value always
//!   renders to the same bytes — the byte-identity contract between the server
//!   and the library path rests on this.
//! * Floats render with Rust's shortest-round-trip `{:?}` formatting, matching
//!   how [`exp_qps`-style fingerprints] and the rest of the workspace print
//!   probabilities. Non-finite floats render as `null` (JSON has no NaN).
//! * The parser walks raw bytes with bounds-checked access only and caps
//!   nesting depth, so untrusted input cannot panic or blow the stack.
//!
//! [`exp_qps`-style fingerprints]: ../../udi_bench/index.html

use std::collections::BTreeMap;

/// Maximum nesting depth accepted by [`parse`]. Requests are flat in
/// practice (one object with scalar fields and a rows array), so 64 is
/// generous while still bounding recursion on hostile input.
const MAX_DEPTH: u32 = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A number without fractional part or exponent that fits in `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps rendering deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Returns the string slice if this value is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Returns the integer if this value is an `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Looks up a key if this value is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Renders this value to a compact JSON string with deterministic
    /// key order and shortest-round-trip float formatting.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => render_float(*f, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (idx, item) in items.iter().enumerate() {
                    if idx > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (idx, (key, value)) in map.iter().enumerate() {
                    if idx > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Renders a float the same way the rest of the workspace prints
/// probabilities: shortest decimal that round-trips. Non-finite values
/// become `null` because JSON cannot carry them.
fn render_float(f: f64, out: &mut String) {
    if f.is_finite() {
        out.push_str(&format!("{f:?}"));
    } else {
        out.push_str("null");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON value from `input`, requiring that nothing but
/// whitespace follows it.
pub fn parse(input: &str) -> Result<Json, ParseJsonError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(ParseJsonError::TrailingData(p.pos));
    }
    Ok(value)
}

/// Why a JSON line failed to parse. Positions are byte offsets into the
/// input line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseJsonError {
    /// The input ended in the middle of a value.
    UnexpectedEnd,
    /// An unexpected byte at the given offset.
    UnexpectedByte(usize),
    /// Nesting exceeded the fixed depth cap.
    TooDeep,
    /// A number literal that fits neither `i64` nor `f64`.
    BadNumber(usize),
    /// A malformed string escape at the given offset.
    BadEscape(usize),
    /// The value parsed, but trailing non-whitespace bytes follow it.
    TrailingData(usize),
}

impl std::fmt::Display for ParseJsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseJsonError::UnexpectedEnd => write!(f, "unexpected end of input"),
            ParseJsonError::UnexpectedByte(at) => write!(f, "unexpected byte at offset {at}"),
            ParseJsonError::TooDeep => write!(f, "nesting deeper than {MAX_DEPTH} levels"),
            ParseJsonError::BadNumber(at) => write!(f, "malformed number at offset {at}"),
            ParseJsonError::BadEscape(at) => write!(f, "malformed string escape at offset {at}"),
            ParseJsonError::TrailingData(at) => {
                write!(f, "trailing data after value at offset {at}")
            }
        }
    }
}

impl std::error::Error for ParseJsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), ParseJsonError> {
        match self.bump() {
            Some(b) if b == byte => Ok(()),
            Some(_) => Err(ParseJsonError::UnexpectedByte(self.pos - 1)),
            None => Err(ParseJsonError::UnexpectedEnd),
        }
    }

    fn literal(&mut self, rest: &[u8], value: Json) -> Result<Json, ParseJsonError> {
        for &b in rest {
            self.expect_byte(b)?;
        }
        Ok(value)
    }

    fn value(&mut self, depth: u32) -> Result<Json, ParseJsonError> {
        if depth > MAX_DEPTH {
            return Err(ParseJsonError::TooDeep);
        }
        match self.peek() {
            None => Err(ParseJsonError::UnexpectedEnd),
            Some(b'n') => {
                self.pos += 1;
                self.literal(b"ull", Json::Null)
            }
            Some(b't') => {
                self.pos += 1;
                self.literal(b"rue", Json::Bool(true))
            }
            Some(b'f') => {
                self.pos += 1;
                self.literal(b"alse", Json::Bool(false))
            }
            Some(b'"') => {
                self.pos += 1;
                self.string().map(Json::Str)
            }
            Some(b'[') => {
                self.pos += 1;
                self.array(depth)
            }
            Some(b'{') => {
                self.pos += 1;
                self.object(depth)
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(ParseJsonError::UnexpectedByte(self.pos)),
        }
    }

    fn array(&mut self, depth: u32) -> Result<Json, ParseJsonError> {
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                Some(_) => return Err(ParseJsonError::UnexpectedByte(self.pos - 1)),
                None => return Err(ParseJsonError::UnexpectedEnd),
            }
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, ParseJsonError> {
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            self.expect_byte(b'"')?;
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(map)),
                Some(_) => return Err(ParseJsonError::UnexpectedByte(self.pos - 1)),
                None => return Err(ParseJsonError::UnexpectedEnd),
            }
        }
    }

    /// Parses the body of a string; the opening quote is already consumed.
    fn string(&mut self) -> Result<String, ParseJsonError> {
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: consume a run of plain UTF-8 bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                if let Some(chunk) = self
                    .bytes
                    .get(start..self.pos)
                    .and_then(|c| std::str::from_utf8(c).ok())
                {
                    out.push_str(chunk);
                } else {
                    return Err(ParseJsonError::UnexpectedByte(start));
                }
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => {
                    let at = self.pos;
                    match self.bump() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let code = self.hex4(at)?;
                            if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: require a low surrogate.
                                self.expect_byte(b'\\')?;
                                self.expect_byte(b'u')?;
                                let low = self.hex4(at)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(ParseJsonError::BadEscape(at));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                match char::from_u32(combined) {
                                    Some(c) => out.push(c),
                                    None => return Err(ParseJsonError::BadEscape(at)),
                                }
                            } else {
                                match char::from_u32(code) {
                                    Some(c) => out.push(c),
                                    None => return Err(ParseJsonError::BadEscape(at)),
                                }
                            }
                        }
                        Some(_) => return Err(ParseJsonError::BadEscape(at)),
                        None => return Err(ParseJsonError::UnexpectedEnd),
                    }
                }
                Some(_) => return Err(ParseJsonError::UnexpectedByte(self.pos - 1)),
                None => return Err(ParseJsonError::UnexpectedEnd),
            }
        }
    }

    fn hex4(&mut self, at: usize) -> Result<u32, ParseJsonError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let digit = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                Some(_) => return Err(ParseJsonError::BadEscape(at)),
                None => return Err(ParseJsonError::UnexpectedEnd),
            };
            code = (code << 4) | digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseJsonError> {
        let start = self.pos;
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|c| std::str::from_utf8(c).ok())
            .ok_or(ParseJsonError::BadNumber(start))?;
        if !float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(Json::Float(f)),
            _ => Err(ParseJsonError::BadNumber(start)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "42", "-7", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(v.render(), text);
        }
    }

    #[test]
    fn renders_floats_shortest_round_trip() {
        let v = parse("0.30000000000000004").unwrap();
        assert_eq!(v.render(), "0.30000000000000004");
        assert_eq!(Json::Float(0.5).render(), "0.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
    }

    #[test]
    fn object_keys_render_sorted() {
        let v = parse(r#"{"b":1,"a":2}"#).unwrap();
        assert_eq!(v.render(), r#"{"a":2,"b":1}"#);
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"op":"answer","rows":[[1,"x",0.5],[null,true,-2]]}"#).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("answer"));
        match v.get("rows") {
            Some(Json::Arr(rows)) => assert_eq!(rows.len(), 2),
            other => panic!("expected rows array, got {other:?}"),
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""line\nquote\"backslash\\tab\tacute\u00e9""#).unwrap();
        assert_eq!(
            v,
            Json::Str("line\nquote\"backslash\\tab\tacute\u{e9}".to_owned())
        );
        // Control characters re-escape on render.
        assert_eq!(Json::Str("a\u{0001}b".to_owned()).render(), r#""a\u0001b""#);
    }

    #[test]
    fn surrogate_pairs_combine() {
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v, Json::Str("\u{1F600}".to_owned()));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_garbage_without_panicking() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "nul",
            "1e",
            "\"\\q\"",
            "{\"a\":1} trailing",
            "\u{0007}",
        ] {
            assert!(parse(text).is_err(), "expected error for {text:?}");
        }
    }

    #[test]
    fn depth_cap_rejects_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert_eq!(parse(&deep), Err(ParseJsonError::TooDeep));
    }

    #[test]
    fn large_integers_fall_back_to_float() {
        let v = parse("9223372036854775807").unwrap();
        assert_eq!(v, Json::Int(i64::MAX));
        match parse("92233720368547758080").unwrap() {
            Json::Float(_) => {}
            other => panic!("expected float fallback, got {other:?}"),
        }
    }
}

//! Group p-mappings: independent-component decomposition.
//!
//! Correspondences that share no attribute are independent under maximum
//! entropy (the solution factorizes), so we split the correspondence graph
//! into connected components ("groups"), maximize entropy within each group,
//! and represent the joint as a product of per-group factors. This is the
//! search-space reduction the paper adopts from Dong et al.'s group
//! p-mappings, and it is what keeps UDI setup time linear in practice.

use crate::cache::{solve_group_via, SolveCache};
use crate::problem::CorrespondenceSet;
use crate::solver::MaxEntConfig;
use crate::{Correspondence, Matching, MaxEntError};

/// One independent group: a distribution over the one-to-one matchings of a
/// connected component of the correspondence graph. Matching entries are
/// **global** correspondence indices (into the original set).
#[derive(Debug, Clone)]
pub struct MappingFactor {
    /// Global indices of the correspondences this factor covers.
    pub corr_indices: Vec<usize>,
    /// Candidate matchings (global indices, sorted).
    pub matchings: Vec<Matching>,
    /// Probability per matching; sums to 1.
    pub probabilities: Vec<f64>,
}

impl MappingFactor {
    /// Marginalize this factor onto a subset of its correspondences: returns
    /// `(projected matching, total probability)` pairs, aggregated.
    pub fn project(&self, keep: &[usize]) -> Vec<(Matching, f64)> {
        use std::collections::BTreeMap;
        let mut acc: BTreeMap<Matching, f64> = BTreeMap::new();
        for (m, &p) in self.matchings.iter().zip(&self.probabilities) {
            let proj: Matching = m.iter().copied().filter(|c| keep.contains(c)).collect();
            *acc.entry(proj).or_insert(0.0) += p;
        }
        acc.into_iter().collect()
    }

    /// Entropy of this factor's distribution.
    pub fn entropy(&self) -> f64 {
        -self
            .probabilities
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.ln())
            .sum::<f64>()
    }
}

/// Product distribution over matchings, factorized by independent groups.
#[derive(Debug, Clone)]
pub struct GroupedDistribution {
    factors: Vec<MappingFactor>,
    n_corrs: usize,
}

impl GroupedDistribution {
    /// The independent factors.
    pub fn factors(&self) -> &[MappingFactor] {
        &self.factors
    }

    /// Number of correspondences in the underlying set.
    pub fn correspondence_count(&self) -> usize {
        self.n_corrs
    }

    /// Total number of full matchings the product represents (may be huge).
    pub fn joint_size(&self) -> u128 {
        self.factors
            .iter()
            .map(|f| f.matchings.len() as u128)
            .product()
    }

    /// Expand the product into an explicit joint distribution over full
    /// matchings, failing with [`MaxEntError::Explosion`] past `cap`.
    pub fn expand(&self, cap: usize) -> Result<Vec<(Matching, f64)>, MaxEntError> {
        let mut acc: Vec<(Matching, f64)> = vec![(Vec::new(), 1.0)];
        for f in &self.factors {
            let mut next = Vec::with_capacity(acc.len() * f.matchings.len());
            for (base, bp) in &acc {
                for (m, &p) in f.matchings.iter().zip(&f.probabilities) {
                    if next.len() >= cap {
                        return Err(MaxEntError::Explosion { cap });
                    }
                    let mut merged = base.clone();
                    merged.extend(m.iter().copied());
                    next.push((merged, bp * p));
                }
            }
            acc = next;
        }
        for (m, _) in &mut acc {
            m.sort_unstable();
        }
        Ok(acc)
    }

    /// Marginal joint distribution over a subset of correspondences: the
    /// product of per-factor projections. Factors that contain none of the
    /// kept correspondences contribute nothing (probability 1 on the empty
    /// projection), so the result stays small even when the full joint is
    /// astronomically large.
    pub fn marginal(
        &self,
        keep: &[usize],
        cap: usize,
    ) -> Result<Vec<(Matching, f64)>, MaxEntError> {
        let mut acc: Vec<(Matching, f64)> = vec![(Vec::new(), 1.0)];
        for f in &self.factors {
            if !f.corr_indices.iter().any(|c| keep.contains(c)) {
                continue;
            }
            let proj = f.project(keep);
            let mut next = Vec::with_capacity(acc.len() * proj.len());
            for (base, bp) in &acc {
                for (m, p) in &proj {
                    if next.len() >= cap {
                        return Err(MaxEntError::Explosion { cap });
                    }
                    let mut merged = base.clone();
                    merged.extend(m.iter().copied());
                    next.push((merged, bp * p));
                }
            }
            acc = next;
        }
        for (m, _) in &mut acc {
            m.sort_unstable();
        }
        Ok(acc)
    }
}

/// Partition correspondences into connected components. Two correspondences
/// are connected when they share a source attribute or a mediated attribute.
/// Returns, per group, the list of global correspondence indices (groups and
/// their contents in deterministic order).
pub fn connected_groups(corrs: &[Correspondence]) -> Vec<Vec<usize>> {
    let n = corrs.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        // Iterative walk with checked access: an out-of-range index is its
        // own root, so `find` is total.
        let mut root = x;
        while let Some(&p) = parent.get(root) {
            if p == root {
                break;
            }
            root = p;
        }
        // Path compression: repoint every node on the walk at the root.
        let mut cur = x;
        while let Some(slot) = parent.get_mut(cur) {
            let next = *slot;
            if next == cur {
                break;
            }
            *slot = root;
            cur = next;
        }
        root
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let (Some(ci), Some(cj)) = (corrs.get(i), corrs.get(j)) else {
                continue;
            };
            if ci.source == cj.source || ci.target == cj.target {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    if let Some(slot) = parent.get_mut(ri) {
                        *slot = rj;
                    }
                }
            }
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for i in 0..n {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().push(i);
    }
    groups.into_values().collect()
}

/// Full §5 pipeline on a correspondence set: group decomposition, matching
/// enumeration per group, maximum entropy per group.
pub fn solve_correspondences(
    corrs: &CorrespondenceSet,
    config: &MaxEntConfig,
) -> Result<GroupedDistribution, MaxEntError> {
    solve_correspondences_cached(corrs, config, None)
}

/// [`solve_correspondences`] with an optional canonical-form memo table:
/// groups whose OPT instance is isomorphic (same edge-sharing structure,
/// same weights) to an already-solved one are answered from `cache` with
/// bit-identical probabilities. See [`SolveCache`] for the soundness
/// argument and the one-config-per-cache requirement.
pub fn solve_correspondences_cached(
    corrs: &CorrespondenceSet,
    config: &MaxEntConfig,
    cache: Option<&SolveCache>,
) -> Result<GroupedDistribution, MaxEntError> {
    let all = corrs.correspondences();
    let mut factors = Vec::new();
    for group in connected_groups(all) {
        // Local view of this group's correspondences.
        let local: Vec<Correspondence> =
            group.iter().filter_map(|&g| all.get(g).copied()).collect();
        let (matchings_local, probabilities) = solve_group_via(cache, &local, config)?;
        // Re-index matchings to global correspondence indices.
        let matchings: Vec<Matching> = matchings_local
            .iter()
            .map(|m| m.iter().filter_map(|&li| group.get(li).copied()).collect())
            .collect();
        factors.push(MappingFactor {
            corr_indices: group,
            matchings,
            probabilities,
        });
    }
    Ok(GroupedDistribution {
        factors,
        n_corrs: all.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(edges: &[(usize, usize, f64)]) -> CorrespondenceSet {
        CorrespondenceSet::new(
            edges
                .iter()
                .map(|&(s, t, w)| Correspondence::new(s, t, w))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn groups_split_on_shared_attributes() {
        let set = cs(&[(0, 0, 0.5), (0, 1, 0.4), (1, 2, 0.3), (2, 2, 0.3)]);
        let groups = connected_groups(set.correspondences());
        // {0,1} share source 0; {2,3} share target 2.
        assert_eq!(groups, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn independent_edges_are_singleton_groups() {
        let set = cs(&[(0, 0, 0.5), (1, 1, 0.4), (2, 2, 0.3)]);
        let groups = connected_groups(set.correspondences());
        assert_eq!(groups.len(), 3);
    }

    #[test]
    fn expand_reproduces_flat_solution() {
        // Compare the grouped product with a direct flat solve.
        let set = cs(&[(0, 0, 0.6), (1, 1, 0.5)]);
        let dist = solve_correspondences(&set, &MaxEntConfig::default()).unwrap();
        assert_eq!(dist.factors().len(), 2);
        let joint = dist.expand(100).unwrap();
        assert_eq!(joint.len(), 4);
        let total: f64 = joint.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let p_both = joint.iter().find(|(m, _)| m.len() == 2).unwrap().1;
        assert!((p_both - 0.3).abs() < 1e-6);
    }

    #[test]
    fn joint_size_multiplies() {
        let set = cs(&[(0, 0, 0.6), (1, 1, 0.5), (2, 2, 0.5)]);
        let dist = solve_correspondences(&set, &MaxEntConfig::default()).unwrap();
        assert_eq!(dist.joint_size(), 8);
    }

    #[test]
    fn expand_respects_cap() {
        let set = cs(&[(0, 0, 0.6), (1, 1, 0.5), (2, 2, 0.5)]);
        let dist = solve_correspondences(&set, &MaxEntConfig::default()).unwrap();
        assert!(matches!(
            dist.expand(4),
            Err(MaxEntError::Explosion { cap: 4 })
        ));
    }

    #[test]
    fn marginal_keeps_only_relevant_factors() {
        let set = cs(&[(0, 0, 0.6), (1, 1, 0.5), (2, 2, 0.25)]);
        let dist = solve_correspondences(&set, &MaxEntConfig::default()).unwrap();
        // Marginal over correspondence 2 only: two outcomes.
        let m = dist.marginal(&[2], 100).unwrap();
        assert_eq!(m.len(), 2);
        let p_with: f64 = m
            .iter()
            .filter(|(mm, _)| mm.contains(&2))
            .map(|(_, p)| p)
            .sum();
        assert!((p_with - 0.25).abs() < 1e-6);
    }

    #[test]
    fn marginal_of_everything_equals_expand() {
        let set = cs(&[(0, 0, 0.6), (0, 1, 0.3), (1, 2, 0.5)]);
        let dist = solve_correspondences(&set, &MaxEntConfig::default()).unwrap();
        let keep: Vec<usize> = (0..3).collect();
        let mut a = dist.expand(1000).unwrap();
        let mut b = dist.marginal(&keep, 1000).unwrap();
        a.sort_by(|x, y| x.0.cmp(&y.0));
        b.sort_by(|x, y| x.0.cmp(&y.0));
        assert_eq!(a.len(), b.len());
        for ((ma, pa), (mb, pb)) in a.iter().zip(&b) {
            assert_eq!(ma, mb);
            assert!((pa - pb).abs() < 1e-9);
        }
    }

    #[test]
    fn project_aggregates_probability() {
        let set = cs(&[(0, 0, 0.6), (0, 1, 0.3)]);
        let dist = solve_correspondences(&set, &MaxEntConfig::default()).unwrap();
        let f = &dist.factors()[0];
        let proj = f.project(&[0]);
        // Outcomes: with corr 0 (0.6) and without (0.4).
        assert_eq!(proj.len(), 2);
        let p0: f64 = proj
            .iter()
            .filter(|(m, _)| m == &vec![0])
            .map(|(_, p)| p)
            .sum();
        assert!((p0 - 0.6).abs() < 1e-6);
    }

    #[test]
    fn factor_entropy_matches_distribution() {
        let set = cs(&[(0, 0, 0.5)]);
        let dist = solve_correspondences(&set, &MaxEntConfig::default()).unwrap();
        let h = dist.factors()[0].entropy();
        assert!(
            (h - (2.0_f64).ln()).abs() < 1e-6,
            "fair coin entropy, got {h}"
        );
    }

    #[test]
    fn empty_correspondence_set_has_unit_empty_joint() {
        let set = cs(&[]);
        let dist = solve_correspondences(&set, &MaxEntConfig::default()).unwrap();
        let joint = dist.expand(10).unwrap();
        assert_eq!(joint, vec![(vec![], 1.0)]);
        assert_eq!(dist.joint_size(), 1);
    }
}

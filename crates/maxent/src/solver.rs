//! The maximum-entropy convex program (OPT of §5.2).
//!
//! Maximize `Σ_k −p_k log p_k` subject to `p ≥ 0`, `Σ_k p_k = 1`, and the
//! Definition 5.1 consistency constraints
//! `Σ_{k : c ∈ m_k} p_k = w_c` for every correspondence `c`.
//!
//! The maximizer lies in the exponential family
//! `p_k(λ) ∝ exp(Σ_{c ∈ m_k} λ_c)`, so the problem reduces to the smooth,
//! unconstrained convex dual
//! `g(λ) = log Σ_k exp(s_k(λ)) − Σ_c λ_c w_c` with gradient
//! `∇g_c = E_{p(λ)}[1{c ∈ m_k}] − w_c`. We minimize `g` by gradient descent
//! with Armijo backtracking. (The paper offloaded this to Knitro; any
//! convergent convex solver yields the same distribution.)

use crate::enumerate::{feature_matrix, Matching};
use crate::MaxEntError;

/// Solver configuration.
#[derive(Debug, Clone)]
pub struct MaxEntConfig {
    /// Stop when the constraint residual infinity-norm falls below this.
    pub tolerance: f64,
    /// Maximum gradient-descent iterations.
    pub max_iterations: usize,
    /// Residual above which the solver reports [`MaxEntError::DidNotConverge`]
    /// instead of returning a best-effort distribution. Boundary-feasible
    /// instances (some matching probability forced to exactly 0) drive dual
    /// variables to ±∞ and can stall just above `tolerance`; such solutions
    /// are still useful, so this acceptance threshold is looser.
    pub acceptable_residual: f64,
    /// Cap for one-to-one matching enumeration and product expansion.
    pub matching_cap: usize,
}

impl Default for MaxEntConfig {
    fn default() -> Self {
        MaxEntConfig {
            tolerance: 1e-10,
            max_iterations: 20_000,
            acceptable_residual: 1e-4,
            matching_cap: 100_000,
        }
    }
}

/// A solved maximum-entropy distribution over matchings.
#[derive(Debug, Clone)]
pub struct MaxEntSolution {
    /// `probabilities[k]` is the probability of `matchings[k]` as passed to
    /// [`solve_max_entropy`].
    pub probabilities: Vec<f64>,
    /// Achieved entropy `Σ −p log p` (natural log).
    pub entropy: f64,
    /// Iterations the solver ran.
    pub iterations: usize,
    /// Final constraint-residual infinity-norm.
    pub residual: f64,
}

/// Solve OPT for the given matchings and per-correspondence targets.
///
/// `targets[c]` is the weight `w_c` of correspondence `c`;
/// `matchings` must contain sorted correspondence-index vectors (as produced
/// by [`crate::enumerate_matchings`]) and should include every one-to-one
/// matching of the correspondence graph — Theorem 5.2 guarantees feasibility
/// only over the full set.
pub fn solve_max_entropy(
    n_corrs: usize,
    matchings: &[Matching],
    targets: &[f64],
    config: &MaxEntConfig,
) -> Result<MaxEntSolution, MaxEntError> {
    assert_eq!(targets.len(), n_corrs, "one target per correspondence");
    assert!(
        !matchings.is_empty(),
        "at least the empty matching is required"
    );
    let l = matchings.len();
    if n_corrs == 0 {
        // Only the normalization constraint: uniform distribution.
        let p = vec![1.0 / l as f64; l];
        let entropy = (l as f64).ln();
        return Ok(MaxEntSolution {
            probabilities: p,
            entropy,
            iterations: 0,
            residual: 0.0,
        });
    }

    let features = feature_matrix(n_corrs, matchings);
    let mut lambda = vec![0.0_f64; n_corrs];
    let mut p = vec![0.0_f64; l];
    let mut grad = vec![0.0_f64; n_corrs];

    let eval = |lambda: &[f64], p: &mut [f64], grad: &mut [f64]| -> f64 {
        // Scores s_k = Σ_{c∈m_k} λ_c, computed via the feature matrix.
        let mut smax = f64::NEG_INFINITY;
        for (k, m) in matchings.iter().enumerate() {
            let s: f64 = m
                .iter()
                .map(|&c| lambda.get(c).copied().unwrap_or(0.0))
                .sum();
            if let Some(slot) = p.get_mut(k) {
                *slot = s;
            }
            smax = smax.max(s);
        }
        let mut z = 0.0;
        for pk in p.iter_mut() {
            *pk = (*pk - smax).exp();
            z += *pk;
        }
        for pk in p.iter_mut() {
            *pk /= z;
        }
        // Dual value g(λ) and gradient E_p[f_c] − w_c.
        let mut g = smax + z.ln();
        for c in 0..n_corrs {
            let e: f64 = features
                .get(c)
                .map(Vec::as_slice)
                .unwrap_or(&[])
                .iter()
                .zip(p.iter())
                .filter_map(|(&f, &pk)| f.then_some(pk))
                .sum();
            let target = targets.get(c).copied().unwrap_or(0.0);
            if let Some(slot) = grad.get_mut(c) {
                *slot = e - target;
            }
            g -= lambda.get(c).copied().unwrap_or(0.0) * target;
        }
        g
    };

    let mut g = eval(&lambda, &mut p, &mut grad);
    let mut iterations = 0;
    let mut step = 1.0_f64;
    while iterations < config.max_iterations {
        let residual = grad.iter().fold(0.0_f64, |m, &x| m.max(x.abs()));
        if residual < config.tolerance {
            break;
        }
        // Armijo backtracking on the dual.
        let mut trial_lambda = lambda.clone();
        let mut trial_p = vec![0.0; l];
        let mut trial_grad = vec![0.0; n_corrs];
        let grad_sq: f64 = grad.iter().map(|x| x * x).sum();
        let mut t = step;
        let mut accepted = false;
        for _ in 0..60 {
            for c in 0..n_corrs {
                let lc = lambda.get(c).copied().unwrap_or(0.0);
                let gc = grad.get(c).copied().unwrap_or(0.0);
                if let Some(slot) = trial_lambda.get_mut(c) {
                    *slot = lc - t * gc;
                }
            }
            let tg = eval(&trial_lambda, &mut trial_p, &mut trial_grad);
            if tg <= g - 0.25 * t * grad_sq {
                lambda.copy_from_slice(&trial_lambda);
                p.copy_from_slice(&trial_p);
                grad.copy_from_slice(&trial_grad);
                g = tg;
                accepted = true;
                break;
            }
            t *= 0.5;
        }
        if !accepted {
            break; // Step underflow: at numerical optimum.
        }
        step = (t * 2.0).min(1e6); // Warm-start next line search.
        iterations += 1;
    }

    let residual = grad.iter().fold(0.0_f64, |m, &x| m.max(x.abs()));
    if residual > config.acceptable_residual {
        return Err(MaxEntError::DidNotConverge { residual });
    }
    let entropy = -p
        .iter()
        .filter(|&&x| x > 0.0)
        .map(|&x| x * x.ln())
        .sum::<f64>();
    Ok(MaxEntSolution {
        probabilities: p,
        entropy,
        iterations,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{enumerate_matchings, Correspondence, CorrespondenceSet};

    fn solve(edges: &[(usize, usize, f64)]) -> (Vec<Matching>, MaxEntSolution) {
        let cs = CorrespondenceSet::new(
            edges
                .iter()
                .map(|&(s, t, w)| Correspondence::new(s, t, w))
                .collect(),
        )
        .unwrap();
        let ms = enumerate_matchings(&cs, 10_000).unwrap();
        let targets: Vec<f64> = cs.correspondences().iter().map(|c| c.weight).collect();
        let sol = solve_max_entropy(cs.len(), &ms, &targets, &MaxEntConfig::default()).unwrap();
        (ms, sol)
    }

    fn prob_of(ms: &[Matching], sol: &MaxEntSolution, m: &[usize]) -> f64 {
        let i = ms.iter().position(|x| x.as_slice() == m).unwrap();
        sol.probabilities[i]
    }

    #[test]
    fn paper_section_5_2_example_factorizes() {
        // (A,A')=0.6, (B,B')=0.5 → p = (0.3, 0.3, 0.2, 0.2) as in pM1.
        let (ms, sol) = solve(&[(0, 0, 0.6), (1, 1, 0.5)]);
        assert!((prob_of(&ms, &sol, &[0, 1]) - 0.30).abs() < 1e-6);
        assert!((prob_of(&ms, &sol, &[0]) - 0.30).abs() < 1e-6);
        assert!((prob_of(&ms, &sol, &[1]) - 0.20).abs() < 1e-6);
        assert!((prob_of(&ms, &sol, &[]) - 0.20).abs() < 1e-6);
    }

    #[test]
    fn three_independent_edges_factorize() {
        let (ms, sol) = solve(&[(0, 0, 0.9), (1, 1, 0.5), (2, 2, 0.1)]);
        let p = prob_of(&ms, &sol, &[0, 1, 2]);
        assert!((p - 0.9 * 0.5 * 0.1).abs() < 1e-6);
        let p = prob_of(&ms, &sol, &[0]);
        assert!((p - 0.9 * 0.5 * 0.9).abs() < 1e-6);
    }

    #[test]
    fn constraints_are_met_on_conflicting_edges() {
        // Source attribute 0 could map to target 0 or 1 (exclusive).
        let (ms, sol) = solve(&[(0, 0, 0.5), (0, 1, 0.3)]);
        // p({0}) = 0.5, p({1}) = 0.3, p({}) = 0.2.
        assert!((prob_of(&ms, &sol, &[0]) - 0.5).abs() < 1e-6);
        assert!((prob_of(&ms, &sol, &[1]) - 0.3).abs() < 1e-6);
        assert!((prob_of(&ms, &sol, &[]) - 0.2).abs() < 1e-6);
    }

    #[test]
    fn boundary_weight_one_forces_certainty() {
        let (ms, sol) = solve(&[(0, 0, 1.0)]);
        assert!(prob_of(&ms, &sol, &[0]) > 0.9999);
        assert!(prob_of(&ms, &sol, &[]) < 1e-4);
    }

    #[test]
    fn no_correspondences_gives_uniform() {
        let sol = solve_max_entropy(0, &[vec![]], &[], &MaxEntConfig::default()).unwrap();
        assert_eq!(sol.probabilities, vec![1.0]);
    }

    #[test]
    fn probabilities_always_simplex() {
        let (_, sol) = solve(&[(0, 0, 0.4), (0, 1, 0.4), (1, 0, 0.2), (1, 1, 0.6)]);
        let sum: f64 = sol.probabilities.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(sol
            .probabilities
            .iter()
            .all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
    }

    #[test]
    fn k22_constraints_satisfied() {
        let edges = [(0, 0, 0.4), (0, 1, 0.4), (1, 0, 0.3), (1, 1, 0.5)];
        let cs = CorrespondenceSet::new(
            edges
                .iter()
                .map(|&(s, t, w)| Correspondence::new(s, t, w))
                .collect(),
        )
        .unwrap();
        let ms = enumerate_matchings(&cs, 10_000).unwrap();
        let targets: Vec<f64> = cs.correspondences().iter().map(|c| c.weight).collect();
        let sol = solve_max_entropy(4, &ms, &targets, &MaxEntConfig::default()).unwrap();
        // Verify Definition 5.1 consistency for each correspondence.
        for (c, &w) in targets.iter().enumerate() {
            let mass: f64 = ms
                .iter()
                .zip(&sol.probabilities)
                .filter(|(m, _)| m.contains(&c))
                .map(|(_, &p)| p)
                .sum();
            assert!((mass - w).abs() < 1e-6, "corr {c}: {mass} vs {w}");
        }
    }

    #[test]
    fn entropy_is_maximal_among_feasible_distributions() {
        // Any consistent hand-built distribution must have entropy <= maxent.
        let (ms, sol) = solve(&[(0, 0, 0.6), (1, 1, 0.5)]);
        // pM2 from the paper: 0.5 both, 0.1 A-only, 0 B-only, 0.4 empty.
        let mut alt = vec![0.0_f64; ms.len()];
        for (k, m) in ms.iter().enumerate() {
            alt[k] = match m.as_slice() {
                [0, 1] => 0.5,
                [0] => 0.1,
                [1] => 0.0,
                [] => 0.4,
                _ => unreachable!(),
            };
        }
        let h_alt: f64 = -alt
            .iter()
            .filter(|&&x| x > 0.0)
            .map(|&x| x * x.ln())
            .sum::<f64>();
        assert!(sol.entropy > h_alt);
    }

    #[test]
    fn reports_iterations_and_residual() {
        let (_, sol) = solve(&[(0, 0, 0.6), (1, 1, 0.5)]);
        assert!(sol.iterations > 0);
        assert!(sol.residual <= 1e-4);
    }
}

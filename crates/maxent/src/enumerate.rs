//! Enumeration of one-to-one schema mappings.
//!
//! §5.2: "for each subset of correspondences, if it corresponds to a
//! one-to-one mapping, we consider the mapping as a possible mapping." A
//! one-to-one mapping uses each source attribute and each mediated attribute
//! at most once, i.e. it is a (partial) matching in the bipartite
//! correspondence graph. The empty mapping is always a candidate.

use crate::{CorrespondenceSet, MaxEntError};

/// A candidate schema mapping: the sorted indices (into the
/// [`CorrespondenceSet`]) of the correspondences it includes.
pub type Matching = Vec<usize>;

/// Enumerate every one-to-one sub-matching of the correspondence graph, the
/// empty matching included, in deterministic order.
///
/// The number of matchings can be exponential in the number of
/// correspondences; `cap` bounds the output size and enumeration aborts with
/// [`MaxEntError::Explosion`] beyond it (UDI keeps instances small by
/// thresholding correspondences and by group decomposition — see
/// [`crate::grouping`]).
pub fn enumerate_matchings(
    corrs: &CorrespondenceSet,
    cap: usize,
) -> Result<Vec<Matching>, MaxEntError> {
    let list = corrs.correspondences();
    let mut out: Vec<Matching> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    let mut used_source: Vec<usize> = Vec::new();
    let mut used_target: Vec<usize> = Vec::new();
    dfs(
        list,
        0,
        &mut current,
        &mut used_source,
        &mut used_target,
        &mut out,
        cap,
    )?;
    Ok(out)
}

fn dfs(
    list: &[crate::Correspondence],
    idx: usize,
    current: &mut Vec<usize>,
    used_source: &mut Vec<usize>,
    used_target: &mut Vec<usize>,
    out: &mut Vec<Matching>,
    cap: usize,
) -> Result<(), MaxEntError> {
    if idx == list.len() {
        if out.len() >= cap {
            return Err(MaxEntError::Explosion { cap });
        }
        out.push(current.clone());
        return Ok(());
    }
    // Branch 1: exclude correspondence `idx`.
    dfs(list, idx + 1, current, used_source, used_target, out, cap)?;
    // Branch 2: include it, if both endpoints are free.
    let Some(c) = list.get(idx) else {
        return Ok(());
    };
    if !used_source.contains(&c.source) && !used_target.contains(&c.target) {
        current.push(idx);
        used_source.push(c.source);
        used_target.push(c.target);
        dfs(list, idx + 1, current, used_source, used_target, out, cap)?;
        current.pop();
        used_source.pop();
        used_target.pop();
    }
    Ok(())
}

/// Build the 0/1 feature matrix `f[c][k] = 1 iff correspondence c ∈ matching
/// k`, used to express the consistency constraints of Definition 5.1.
pub fn feature_matrix(n_corrs: usize, matchings: &[Matching]) -> Vec<Vec<bool>> {
    let mut f = vec![vec![false; matchings.len()]; n_corrs];
    for (k, m) in matchings.iter().enumerate() {
        for &c in m {
            if let Some(slot) = f.get_mut(c).and_then(|row| row.get_mut(k)) {
                *slot = true;
            }
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Correspondence;

    fn set(edges: &[(usize, usize)]) -> CorrespondenceSet {
        CorrespondenceSet::new(
            edges
                .iter()
                .map(|&(s, t)| Correspondence::new(s, t, 0.5))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn empty_graph_has_only_empty_matching() {
        let ms = enumerate_matchings(&set(&[]), 10).unwrap();
        assert_eq!(ms, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn disjoint_edges_yield_all_subsets() {
        // 2 disjoint edges → 4 matchings (independence structure).
        let ms = enumerate_matchings(&set(&[(0, 0), (1, 1)]), 10).unwrap();
        assert_eq!(ms.len(), 4);
        assert!(ms.contains(&vec![]));
        assert!(ms.contains(&vec![0]));
        assert!(ms.contains(&vec![1]));
        assert!(ms.contains(&vec![0, 1]));
    }

    #[test]
    fn conflicting_edges_cannot_cooccur() {
        // Same source attribute on both edges → {0,1} is not a matching.
        let ms = enumerate_matchings(&set(&[(0, 0), (0, 1)]), 10).unwrap();
        assert_eq!(ms.len(), 3);
        assert!(!ms.contains(&vec![0, 1]));
    }

    #[test]
    fn shared_target_also_conflicts() {
        let ms = enumerate_matchings(&set(&[(0, 0), (1, 0)]), 10).unwrap();
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn two_by_two_complete_bipartite() {
        // K_{2,2}: matchings are {}, 4 singletons, 2 perfect = 7.
        let ms = enumerate_matchings(&set(&[(0, 0), (0, 1), (1, 0), (1, 1)]), 100).unwrap();
        assert_eq!(ms.len(), 7);
    }

    #[test]
    fn cap_triggers_explosion() {
        let err = enumerate_matchings(&set(&[(0, 0), (1, 1)]), 3).unwrap_err();
        assert_eq!(err, MaxEntError::Explosion { cap: 3 });
    }

    #[test]
    fn matchings_are_sorted_and_distinct() {
        let ms = enumerate_matchings(&set(&[(0, 0), (1, 1), (2, 2)]), 100).unwrap();
        assert_eq!(ms.len(), 8);
        for m in &ms {
            let mut sorted = m.clone();
            sorted.sort_unstable();
            assert_eq!(&sorted, m);
        }
        let distinct: std::collections::HashSet<_> = ms.iter().cloned().collect();
        assert_eq!(distinct.len(), ms.len());
    }

    #[test]
    fn feature_matrix_marks_membership() {
        let ms = vec![vec![], vec![0], vec![0, 1]];
        let f = feature_matrix(2, &ms);
        assert_eq!(f[0], vec![false, true, true]);
        assert_eq!(f[1], vec![false, false, true]);
    }
}

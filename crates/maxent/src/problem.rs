//! Weighted correspondences and the Theorem 5.2 normalization.

use crate::MaxEntError;

/// A weighted correspondence `C_{i,j}`: source attribute `i` matches
/// mediated attribute `j` with degree `weight ∈ (0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Correspondence {
    /// Index of the source attribute within its schema.
    pub source: usize,
    /// Index of the mediated attribute within the mediated schema.
    pub target: usize,
    /// Semantic-similarity weight `p_{i,j}`.
    pub weight: f64,
}

impl Correspondence {
    /// Construct a correspondence. Weight validity is checked when the
    /// correspondence enters a [`CorrespondenceSet`].
    pub fn new(source: usize, target: usize, weight: f64) -> Correspondence {
        Correspondence {
            source,
            target,
            weight,
        }
    }
}

/// A validated set of weighted correspondences between one source schema and
/// one mediated schema.
///
/// Theorem 5.2: a consistent p-mapping exists iff every row sum
/// `Σ_j p_{i,j}` and every column sum `Σ_i p_{i,j}` is at most 1. The
/// [`CorrespondenceSet::normalized`] constructor divides all weights by
/// `M′ = max(max_i Σ_j p_{i,j}, max_j Σ_i p_{i,j})` whenever `M′ > 1`,
/// which the theorem shows restores both conditions.
#[derive(Debug, Clone, Default)]
pub struct CorrespondenceSet {
    corrs: Vec<Correspondence>,
}

impl CorrespondenceSet {
    /// Validate and wrap a list of correspondences. Rejects weights outside
    /// `(0, 1]` and duplicate `(source, target)` pairs. Does **not** check
    /// the Theorem 5.2 sum conditions — use [`CorrespondenceSet::normalized`]
    /// when the weights come from raw similarity sums.
    pub fn new(corrs: Vec<Correspondence>) -> Result<CorrespondenceSet, MaxEntError> {
        for (i, c) in corrs.iter().enumerate() {
            if !(c.weight > 0.0 && c.weight <= 1.0) || c.weight.is_nan() {
                return Err(MaxEntError::InvalidWeight {
                    source: c.source,
                    target: c.target,
                    weight: c.weight,
                });
            }
            let dup = corrs.get(..i).is_some_and(|head| {
                head.iter()
                    .any(|d| d.source == c.source && d.target == c.target)
            });
            if dup {
                return Err(MaxEntError::DuplicateCorrespondence {
                    source: c.source,
                    target: c.target,
                });
            }
        }
        Ok(CorrespondenceSet { corrs })
    }

    /// Build a set from raw (possibly super-unit) weights, applying the
    /// Theorem 5.2 normalization. Non-positive and NaN weights are dropped
    /// (they denote "no correspondence" after thresholding).
    pub fn normalized(raw: Vec<Correspondence>) -> Result<CorrespondenceSet, MaxEntError> {
        let mut kept: Vec<Correspondence> = raw
            .into_iter()
            .filter(|c| c.weight > 0.0 && !c.weight.is_nan())
            .collect();
        let m_prime = normalization_factor(&kept);
        if m_prime > 1.0 {
            for c in &mut kept {
                c.weight /= m_prime;
            }
        }
        // Guard against floating drift leaving a weight a hair above 1.
        for c in &mut kept {
            if c.weight > 1.0 {
                c.weight = 1.0;
            }
        }
        CorrespondenceSet::new(kept)
    }

    /// The correspondences, in insertion order.
    pub fn correspondences(&self) -> &[Correspondence] {
        &self.corrs
    }

    /// Number of correspondences.
    pub fn len(&self) -> usize {
        self.corrs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.corrs.is_empty()
    }

    /// Maximum row/column weight sum `M′` (see Theorem 5.2).
    pub fn normalization_factor(&self) -> f64 {
        normalization_factor(&self.corrs)
    }

    /// Check the Theorem 5.2 feasibility conditions (all row and column
    /// sums ≤ 1, with a small tolerance for floating error).
    pub fn is_feasible(&self) -> bool {
        self.normalization_factor() <= 1.0 + 1e-9
    }
}

/// `M′ = max(max_i Σ_j p_{i,j}, max_j Σ_i p_{i,j})`; `0` for an empty set.
fn normalization_factor(corrs: &[Correspondence]) -> f64 {
    use std::collections::BTreeMap;
    let mut row: BTreeMap<usize, f64> = BTreeMap::new();
    let mut col: BTreeMap<usize, f64> = BTreeMap::new();
    for c in corrs {
        *row.entry(c.source).or_insert(0.0) += c.weight;
        *col.entry(c.target).or_insert(0.0) += c.weight;
    }
    row.values()
        .chain(col.values())
        .fold(0.0_f64, |m, &v| m.max(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_bad_weights() {
        for w in [0.0, -0.1, 1.5, f64::NAN] {
            let r = CorrespondenceSet::new(vec![Correspondence::new(0, 0, w)]);
            assert!(
                matches!(r, Err(MaxEntError::InvalidWeight { .. })),
                "weight {w}"
            );
        }
    }

    #[test]
    fn rejects_duplicates() {
        let r = CorrespondenceSet::new(vec![
            Correspondence::new(0, 1, 0.5),
            Correspondence::new(0, 1, 0.6),
        ]);
        assert!(matches!(
            r,
            Err(MaxEntError::DuplicateCorrespondence {
                source: 0,
                target: 1
            })
        ));
    }

    #[test]
    fn normalization_factor_is_max_row_or_col_sum() {
        let cs = CorrespondenceSet::new(vec![
            Correspondence::new(0, 0, 0.9),
            Correspondence::new(0, 1, 0.08),
            Correspondence::new(1, 1, 0.7),
        ])
        .unwrap();
        // Row sums: a0: 0.98, a1: 0.7. Col sums: t0: 0.9, t1: 0.78.
        assert!((cs.normalization_factor() - 0.98).abs() < 1e-12);
        assert!(cs.is_feasible());
    }

    #[test]
    fn normalized_divides_when_oversubscribed() {
        let cs = CorrespondenceSet::normalized(vec![
            Correspondence::new(0, 0, 1.6),
            Correspondence::new(0, 1, 0.8),
        ])
        .unwrap();
        // M' = 2.4; weights become 1.6/2.4 and 0.8/2.4.
        assert!(cs.is_feasible());
        let w: Vec<f64> = cs.correspondences().iter().map(|c| c.weight).collect();
        assert!((w[0] - 1.6 / 2.4).abs() < 1e-12);
        assert!((w[1] - 0.8 / 2.4).abs() < 1e-12);
    }

    #[test]
    fn normalized_drops_nonpositive_and_keeps_feasible_untouched() {
        let cs = CorrespondenceSet::normalized(vec![
            Correspondence::new(0, 0, 0.5),
            Correspondence::new(1, 1, -0.2),
            Correspondence::new(2, 2, f64::NAN),
        ])
        .unwrap();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs.correspondences()[0].weight, 0.5);
    }

    #[test]
    fn empty_set_is_feasible() {
        let cs = CorrespondenceSet::new(vec![]).unwrap();
        assert!(cs.is_empty());
        assert_eq!(cs.normalization_factor(), 0.0);
        assert!(cs.is_feasible());
    }

    proptest! {
        /// Theorem 5.2 part 2 as a property: normalization always restores
        /// feasibility, whatever the raw weights.
        #[test]
        fn normalization_always_yields_feasible(
            edges in proptest::collection::vec((0usize..5, 0usize..5, 0.01f64..3.0), 0..15)
        ) {
            let mut seen = std::collections::HashSet::new();
            let raw: Vec<Correspondence> = edges
                .into_iter()
                .filter(|(s, t, _)| seen.insert((*s, *t)))
                .map(|(s, t, w)| Correspondence::new(s, t, w))
                .collect();
            let cs = CorrespondenceSet::normalized(raw).unwrap();
            prop_assert!(cs.is_feasible());
        }
    }
}

#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Maximum-entropy p-mapping construction (§5 of the SIGMOD'08 paper).
//!
//! Given weighted attribute correspondences between a source schema and a
//! mediated schema, there are infinitely many probabilistic mappings
//! consistent with the weights. The paper (which used the commercial Knitro
//! solver) picks the distribution with **maximum entropy** — the one that
//! adds no information beyond the correspondences themselves. This crate is
//! a from-scratch replacement:
//!
//! - [`Correspondence`] / [`CorrespondenceSet`]: weighted bipartite edges
//!   between source-attribute and mediated-attribute indices, with the
//!   Theorem 5.2 normalization that guarantees a consistent p-mapping exists;
//! - [`enumerate_matchings`]: all one-to-one sub-matchings of the
//!   correspondence graph (each is a candidate schema mapping, including the
//!   empty mapping);
//! - [`solve_max_entropy`]: the convex program
//!   `maximize Σ −p_k log p_k  s.t.  Σ p_k = 1,  Σ_{k: c∈m_k} p_k = w_c`,
//!   solved in the exponential-family dual by gradient descent with
//!   backtracking line search;
//! - [`grouping`]: connected-component decomposition of the correspondence
//!   graph, so entropy maximization runs per independent group and the joint
//!   distribution is the product — the "group p-mapping" reduction the paper
//!   cites for keeping the search space tractable.
//!
//! # Quickstart
//!
//! Reproduce the worked example of §5.2 — correspondences `(A, A′) = 0.6`
//! and `(B, B′) = 0.5` must yield the independent product distribution
//! `pM1`, not the correlated `pM2`:
//!
//! ```
//! use udi_maxent::{Correspondence, CorrespondenceSet, MaxEntConfig, solve_correspondences};
//!
//! let corrs = CorrespondenceSet::new(vec![
//!     Correspondence::new(0, 0, 0.6), // (A, A')
//!     Correspondence::new(1, 1, 0.5), // (B, B')
//! ]).unwrap();
//! let dist = solve_correspondences(&corrs, &MaxEntConfig::default()).unwrap();
//! let joint = dist.expand(100).unwrap();
//! // {(A,A'),(B,B')}: .3,  {(A,A')}: .3,  {(B,B')}: .2,  {}: .2
//! let p_both = joint.iter()
//!     .find(|(m, _)| m.len() == 2)
//!     .map(|(_, p)| *p)
//!     .unwrap();
//! assert!((p_both - 0.3).abs() < 1e-4);
//! ```

pub mod cache;
pub mod enumerate;
pub mod grouping;
pub mod problem;
pub mod solver;

pub use cache::SolveCache;
pub use enumerate::{enumerate_matchings, Matching};
pub use grouping::{
    solve_correspondences, solve_correspondences_cached, GroupedDistribution, MappingFactor,
};
pub use problem::{Correspondence, CorrespondenceSet};
pub use solver::{solve_max_entropy, MaxEntConfig, MaxEntSolution};

/// Errors from p-mapping construction.
#[derive(Debug, Clone, PartialEq)]
pub enum MaxEntError {
    /// A correspondence weight fell outside `(0, 1]`.
    InvalidWeight {
        /// Source-attribute index of the offending correspondence.
        source: usize,
        /// Mediated-attribute index of the offending correspondence.
        target: usize,
        /// The rejected weight.
        weight: f64,
    },
    /// The same `(source, target)` pair appeared twice.
    DuplicateCorrespondence {
        /// Source-attribute index.
        source: usize,
        /// Mediated-attribute index.
        target: usize,
    },
    /// Enumerating one-to-one matchings (or expanding a product
    /// distribution) exceeded the configured cap — the state explosion the
    /// paper reports for the `UnionAll` baseline on the Bib domain.
    Explosion {
        /// The cap that was exceeded.
        cap: usize,
    },
    /// The solver failed to reach the requested tolerance.
    DidNotConverge {
        /// Residual infinity-norm of the constraint violations at stop.
        residual: f64,
    },
}

impl std::fmt::Display for MaxEntError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaxEntError::InvalidWeight {
                source,
                target,
                weight,
            } => {
                write!(
                    f,
                    "correspondence ({source},{target}) has weight {weight} outside (0,1]"
                )
            }
            MaxEntError::DuplicateCorrespondence { source, target } => {
                write!(f, "duplicate correspondence ({source},{target})")
            }
            MaxEntError::Explosion { cap } => {
                write!(f, "mapping enumeration exceeded cap of {cap}")
            }
            MaxEntError::DidNotConverge { residual } => {
                write!(
                    f,
                    "max-entropy solver stopped with constraint residual {residual:.3e}"
                )
            }
        }
    }
}

impl std::error::Error for MaxEntError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages() {
        let e = MaxEntError::InvalidWeight {
            source: 1,
            target: 2,
            weight: 1.5,
        };
        assert!(e.to_string().contains("1.5"));
        let e = MaxEntError::Explosion { cap: 10 };
        assert!(e.to_string().contains("10"));
        let e = MaxEntError::DidNotConverge { residual: 0.25 };
        assert!(e.to_string().contains("2.5"));
        let e = MaxEntError::DuplicateCorrespondence {
            source: 0,
            target: 0,
        };
        assert!(e.to_string().contains("duplicate"));
    }
}

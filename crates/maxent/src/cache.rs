//! Canonical-form memoization of per-group max-entropy solves.
//!
//! Setup solves one OPT instance per connected correspondence group, per
//! (source, mediated-schema) pair — and across a large corpus most of those
//! instances are *structurally identical*: a source with attributes `{name,
//! phone}` against cluster `{name}` produces the same bipartite shape and
//! weights as hundreds of its siblings. Enumeration and the convex solve
//! depend only on
//!
//! 1. the **equality pattern** of source/target indices (which edges share
//!    an endpoint), and
//! 2. the exact **weight vector**,
//!
//! never on the numeric values of the indices themselves. Relabeling both
//! sides by first appearance therefore yields a canonical key: two groups
//! with equal keys have identical matching structure and identical solved
//! probabilities (the solver is deterministic). [`SolveCache`] exploits that
//! to turn repeated group solves into hash lookups; `udi-core`'s incremental
//! engine shares one cache across the whole catalog and across refreshes.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use udi_obs::Recorder;

use crate::enumerate::enumerate_matchings;
use crate::problem::CorrespondenceSet;
use crate::solver::{solve_max_entropy, MaxEntConfig, MaxEntSolution};
use crate::{Correspondence, Matching, MaxEntError};

/// Canonical form of one correspondence group: `(source, target, weight
/// bits)` per edge, both endpoint sides relabeled by order of first
/// appearance. Equal keys ⇒ isomorphic OPT instances ⇒ identical solutions.
type CanonKey = Vec<(u32, u32, u64)>;

/// A solved group, stored against its canonical key. Matchings are lists of
/// **local** edge indices (positions within the group's correspondence
/// list), so they transfer verbatim between isomorphic groups.
#[derive(Debug, Clone)]
struct CachedGroup {
    matchings_local: Vec<Matching>,
    probabilities: Vec<f64>,
}

/// Thread-safe memo table for per-group max-entropy solutions.
///
/// One cache must only ever see solves performed under one [`MaxEntConfig`]:
/// the config is deliberately not part of the key (the incremental engine
/// holds it constant for the lifetime of the cache).
#[derive(Debug, Default)]
pub struct SolveCache {
    // udi-audit: allow(deterministic-iteration, "content-addressed memo queried by canonical key; never iterated")
    map: Mutex<HashMap<CanonKey, CachedGroup>>,
    /// Entry count mirror of `map`, maintained at insert time so
    /// [`SolveCache::len`] (a serving-layer stats read) never takes the
    /// memo lock.
    entries: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Telemetry: `maxent.solve.hit`/`maxent.solve.miss` counters plus
    /// per-fresh-solve `maxent.iterations`/`maxent.residual` observations.
    /// Disabled by default; the hit/miss atomics above stay authoritative
    /// regardless.
    recorder: Recorder,
}

/// A memo entry is plain data: a poisoned mutex only means another worker
/// panicked mid-insert, and the surviving map is still a valid memo —
/// recover it rather than cascading the panic across threads.
fn recover<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Clone for SolveCache {
    /// Deep-copies the memo table (entries are plain data) and carries the
    /// hit/miss tallies and recorder over, so a cloned engine snapshot
    /// starts warm. Used by the serve layer's clone-on-refresh path.
    ///
    /// Non-blocking by design: cloning sits on the serving layer's
    /// certified read path (snapshot cloning), so a contended memo mutex
    /// must not stall it. `try_lock` either wins immediately or yields a
    /// cold cache — an empty memo is still a correct memo.
    fn clone(&self) -> SolveCache {
        let map = match self.map.try_lock() {
            Ok(g) => g.clone(),
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner().clone(),
            // udi-audit: allow(deterministic-iteration, "cold fallback of the content-addressed memo; never iterated")
            Err(std::sync::TryLockError::WouldBlock) => HashMap::new(),
        };
        SolveCache {
            entries: AtomicU64::new(map.len() as u64),
            map: Mutex::new(map),
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)),
            misses: AtomicU64::new(self.misses.load(Ordering::Relaxed)),
            recorder: self.recorder.clone(),
        }
    }
}

impl SolveCache {
    /// Empty cache.
    pub fn new() -> SolveCache {
        SolveCache::default()
    }

    /// Route telemetry into `recorder`. Pass [`Recorder::disabled`] to turn
    /// it back off.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Number of group solves answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of group solves that ran the enumerator + solver.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct canonical instances stored. Reads the atomic
    /// mirror, not the map — lock-free by design (certified read path).
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed) as usize
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Canonical key of one group's correspondence list.
    fn canonicalize(group: &[Correspondence]) -> CanonKey {
        let mut src_ids: BTreeMap<usize, u32> = BTreeMap::new();
        let mut tgt_ids: BTreeMap<usize, u32> = BTreeMap::new();
        group
            .iter()
            .map(|c| {
                let ns = src_ids.len() as u32;
                let s = *src_ids.entry(c.source).or_insert(ns);
                let nt = tgt_ids.len() as u32;
                let t = *tgt_ids.entry(c.target).or_insert(nt);
                (s, t, c.weight.to_bits())
            })
            .collect()
    }

    /// Solve one group (given by its local correspondence list), consulting
    /// the memo table. Returns `(matchings over local indices,
    /// probabilities)`. Errors are never cached.
    fn solve_group(
        &self,
        local: &[Correspondence],
        config: &MaxEntConfig,
    ) -> Result<(Vec<Matching>, Vec<f64>), MaxEntError> {
        let key = SolveCache::canonicalize(local);
        if let Some(hit) = recover(self.map.lock()).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.recorder.count("maxent.solve.hit", 1);
            return Ok((hit.matchings_local.clone(), hit.probabilities.clone()));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.recorder.count("maxent.solve.miss", 1);
        let (matchings, sol) = solve_group_fresh(local, config)?;
        if self.recorder.is_enabled() {
            self.recorder
                .observe("maxent.iterations", sol.iterations as f64);
            self.recorder.observe("maxent.residual", sol.residual);
        }
        let probabilities = sol.probabilities;
        let prior = recover(self.map.lock()).insert(
            key,
            CachedGroup {
                matchings_local: matchings.clone(),
                probabilities: probabilities.clone(),
            },
        );
        if prior.is_none() {
            self.entries.fetch_add(1, Ordering::Relaxed);
        }
        Ok((matchings, probabilities))
    }
}

/// Enumerate + solve one group with no caching. The full solution is
/// returned so the caller can report solver diagnostics (iterations,
/// residual) before discarding them.
fn solve_group_fresh(
    local: &[Correspondence],
    config: &MaxEntConfig,
) -> Result<(Vec<Matching>, MaxEntSolution), MaxEntError> {
    let local_set = CorrespondenceSet::new(local.to_vec())?;
    let matchings = enumerate_matchings(&local_set, config.matching_cap)?;
    let targets: Vec<f64> = local.iter().map(|c| c.weight).collect();
    let sol = solve_max_entropy(local.len(), &matchings, &targets, config)?;
    Ok((matchings, sol))
}

pub(crate) fn solve_group_via(
    cache: Option<&SolveCache>,
    local: &[Correspondence],
    config: &MaxEntConfig,
) -> Result<(Vec<Matching>, Vec<f64>), MaxEntError> {
    match cache {
        Some(c) => c.solve_group(local, config),
        None => solve_group_fresh(local, config).map(|(m, sol)| (m, sol.probabilities)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::{solve_correspondences, solve_correspondences_cached};

    fn cs(edges: &[(usize, usize, f64)]) -> CorrespondenceSet {
        CorrespondenceSet::new(
            edges
                .iter()
                .map(|&(s, t, w)| Correspondence::new(s, t, w))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn canonical_key_ignores_index_values() {
        let a = [
            Correspondence::new(3, 7, 0.5),
            Correspondence::new(3, 9, 0.25),
        ];
        let b = [
            Correspondence::new(0, 1, 0.5),
            Correspondence::new(0, 2, 0.25),
        ];
        assert_eq!(SolveCache::canonicalize(&a), SolveCache::canonicalize(&b));
    }

    #[test]
    fn canonical_key_distinguishes_structure_and_weights() {
        // Shared source vs disjoint edges.
        let shared = [
            Correspondence::new(0, 0, 0.5),
            Correspondence::new(0, 1, 0.5),
        ];
        let disjoint = [
            Correspondence::new(0, 0, 0.5),
            Correspondence::new(1, 1, 0.5),
        ];
        assert_ne!(
            SolveCache::canonicalize(&shared),
            SolveCache::canonicalize(&disjoint)
        );
        // Same structure, different weight.
        let reweighted = [
            Correspondence::new(0, 0, 0.5),
            Correspondence::new(0, 1, 0.25),
        ];
        assert_ne!(
            SolveCache::canonicalize(&shared),
            SolveCache::canonicalize(&reweighted)
        );
    }

    #[test]
    fn cached_solve_matches_fresh_solve_exactly() {
        let set = cs(&[(0, 0, 0.6), (0, 1, 0.3), (1, 2, 0.5), (4, 4, 0.9)]);
        let cache = SolveCache::new();
        let cfg = MaxEntConfig::default();
        let fresh = solve_correspondences(&set, &cfg).unwrap();
        let warm = solve_correspondences_cached(&set, &cfg, Some(&cache)).unwrap();
        let again = solve_correspondences_cached(&set, &cfg, Some(&cache)).unwrap();
        for d in [&warm, &again] {
            assert_eq!(d.factors().len(), fresh.factors().len());
            for (fa, fb) in fresh.factors().iter().zip(d.factors()) {
                assert_eq!(fa.corr_indices, fb.corr_indices);
                assert_eq!(fa.matchings, fb.matchings);
                assert_eq!(
                    fa.probabilities, fb.probabilities,
                    "bit-identical probabilities"
                );
            }
        }
        assert!(
            cache.hits() >= 2,
            "second pass must hit, got {}",
            cache.hits()
        );
    }

    #[test]
    fn isomorphic_groups_share_one_entry() {
        // Two disjoint groups with identical shape and weights: the second
        // is answered from the first's entry within a single solve.
        let set = cs(&[(0, 0, 0.4), (0, 1, 0.3), (5, 5, 0.4), (5, 6, 0.3)]);
        let cache = SolveCache::new();
        let dist =
            solve_correspondences_cached(&set, &MaxEntConfig::default(), Some(&cache)).unwrap();
        assert_eq!(dist.factors().len(), 2);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
        let [a, b] = dist.factors() else {
            panic!("two factors")
        };
        assert_eq!(a.probabilities, b.probabilities);
    }

    #[test]
    fn recorder_sees_hits_misses_and_solver_stats() {
        use std::sync::Arc;
        use udi_obs::MemorySink;
        // Two isomorphic groups: one fresh solve, one cache hit.
        let set = cs(&[(0, 0, 0.4), (0, 1, 0.3), (5, 5, 0.4), (5, 6, 0.3)]);
        let sink = Arc::new(MemorySink::new());
        let mut cache = SolveCache::new();
        cache.set_recorder(Recorder::new(sink.clone()));
        solve_correspondences_cached(&set, &MaxEntConfig::default(), Some(&cache)).unwrap();
        assert_eq!(sink.counter_total("maxent.solve.miss"), 1);
        assert_eq!(sink.counter_total("maxent.solve.hit"), 1);
        let iters = sink.histogram("maxent.iterations");
        assert_eq!(iters.count(), 1, "one fresh solve observed");
        assert!(iters.min().unwrap() >= 1.0);
        assert_eq!(sink.histogram("maxent.residual").count(), 1);
    }

    #[test]
    fn errors_are_not_cached() {
        // A large complete bipartite group overflows a tiny matching cap.
        let edges: Vec<(usize, usize, f64)> = (0..5)
            .flat_map(|s| (0..5).map(move |t| (s, t, 0.19)))
            .collect();
        let set = cs(&edges);
        let cache = SolveCache::new();
        let tiny = MaxEntConfig {
            matching_cap: 4,
            ..MaxEntConfig::default()
        };
        assert!(matches!(
            solve_correspondences_cached(&set, &tiny, Some(&cache)),
            Err(MaxEntError::Explosion { .. })
        ));
        assert!(cache.is_empty(), "failed solves must not be stored");
    }
}

//! Query-workload generation (§7.1).
//!
//! "For each domain, we chose 10 queries, each containing one to four
//! attributes in the SELECT clause and zero to three predicates in the
//! WHERE clause. ... When we selected the queries, we varied selectivity of
//! the predicates and likelihood of the attributes being mapped correctly
//! to cover all typical cases."

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use udi_datagen::GeneratedDomain;
use udi_query::{CompareOp, Predicate, Query};
use udi_store::Value;

/// Generate a deterministic workload of `n` queries over a generated
/// corpus.
///
/// The paper poses queries over the *exposed* mediated schema, whose
/// representative names are the most frequent labels — i.e. the canonical
/// variant of each concept. The candidate pool is therefore: the canonical
/// variant of every concept (when frequent), plus frequent *ambiguous*
/// labels (`phone`, `address`), which are exactly the attributes "with
/// varied likelihood of being mapped correctly". A query never references
/// two different names of the same concept (no real user would write
/// `SELECT company ... WHERE employer = ...`). Predicate literals are
/// sampled from actual cell values so selectivity varies realistically.
pub fn generate_workload(gen: &GeneratedDomain, n: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = attribute_pool(gen);
    assert!(
        !pool.is_empty(),
        "corpus has no frequent canonical attributes"
    );
    let mut queries = Vec::with_capacity(n);
    let mut attempts = 0;
    while queries.len() < n && attempts < n * 50 {
        attempts += 1;
        if let Some(q) = generate_one(gen, &pool, &mut rng) {
            queries.push(q);
        }
    }
    assert_eq!(queries.len(), n, "workload generation starved");
    queries
}

/// `(concept key, attribute name, weight)` candidates. Ambiguous names get
/// a synthetic key covering all their concepts so they never co-occur with
/// a sibling variant. Weights are cubed concept popularities: hand-picked
/// workloads (like the paper's) query the central attributes of a domain
/// far more often than its long tail.
fn attribute_pool(gen: &GeneratedDomain) -> Vec<(String, String, f64)> {
    let mut pool: Vec<(String, String, f64)> = Vec::new();
    for c in &gen.concepts {
        let Some(canonical) = c.variants.first().copied() else {
            continue;
        };
        if gen.catalog.attribute_frequency(canonical) >= 0.10 && !gen.truth.is_ambiguous(canonical)
        {
            pool.push((c.key.to_owned(), canonical.to_owned(), c.popularity.powi(3)));
        }
    }
    // Ambiguous frequent labels, keyed by the union of their concepts.
    let concepts = &gen.concepts;
    for name in gen.truth.attribute_names() {
        if gen.truth.is_ambiguous(name) && gen.catalog.attribute_frequency(name) >= 0.10 {
            let keys: Vec<&str> = gen.truth.concepts_of(name).into_iter().collect();
            let pop = concepts
                .iter()
                .filter(|c| keys.contains(&c.key))
                .map(|c| c.popularity)
                .fold(0.0_f64, f64::max);
            pool.push((keys.join("|"), name.to_owned(), pop.powi(3)));
        }
    }
    pool
}

fn generate_one(
    gen: &GeneratedDomain,
    pool: &[(String, String, f64)],
    rng: &mut StdRng,
) -> Option<Query> {
    let n_select = rng.gen_range(1..=4.min(pool.len()));
    let n_pred = rng.gen_range(0..=3);

    // Weighted sampling without replacement for the select list.
    let mut remaining: Vec<&(String, String, f64)> = pool.iter().collect();
    let mut select: Vec<String> = Vec::new();
    let mut used_keys: Vec<String> = Vec::new();
    while select.len() < n_select && !remaining.is_empty() {
        let total: f64 = remaining.iter().map(|(_, _, w)| w).sum();
        let mut roll = rng.gen_range(0.0..total);
        let mut idx = remaining.len() - 1;
        for (i, (_, _, w)) in remaining.iter().enumerate() {
            if roll < *w {
                idx = i;
                break;
            }
            roll -= w;
        }
        let (key, name, _) = remaining.remove(idx);
        if used_keys.iter().any(|u| overlapping(u, key)) {
            continue;
        }
        used_keys.push(key.clone());
        select.push(name.clone());
    }
    if select.is_empty() {
        return None;
    }

    let mut predicates = Vec::new();
    for _ in 0..n_pred {
        let Some((key, attr, _)) = pool.get(rng.gen_range(0..pool.len())) else {
            continue;
        };
        // A predicate may reuse a select attribute (same name) but must not
        // introduce a different name for an already-referenced concept.
        if !select.contains(attr) && used_keys.iter().any(|u| overlapping(u, key)) {
            continue;
        }
        if !used_keys.contains(key) {
            used_keys.push(key.clone());
        }
        let Some(value) = sample_value(gen, attr, rng) else {
            continue;
        };
        let (op, value) = pick_op(&value, rng);
        predicates.push(Predicate {
            attribute: attr.clone(),
            op,
            value,
        });
    }

    Some(Query {
        select,
        predicates,
        from: "T".to_owned(),
    })
}

/// Two pool keys conflict when they share a concept (an ambiguous key is a
/// `|`-joined union).
fn overlapping(a: &str, b: &str) -> bool {
    a.split('|').any(|x| b.split('|').any(|y| x == y))
}

/// Sample a non-null cell value of some source column named `attr`.
fn sample_value(gen: &GeneratedDomain, attr: &str, rng: &mut StdRng) -> Option<Value> {
    let sources = gen.catalog.sources_with_attribute(attr);
    for _ in 0..8 {
        let sid = *sources.choose(rng)?;
        let table = gen.catalog.source(sid).ok()?;
        if table.row_count() == 0 {
            continue;
        }
        let row = rng.gen_range(0..table.row_count());
        let v = table.cell(row, attr)?;
        if !v.is_null() {
            return Some(v.clone());
        }
    }
    None
}

/// Choose an operator suited to the value type; LIKE patterns are built
/// from a substring of the text value.
fn pick_op(value: &Value, rng: &mut StdRng) -> (CompareOp, Value) {
    match value {
        Value::Int(_) | Value::Float(_) => {
            let ops = [
                CompareOp::Eq,
                CompareOp::Lt,
                CompareOp::Le,
                CompareOp::Gt,
                CompareOp::Ge,
            ];
            {
                let op = ops
                    .get(rng.gen_range(0..ops.len()))
                    .copied()
                    .unwrap_or(CompareOp::Eq);
                (op, value.clone())
            }
        }
        Value::Text(s) => {
            match rng.gen_range(0..4) {
                0 => (CompareOp::Eq, value.clone()),
                1 => (CompareOp::Ne, value.clone()),
                2 => {
                    // LIKE with a word of the value.
                    let words: Vec<&str> = s.split_whitespace().collect();
                    let w = words.choose(rng).copied().unwrap_or(s.as_str());
                    (CompareOp::Like, Value::text(format!("%{w}%")))
                }
                _ => {
                    // Range comparison on text exercises the lexicographic
                    // path (including the stringly-number artifact).
                    let ops = [CompareOp::Lt, CompareOp::Ge];
                    {
                        let op = ops
                            .get(rng.gen_range(0..ops.len()))
                            .copied()
                            .unwrap_or(CompareOp::Eq);
                        (op, value.clone())
                    }
                }
            }
        }
        Value::Null => (CompareOp::Eq, Value::Null),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udi_datagen::{generate, Domain, GenConfig};

    fn corpus() -> GeneratedDomain {
        generate(
            Domain::Movie,
            &GenConfig {
                n_sources: Some(30),
                ..GenConfig::default()
            },
        )
    }

    #[test]
    fn workload_has_requested_size_and_shape() {
        let gen = corpus();
        let qs = generate_workload(&gen, 10, 7);
        assert_eq!(qs.len(), 10);
        for q in &qs {
            assert!((1..=4).contains(&q.select.len()), "{q}");
            assert!(q.predicates.len() <= 3, "{q}");
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let gen = corpus();
        let a = generate_workload(&gen, 10, 7);
        let b = generate_workload(&gen, 10, 7);
        assert_eq!(a, b);
        let c = generate_workload(&gen, 10, 8);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn select_attributes_are_frequent() {
        let gen = corpus();
        let qs = generate_workload(&gen, 10, 3);
        for q in &qs {
            for a in &q.select {
                assert!(
                    gen.catalog.attribute_frequency(a) >= 0.10,
                    "{a} below frequency threshold"
                );
            }
        }
    }

    #[test]
    fn some_queries_have_predicates() {
        let gen = corpus();
        let qs = generate_workload(&gen, 20, 11);
        assert!(qs.iter().any(|q| !q.predicates.is_empty()));
        assert!(qs.iter().any(|q| q.predicates.is_empty()));
    }

    #[test]
    fn predicate_values_come_from_the_data() {
        let gen = corpus();
        let qs = generate_workload(&gen, 20, 5);
        for q in &qs {
            for p in &q.predicates {
                assert!(!p.value.is_null(), "{q}");
            }
        }
    }
}

//! Precision / recall / F-measure over answer lists (§7.1).
//!
//! The paper's definitions: with `Ā` the returned answers and `B̄` the
//! golden standard, `P = |Ā ∩ B̄| / |Ā|`, `R = |Ā ∩ B̄| / |B̄|`,
//! `F = 2PR / (P + R)`. Duplicates are *not* removed before measuring
//! ("to be fair to these approaches"), so `Ā` is the flat per-source answer
//! list; membership in `B̄` is by tuple value.

use std::collections::HashSet;

use udi_query::AnswerTuple;
use udi_store::Row;

/// Precision and recall of one query's answers.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Metrics {
    /// Fraction of returned answers that are correct.
    pub precision: f64,
    /// Fraction of golden answers that were returned.
    pub recall: f64,
}

impl Metrics {
    /// Harmonic mean of precision and recall (0 when both are 0).
    pub fn f_measure(&self) -> f64 {
        if udi_schema::float::approx_zero(self.precision + self.recall) {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }

    /// Mean of a set of per-query metrics (the paper reports "the average
    /// precision, recall and F-measure of the returned results").
    pub fn average(all: &[Metrics]) -> Metrics {
        if all.is_empty() {
            return Metrics::default();
        }
        let n = all.len() as f64;
        Metrics {
            precision: all.iter().map(|m| m.precision).sum::<f64>() / n,
            recall: all.iter().map(|m| m.recall).sum::<f64>() / n,
        }
    }
}

/// Score a flat answer list against a golden answer list.
///
/// Conventions for degenerate cases: an empty answer list has precision 1
/// (it returned nothing wrong); an empty golden list has recall 1 (there was
/// nothing to find).
pub fn score<'a, A, G>(answers: A, golden: G) -> Metrics
where
    A: IntoIterator<Item = &'a AnswerTuple>,
    G: IntoIterator<Item = &'a Row>,
{
    let golden_set: HashSet<&Row> = golden.into_iter().collect();
    let mut n_answers = 0usize;
    let mut n_correct = 0usize;
    let mut found: HashSet<&Row> = HashSet::new();
    for a in answers {
        n_answers += 1;
        if let Some(&g) = golden_set.get(&a.values) {
            n_correct += 1;
            found.insert(g);
        }
    }
    let precision = if n_answers == 0 {
        1.0
    } else {
        n_correct as f64 / n_answers as f64
    };
    let recall = if golden_set.is_empty() {
        1.0
    } else {
        found.len() as f64 / golden_set.len() as f64
    };
    Metrics { precision, recall }
}

/// One point of a recall–precision curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RpPoint {
    /// Recall achieved by the top-K prefix.
    pub recall: f64,
    /// Precision of that prefix.
    pub precision: f64,
}

/// Compute the R-P curve of a ranked, deduplicated answer list (§7.4,
/// Figure 6): "recall was varied on the x-axis by taking top-K answers
/// based on probabilities"; for each K the precision of the top-K prefix is
/// reported. Returns one point per K in `1..=len`.
pub fn rp_curve(ranked: &[AnswerTuple], golden: &[Row]) -> Vec<RpPoint> {
    let golden_set: HashSet<&Row> = golden.iter().collect();
    let mut out = Vec::with_capacity(ranked.len());
    let mut correct = 0usize;
    for (k, t) in ranked.iter().enumerate() {
        if golden_set.contains(&t.values) {
            correct += 1;
        }
        let precision = correct as f64 / (k + 1) as f64;
        let recall = if golden_set.is_empty() {
            1.0
        } else {
            correct as f64 / golden_set.len() as f64
        };
        out.push(RpPoint { recall, precision });
    }
    out
}

/// Interpolate the precision of a curve at a recall level: the maximum
/// precision among points with recall ≥ `r` (standard IR interpolation),
/// or 0 if the curve never reaches `r`.
pub fn precision_at_recall(curve: &[RpPoint], r: f64) -> f64 {
    curve
        .iter()
        .filter(|p| p.recall >= r - 1e-12)
        .map(|p| p.precision)
        .fold(0.0, f64::max)
}

/// Top-k precision (§3: the system should "rank correct answers higher",
/// obtaining "high precision, recall and high Top-k precision"): the
/// fraction of the `k` highest-ranked answers that are correct. When fewer
/// than `k` answers exist, the available prefix is scored; an empty answer
/// list scores 1 against an empty golden list and 0 otherwise.
pub fn top_k_precision(ranked: &[AnswerTuple], golden: &[Row], k: usize) -> f64 {
    let golden_set: HashSet<&Row> = golden.iter().collect();
    let prefix = ranked.get(..k.min(ranked.len())).unwrap_or(&[]);
    if prefix.is_empty() {
        return if golden_set.is_empty() { 1.0 } else { 0.0 };
    }
    let correct = prefix
        .iter()
        .filter(|t| golden_set.contains(&t.values))
        .count();
    correct as f64 / prefix.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use udi_store::Value;

    fn row(s: &str) -> Row {
        vec![Value::text(s)]
    }

    fn tup(s: &str, p: f64) -> AnswerTuple {
        AnswerTuple {
            values: row(s),
            probability: p,
        }
    }

    #[test]
    fn perfect_answers() {
        let golden = [row("a"), row("b")];
        let answers = [tup("a", 1.0), tup("b", 0.5)];
        let m = score(answers.iter(), golden.iter());
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f_measure(), 1.0);
    }

    #[test]
    fn duplicates_count_toward_precision_not_recall() {
        let golden = [row("a"), row("b")];
        // "a" returned twice (two sources), "b" missed, "x" wrong.
        let answers = [tup("a", 1.0), tup("a", 0.5), tup("x", 0.5)];
        let m = score(answers.iter(), golden.iter());
        assert!((m.precision - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.recall, 0.5);
    }

    #[test]
    fn degenerate_cases() {
        let empty_answers: Vec<AnswerTuple> = vec![];
        let golden = [row("a")];
        let m = score(empty_answers.iter(), golden.iter());
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f_measure(), 0.0);

        let answers = [tup("a", 1.0)];
        let no_golden: Vec<Row> = vec![];
        let m = score(answers.iter(), no_golden.iter());
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 1.0);
    }

    #[test]
    fn average_is_componentwise() {
        let a = Metrics {
            precision: 1.0,
            recall: 0.5,
        };
        let b = Metrics {
            precision: 0.5,
            recall: 1.0,
        };
        let avg = Metrics::average(&[a, b]);
        assert_eq!(avg.precision, 0.75);
        assert_eq!(avg.recall, 0.75);
        assert_eq!(Metrics::average(&[]), Metrics::default());
    }

    #[test]
    fn rp_curve_tracks_prefixes() {
        let golden = vec![row("a"), row("b")];
        // Ranked: correct, wrong, correct.
        let ranked = vec![tup("a", 0.9), tup("x", 0.8), tup("b", 0.7)];
        let curve = rp_curve(&ranked, &golden);
        assert_eq!(curve.len(), 3);
        assert_eq!(
            curve[0],
            RpPoint {
                recall: 0.5,
                precision: 1.0
            }
        );
        assert_eq!(
            curve[1],
            RpPoint {
                recall: 0.5,
                precision: 0.5
            }
        );
        assert!((curve[2].precision - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(curve[2].recall, 1.0);
    }

    #[test]
    fn top_k_precision_scores_prefixes() {
        let golden = vec![row("a"), row("b")];
        let ranked = vec![tup("a", 0.9), tup("x", 0.8), tup("b", 0.7)];
        assert_eq!(top_k_precision(&ranked, &golden, 1), 1.0);
        assert_eq!(top_k_precision(&ranked, &golden, 2), 0.5);
        assert!((top_k_precision(&ranked, &golden, 3) - 2.0 / 3.0).abs() < 1e-12);
        // k beyond the list scores the whole list.
        assert!((top_k_precision(&ranked, &golden, 99) - 2.0 / 3.0).abs() < 1e-12);
        // Degenerate cases.
        assert_eq!(top_k_precision(&[], &golden, 5), 0.0);
        assert_eq!(top_k_precision(&[], &[], 5), 1.0);
    }

    #[test]
    fn precision_at_recall_interpolates() {
        let golden = vec![row("a"), row("b")];
        let ranked = vec![tup("a", 0.9), tup("x", 0.8), tup("b", 0.7)];
        let curve = rp_curve(&ranked, &golden);
        assert_eq!(precision_at_recall(&curve, 0.5), 1.0);
        assert!((precision_at_recall(&curve, 1.0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(precision_at_recall(&curve, 1.1), 0.0);
    }
}

#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Evaluation machinery for the SIGMOD'08 experiments (§7).
//!
//! - [`metrics`]: precision/recall/F-measure and R-P curves (§7.1, §7.4);
//! - [`clustering`]: pairwise clustering quality of mediated schemas
//!   (Table 3);
//! - [`golden`]: the true golden standard (ground-truth-backed manual
//!   integration) and the §7.2 approximate golden standard;
//! - [`workload`]: the 10-query-per-domain workload generator (§7.1);
//! - [`harness`]: one-call domain preparation (corpus → UDI → workload) and
//!   integrator scoring.
//!
//! # Quickstart
//!
//! ```no_run
//! use udi_baselines::Udi;
//! use udi_datagen::Domain;
//! use udi_eval::harness::prepare;
//!
//! let d = prepare(Domain::People, Some(49), 42).unwrap();
//! let golden = d.golden_rows();
//! let metrics = d.evaluate(&Udi(&d.udi), &golden);
//! println!("P={:.3} R={:.3} F={:.3}", metrics.precision, metrics.recall, metrics.f_measure());
//! ```

pub mod clustering;
pub mod golden;
pub mod harness;
pub mod metrics;
pub mod workload;

pub use clustering::{named_clusters, p_med_schema_quality, pairwise_metrics};
pub use golden::{approximate_golden_rows, GoldenIntegrator};
pub use harness::{prepare, DomainEval, DEFAULT_QUERIES};
pub use metrics::{precision_at_recall, rp_curve, score, top_k_precision, Metrics, RpPoint};
pub use udi_baselines::Integrator;
pub use workload::generate_workload;

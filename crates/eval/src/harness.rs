//! The experiment harness: prepares a domain end-to-end and scores
//! integrators against golden standards.

use udi_baselines::Integrator;
use udi_core::{UdiConfig, UdiError, UdiSystem};
use udi_datagen::{generate, Domain, GenConfig, GeneratedDomain};
use udi_query::Query;
use udi_store::Row;

use crate::golden::{approximate_golden_rows, GoldenIntegrator};
use crate::metrics::{score, Metrics};
use crate::workload::generate_workload;

/// Everything needed to run the paper's evaluation on one domain.
pub struct DomainEval {
    /// The domain under evaluation.
    pub domain: Domain,
    /// Generated corpus with ground truth.
    pub gen: GeneratedDomain,
    /// Fully configured UDI system over the corpus.
    pub udi: UdiSystem,
    /// The 10-query (by default) workload of §7.1.
    pub queries: Vec<Query>,
}

/// Default workload size (§7.1: "we chose 10 queries" per domain).
pub const DEFAULT_QUERIES: usize = 10;

/// Generate the corpus, set UDI up, and build the workload.
///
/// `n_sources = None` uses the paper's Table 1 counts (up to 817 sources);
/// smaller counts make unit tests fast.
pub fn prepare(
    domain: Domain,
    n_sources: Option<usize>,
    seed: u64,
) -> Result<DomainEval, UdiError> {
    let gen = generate(
        domain,
        &GenConfig {
            n_sources,
            seed,
            ..GenConfig::default()
        },
    );
    let udi = UdiSystem::setup(gen.catalog.clone(), UdiConfig::default())?;
    let queries = generate_workload(&gen, DEFAULT_QUERIES, seed.wrapping_add(1));
    Ok(DomainEval {
        domain,
        gen,
        udi,
        queries,
    })
}

/// [`prepare`] with a trace sink installed before setup, so the returned
/// system's configuration run — and every query answered through it later —
/// records spans and counters into `sink`. This is what the bench binaries'
/// `--trace out.jsonl` flag goes through.
pub fn prepare_observed(
    domain: Domain,
    n_sources: Option<usize>,
    seed: u64,
    sink: std::sync::Arc<dyn udi_obs::Sink>,
) -> Result<DomainEval, UdiError> {
    let gen = generate(
        domain,
        &GenConfig {
            n_sources,
            seed,
            ..GenConfig::default()
        },
    );
    let udi = UdiSystem::setup_observed(gen.catalog.clone(), UdiConfig::default(), sink)?;
    let queries = generate_workload(&gen, DEFAULT_QUERIES, seed.wrapping_add(1));
    Ok(DomainEval {
        domain,
        gen,
        udi,
        queries,
    })
}

impl DomainEval {
    /// The true golden standard `B̄` for every workload query.
    pub fn golden_rows(&self) -> Vec<Vec<Row>> {
        let g = GoldenIntegrator::new(&self.gen.catalog, &self.gen.truth);
        self.queries.iter().map(|q| g.golden_rows(q)).collect()
    }

    /// The §7.2 approximate golden standard: correct answers among those
    /// returned by UDI or by `Source`, per query.
    pub fn approximate_golden_rows(&self) -> Vec<Vec<Row>> {
        let g = GoldenIntegrator::new(&self.gen.catalog, &self.gen.truth);
        let source = udi_baselines::SourceDirect::new(&self.gen.catalog);
        self.queries
            .iter()
            .map(|q| {
                let udi_ans = self.udi.answer(q);
                let src_ans = source.answer(q);
                approximate_golden_rows(&g, q, &[&udi_ans, &src_ans])
            })
            .collect()
    }

    /// Average an integrator's per-query metrics against per-query golden
    /// rows.
    pub fn evaluate(&self, integrator: &dyn Integrator, golden: &[Vec<Row>]) -> Metrics {
        assert_eq!(golden.len(), self.queries.len());
        let per_query: Vec<Metrics> = self
            .queries
            .iter()
            .zip(golden)
            .map(|(q, g)| {
                let ans = integrator.answer(q);
                score(ans.flat(), g.iter())
            })
            .collect();
        Metrics::average(&per_query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udi_baselines::{SourceDirect, Udi};

    fn small() -> DomainEval {
        prepare(Domain::Movie, Some(24), 17).expect("setup succeeds")
    }

    #[test]
    fn prepare_builds_everything() {
        let d = small();
        assert_eq!(d.gen.catalog.source_count(), 24);
        assert_eq!(d.queries.len(), DEFAULT_QUERIES);
        assert!(d.udi.report().n_schemas >= 1);
    }

    #[test]
    fn udi_beats_or_matches_source_on_f_measure() {
        let d = small();
        let golden = d.golden_rows();
        let udi = d.evaluate(&Udi(&d.udi), &golden);
        let source = d.evaluate(&SourceDirect::new(&d.gen.catalog), &golden);
        // On a 24-source fixture the two can be nearly tied; the robust
        // invariant is UDI's recall advantage (Source only follows
        // attribute-identity mappings) at a small, bounded precision cost.
        assert!(
            udi.recall >= source.recall - 1e-9,
            "UDI must not lose recall to Source"
        );
        assert!(
            udi.f_measure() >= source.f_measure() - 0.05,
            "UDI {udi:?} vs Source {source:?}"
        );
    }

    #[test]
    fn udi_quality_is_high_on_small_corpus() {
        let d = small();
        let golden = d.golden_rows();
        let m = d.evaluate(&Udi(&d.udi), &golden);
        assert!(m.recall > 0.6, "recall {m:?}");
        assert!(m.precision > 0.6, "precision {m:?}");
    }

    #[test]
    fn approximate_golden_is_subset_of_true_golden() {
        let d = small();
        let truth = d.golden_rows();
        let approx = d.approximate_golden_rows();
        for (t, a) in truth.iter().zip(&approx) {
            for row in a {
                assert!(t.contains(row), "approx golden must be correct");
            }
            assert!(a.len() <= t.len());
        }
    }
}

//! Pairwise clustering quality of mediated schemas (Table 3).
//!
//! "Each mediated schema corresponds to a clustering of source attributes.
//! Hence, we measured its quality by computing the precision, recall and
//! F-measure of the clustering, where we counted how many pairs of
//! attributes are correctly clustered. To compute the measures for
//! probabilistic mediated schemas, we computed the measures for each
//! individual mediated schema and summed the results weighted by their
//! respective probabilities."

use std::collections::BTreeSet;

use udi_schema::{MediatedSchema, PMedSchema, Vocabulary};

use crate::metrics::Metrics;

/// Score one clustering (as attribute-name sets) against the golden
/// clustering. Only pairs over attributes that appear in the golden
/// clustering are counted — the golden standard excludes genuinely
/// ambiguous names, for which no clustering of the *name* is right.
pub fn pairwise_metrics(predicted: &[BTreeSet<String>], golden: &[BTreeSet<String>]) -> Metrics {
    let in_golden: BTreeSet<&str> = golden.iter().flatten().map(String::as_str).collect();
    let pair_set = |clusters: &[BTreeSet<String>], universe: &BTreeSet<&str>| {
        let mut pairs: BTreeSet<(String, String)> = BTreeSet::new();
        for c in clusters {
            let members: Vec<&String> =
                c.iter().filter(|a| universe.contains(a.as_str())).collect();
            for (i, a) in members.iter().enumerate() {
                for b in members.get(i + 1..).unwrap_or(&[]) {
                    let (x, y) = if a < b { (a, b) } else { (b, a) };
                    pairs.insert(((*x).clone(), (*y).clone()));
                }
            }
        }
        pairs
    };
    let predicted_pairs = pair_set(predicted, &in_golden);
    let golden_pairs = pair_set(golden, &in_golden);
    let correct = predicted_pairs.intersection(&golden_pairs).count();
    let precision = if predicted_pairs.is_empty() {
        1.0
    } else {
        correct as f64 / predicted_pairs.len() as f64
    };
    let recall = if golden_pairs.is_empty() {
        1.0
    } else {
        correct as f64 / golden_pairs.len() as f64
    };
    Metrics { precision, recall }
}

/// Render a mediated schema as attribute-name clusters.
pub fn named_clusters(med: &MediatedSchema, vocab: &Vocabulary) -> Vec<BTreeSet<String>> {
    med.clusters()
        .iter()
        .map(|c| c.iter().map(|&a| vocab.name(a).to_owned()).collect())
        .collect()
}

/// Table 3's probability-weighted quality of a p-med-schema.
pub fn p_med_schema_quality(
    pmed: &PMedSchema,
    vocab: &Vocabulary,
    golden: &[BTreeSet<String>],
) -> Metrics {
    let mut precision = 0.0;
    let mut recall = 0.0;
    for (med, p) in pmed.schemas() {
        let m = pairwise_metrics(&named_clusters(med, vocab), golden);
        precision += p * m.precision;
        recall += p * m.recall;
    }
    Metrics { precision, recall }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clusters(spec: &[&[&str]]) -> Vec<BTreeSet<String>> {
        spec.iter()
            .map(|c| c.iter().map(|s| (*s).to_owned()).collect())
            .collect()
    }

    #[test]
    fn identical_clusterings_are_perfect() {
        let g = clusters(&[&["a", "b"], &["c"]]);
        let m = pairwise_metrics(&g, &g);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
    }

    #[test]
    fn over_merging_costs_precision() {
        let predicted = clusters(&[&["a", "b", "c"]]);
        let golden = clusters(&[&["a", "b"], &["c"]]);
        let m = pairwise_metrics(&predicted, &golden);
        // Predicted pairs: ab, ac, bc; golden pairs: ab.
        assert!((m.precision - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.recall, 1.0);
    }

    #[test]
    fn over_splitting_costs_recall() {
        let predicted = clusters(&[&["a"], &["b"], &["c"]]);
        let golden = clusters(&[&["a", "b"], &["c"]]);
        let m = pairwise_metrics(&predicted, &golden);
        assert_eq!(m.precision, 1.0, "no predicted pairs → vacuous precision");
        assert_eq!(m.recall, 0.0);
    }

    #[test]
    fn attributes_outside_golden_are_ignored() {
        // `zzz` is not in the golden universe (e.g. ambiguous): pairing it
        // must not hurt precision.
        let predicted = clusters(&[&["a", "b", "zzz"]]);
        let golden = clusters(&[&["a", "b"]]);
        let m = pairwise_metrics(&predicted, &golden);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
    }

    #[test]
    fn weighted_quality_mixes_schemas() {
        use udi_schema::{MediatedSchema, PMedSchema};
        let mut vocab = Vocabulary::new();
        let a = vocab.intern("a");
        let b = vocab.intern("b");
        let merged = MediatedSchema::from_slices(&[&[a, b]]);
        let split = MediatedSchema::from_slices(&[&[a], &[b]]);
        let pmed = PMedSchema::new(vec![(merged, 0.75), (split, 0.25)]);
        let golden = clusters(&[&["a", "b"]]);
        let m = p_med_schema_quality(&pmed, &vocab, &golden);
        // merged: P=1, R=1; split: P=1 (vacuous), R=0.
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 0.75);
    }
}

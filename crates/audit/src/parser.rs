//! A recursive-descent *item* parser over the [`crate::lexer`] token
//! stream.
//!
//! This is not a Rust parser — it recovers exactly the structure the
//! whole-workspace passes need: which functions exist (with their bodies'
//! token ranges, visibility, and the `impl`/`trait` context that makes a
//! `fn` a method), which `use` declarations import what, and which
//! `static`s a crate declares. Expression grammar is never parsed; a
//! function body is an opaque, brace-balanced token range that the
//! call-graph builder scans separately.
//!
//! Like the lexer, the parser never fails: unrecognized constructs are
//! skipped token by token, so at worst an item is *missed* (suppressing a
//! lint), never invented. Items under `#[cfg(test)]` / `#[test]` are
//! parsed but marked [`Item::in_test`] so every pass can exempt them.

use std::ops::Range;

use crate::lexer::{Token, TokenKind};

/// Item visibility, as far as the passes care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// `pub` — part of the crate's external surface.
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in …)` — widened, but not exported.
    Restricted,
    /// No visibility keyword.
    Private,
}

/// What kind of item was parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` (free function, inherent method, trait method, or trait
    /// default method — see [`Item::self_ty`] / [`Item::trait_name`]).
    Fn,
    /// `struct`.
    Struct,
    /// `enum`.
    Enum,
    /// `union`.
    Union,
    /// `trait`.
    Trait,
    /// `type` alias.
    TypeAlias,
    /// `const` item.
    Const,
    /// `static` item.
    Static {
        /// Whether it is a `static mut`.
        mutable: bool,
    },
    /// A `use` declaration; the path tokens live in [`Item::span`].
    Use,
    /// `mod` (inline or out-of-line).
    Mod,
    /// `macro_rules!` definition.
    MacroDef,
}

/// One parsed item with its token span and nesting context.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// Item name (`""` for `use` declarations and unnamed items).
    pub name: String,
    /// Visibility as written.
    pub vis: Vis,
    /// Names of the enclosing inline `mod`s, outermost first.
    pub module_path: Vec<String>,
    /// For a `fn` inside `impl Type` / `impl Trait for Type`: `Type`.
    /// For a `fn` inside `trait Tr { … }`: `Tr` (default methods resolve
    /// like methods of the trait).
    pub self_ty: Option<String>,
    /// For a `fn` inside `impl Trait for Type`: `Trait`.
    pub trait_name: Option<String>,
    /// Token-index range of the whole item (attributes included).
    pub span: Range<usize>,
    /// For a `fn` with a body: token-index range of `{ … }` inclusive.
    pub body: Option<Range<usize>>,
    /// 1-based line of the item keyword (diagnostic anchor).
    pub line: u32,
    /// 1-based column of the item keyword.
    pub col: u32,
    /// Whether the item is under `#[cfg(test)]` / `#[test]` / `#[bench]`.
    pub in_test: bool,
}

/// Parse the items of one file's token stream.
pub fn parse_items(tokens: &[Token]) -> Vec<Item> {
    let sig: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !is_comment(t))
        .map(|(i, _)| i)
        .collect();
    let mut p = Parser {
        toks: tokens,
        sig,
        s: 0,
        out: Vec::new(),
    };
    let ctx = Ctx {
        module_path: Vec::new(),
        self_ty: None,
        trait_name: None,
        in_test: false,
    };
    p.items(&ctx, false);
    p.out
}

/// Whether a token is a comment (shared with the lint passes).
pub fn is_comment(t: &Token) -> bool {
    matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
}

/// Texts inside an attribute's brackets; `open` is the **significant-token
/// slot** of the `[`. Returns `(texts, slot after the closing ])`.
fn attribute_texts(toks: &[Token], sig: &[usize], open: usize) -> (Vec<String>, usize) {
    let mut texts = Vec::new();
    let mut depth = 0i32;
    let mut s = open;
    while let Some(t) = sig.get(s).and_then(|&i| toks.get(i)) {
        if t.kind == TokenKind::Punct && t.text == "[" {
            depth += 1;
        } else if t.kind == TokenKind::Punct && t.text == "]" {
            depth -= 1;
            if depth == 0 {
                return (texts, s + 1);
            }
        } else if depth > 0 {
            texts.push(t.text.clone());
        }
        s += 1;
    }
    (texts, s)
}

/// Whether an attribute's joined texts mark test-only code:
/// `test`, `bench`, `*::test`, `cfg(test)`, `cfg(any(test, …))` — but not
/// `cfg(not(test))`.
pub fn is_test_attribute(texts: &[String]) -> bool {
    let joined: String = texts.concat();
    if joined == "test" || joined == "bench" || joined.ends_with("::test") {
        return true;
    }
    joined.starts_with("cfg(") && joined.contains("test") && !joined.contains("not(test")
}

#[derive(Clone)]
struct Ctx {
    module_path: Vec<String>,
    self_ty: Option<String>,
    trait_name: Option<String>,
    in_test: bool,
}

struct Parser<'a> {
    toks: &'a [Token],
    /// Indices of significant (non-comment) tokens.
    sig: Vec<usize>,
    /// Cursor into `sig`.
    s: usize,
    out: Vec<Item>,
}

impl<'a> Parser<'a> {
    fn tok(&self, s: usize) -> Option<&'a Token> {
        self.sig.get(s).and_then(|&i| self.toks.get(i))
    }

    fn text(&self, s: usize) -> Option<&'a str> {
        self.tok(s).map(|t| t.text.as_str())
    }

    fn kind(&self, s: usize) -> Option<TokenKind> {
        self.tok(s).map(|t| t.kind)
    }

    /// Original token index of significant slot `s` (or one past the end).
    fn orig(&self, s: usize) -> usize {
        self.sig.get(s).copied().unwrap_or(self.toks.len())
    }

    fn is_ident(&self, s: usize) -> bool {
        matches!(self.kind(s), Some(TokenKind::Ident | TokenKind::RawIdent))
    }

    /// Skip a balanced delimiter group whose opener is at the cursor.
    /// Counts only the opener's own delimiter kind (lint-grade recovery on
    /// malformed input). Leaves the cursor just past the closer.
    fn skip_balanced(&mut self) {
        let (open, close) = match self.text(self.s) {
            Some("(") => ("(", ")"),
            Some("[") => ("[", "]"),
            Some("{") => ("{", "}"),
            _ => {
                self.s += 1;
                return;
            }
        };
        let mut depth = 0i64;
        while let Some(t) = self.text(self.s) {
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    self.s += 1;
                    return;
                }
            }
            self.s += 1;
        }
    }

    /// Skip a `<…>` generic group whose `<` is at the cursor. `>>` closes
    /// two levels; `->` / `=>` do not count.
    fn skip_angles(&mut self) {
        let mut depth = 0i64;
        while let Some(t) = self.text(self.s) {
            match t {
                "<" | "<<" => depth += if t == "<<" { 2 } else { 1 },
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
            self.s += 1;
            if depth <= 0 {
                return;
            }
        }
    }

    /// Parse items until EOF, or (when `in_block`) until the matching `}`.
    fn items(&mut self, ctx: &Ctx, in_block: bool) {
        while let Some(t) = self.tok(self.s) {
            if in_block && t.kind == TokenKind::Punct && t.text == "}" {
                self.s += 1;
                return;
            }
            self.item(ctx);
        }
    }

    /// Parse one item (or recover by skipping a token).
    fn item(&mut self, ctx: &Ctx) {
        let start_s = self.s;
        let mut in_test = ctx.in_test;

        // Attributes. Inner attributes (`#![…]`) are consumed and ignored.
        while self.text(self.s) == Some("#") {
            let mut open = self.s + 1;
            if self.text(open) == Some("!") {
                open += 1;
            }
            if self.text(open) != Some("[") {
                break;
            }
            let (texts, after) = attribute_texts(self.toks, &self.sig, open);
            if is_test_attribute(&texts) {
                in_test = true;
            }
            self.s = after;
        }

        // Visibility.
        let mut vis = Vis::Private;
        if self.text(self.s) == Some("pub") {
            self.s += 1;
            if self.text(self.s) == Some("(") {
                self.skip_balanced();
                vis = Vis::Restricted;
            } else {
                vis = Vis::Pub;
            }
        }

        // Modifiers in front of `fn` / `trait` / `impl`.
        loop {
            match self.text(self.s) {
                Some("default" | "async" | "unsafe" | "auto") => self.s += 1,
                Some("const") if self.text(self.s + 1) == Some("fn") => self.s += 1,
                Some("extern")
                    if self.kind(self.s + 1) == Some(TokenKind::Str)
                        && matches!(self.text(self.s + 2), Some("fn" | "{")) =>
                {
                    self.s += 2
                }
                _ => break,
            }
        }

        let anchor = self.tok(self.s);
        let (line, col) = anchor.map(|t| (t.line, t.col)).unwrap_or((0, 0));
        match self.text(self.s) {
            Some("fn") => self.item_fn(ctx, start_s, vis, in_test, line, col),
            Some(kw @ ("struct" | "enum" | "union")) => {
                // `union` is contextual: only a type definition when
                // followed by a name.
                if kw == "union" && !self.is_ident(self.s + 1) {
                    self.s += 1;
                    return;
                }
                self.item_type_def(ctx, start_s, vis, in_test, line, col, kw)
            }
            Some("trait") => self.item_trait(ctx, start_s, vis, in_test, line, col),
            Some("impl") => self.item_impl(ctx, in_test),
            Some("mod") => self.item_mod(ctx, start_s, vis, in_test, line, col),
            Some("use") => {
                self.skip_to_semi();
                self.push(
                    ctx,
                    ItemKind::Use,
                    "",
                    vis,
                    start_s,
                    None,
                    line,
                    col,
                    in_test,
                );
            }
            Some("static") => {
                self.s += 1;
                let mutable = self.text(self.s) == Some("mut");
                if mutable {
                    self.s += 1;
                }
                let name = self.take_name();
                self.skip_to_semi();
                self.push(
                    ctx,
                    ItemKind::Static { mutable },
                    &name,
                    vis,
                    start_s,
                    None,
                    line,
                    col,
                    in_test,
                );
            }
            Some("const") => {
                self.s += 1;
                let name = self.take_name(); // `_` consts come out as "_"
                self.skip_to_semi();
                self.push(
                    ctx,
                    ItemKind::Const,
                    &name,
                    vis,
                    start_s,
                    None,
                    line,
                    col,
                    in_test,
                );
            }
            Some("type") => {
                self.s += 1;
                let name = self.take_name();
                self.skip_to_semi();
                self.push(
                    ctx,
                    ItemKind::TypeAlias,
                    &name,
                    vis,
                    start_s,
                    None,
                    line,
                    col,
                    in_test,
                );
            }
            Some("macro_rules") => {
                self.s += 1; // macro_rules
                if self.text(self.s) == Some("!") {
                    self.s += 1;
                }
                let name = self.take_name();
                self.skip_balanced();
                self.push(
                    ctx,
                    ItemKind::MacroDef,
                    &name,
                    vis,
                    start_s,
                    None,
                    line,
                    col,
                    in_test,
                );
            }
            Some("extern") => {
                // `extern crate name;` or `extern "C" { … }`.
                self.s += 1;
                if self.kind(self.s) == Some(TokenKind::Str) {
                    self.s += 1;
                }
                if self.text(self.s) == Some("{") {
                    self.skip_balanced();
                } else {
                    self.skip_to_semi();
                }
            }
            Some(_) if self.is_ident(self.s) && self.text(self.s + 1) == Some("!") => {
                // Item-position macro invocation (`thread_local! { … }`).
                self.s += 2;
                if self.is_ident(self.s) {
                    self.s += 1; // `macro_rules!`-style trailing name
                }
                match self.text(self.s) {
                    Some("{" | "(" | "[") => {
                        self.skip_balanced();
                        if self.text(self.s) == Some(";") {
                            self.s += 1;
                        }
                    }
                    _ => self.s += 1,
                }
            }
            _ => self.s += 1, // recovery
        }
    }

    fn take_name(&mut self) -> String {
        if self.is_ident(self.s) || self.text(self.s) == Some("_") {
            let name = self.text(self.s).unwrap_or("").to_owned();
            self.s += 1;
            name
        } else {
            String::new()
        }
    }

    /// Advance past the next `;` at delimiter depth 0 (initializers may
    /// contain arbitrary nested blocks).
    fn skip_to_semi(&mut self) {
        let mut depth = 0i64;
        while let Some(t) = self.text(self.s) {
            match t {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => {
                    if depth == 0 {
                        return; // missing `;` — don't eat the enclosing closer
                    }
                    depth -= 1;
                }
                ";" if depth == 0 => {
                    self.s += 1;
                    return;
                }
                _ => {}
            }
            self.s += 1;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        ctx: &Ctx,
        kind: ItemKind,
        name: &str,
        vis: Vis,
        start_s: usize,
        body: Option<Range<usize>>,
        line: u32,
        col: u32,
        in_test: bool,
    ) {
        let span = self.orig(start_s)..self.orig(self.s);
        self.out.push(Item {
            kind,
            name: name.to_owned(),
            vis,
            module_path: ctx.module_path.clone(),
            self_ty: ctx.self_ty.clone(),
            trait_name: ctx.trait_name.clone(),
            span,
            body,
            line,
            col,
            in_test,
        });
    }

    fn item_fn(&mut self, ctx: &Ctx, start_s: usize, vis: Vis, in_test: bool, line: u32, col: u32) {
        self.s += 1; // fn
        let name = self.take_name();
        // Scan the signature for the body `{` or a terminating `;`,
        // tracking paren/bracket and angle depth so `->`, bounds, and
        // where-clauses don't confuse the search.
        let mut delim = 0i64;
        let mut angle = 0i64;
        let mut body = None;
        while let Some(t) = self.text(self.s) {
            match t {
                "(" | "[" => delim += 1,
                ")" | "]" => delim -= 1,
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle = (angle - 1).max(0),
                ">>" => angle = (angle - 2).max(0),
                "{" if delim == 0 && angle == 0 => {
                    let open = self.orig(self.s);
                    self.skip_balanced();
                    body = Some(open..self.orig(self.s));
                    break;
                }
                ";" if delim == 0 && angle == 0 => {
                    self.s += 1;
                    break;
                }
                _ => {}
            }
            self.s += 1;
        }
        self.push(
            ctx,
            ItemKind::Fn,
            &name,
            vis,
            start_s,
            body,
            line,
            col,
            in_test,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn item_type_def(
        &mut self,
        ctx: &Ctx,
        start_s: usize,
        vis: Vis,
        in_test: bool,
        line: u32,
        col: u32,
        kw: &str,
    ) {
        self.s += 1; // struct | enum | union
        let name = self.take_name();
        let kind = match kw {
            "struct" => ItemKind::Struct,
            "enum" => ItemKind::Enum,
            _ => ItemKind::Union,
        };
        let mut angle = 0i64;
        while let Some(t) = self.text(self.s) {
            match t {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle = (angle - 1).max(0),
                ">>" => angle = (angle - 2).max(0),
                "{" if angle == 0 => {
                    self.skip_balanced();
                    break;
                }
                "(" if angle == 0 => {
                    // Tuple struct: `struct S(u8);`
                    self.skip_balanced();
                    self.skip_to_semi();
                    break;
                }
                ";" if angle == 0 => {
                    self.s += 1;
                    break;
                }
                _ => {}
            }
            self.s += 1;
        }
        self.push(ctx, kind, &name, vis, start_s, None, line, col, in_test);
    }

    fn item_trait(
        &mut self,
        ctx: &Ctx,
        start_s: usize,
        vis: Vis,
        in_test: bool,
        line: u32,
        col: u32,
    ) {
        self.s += 1; // trait
        let name = self.take_name();
        // Skip generics, supertrait bounds, and where-clause to the body
        // (or a `;` for `trait Alias = …;`).
        let mut angle = 0i64;
        let mut has_body = false;
        while let Some(t) = self.text(self.s) {
            match t {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle = (angle - 1).max(0),
                ">>" => angle = (angle - 2).max(0),
                "{" if angle == 0 => {
                    has_body = true;
                    break;
                }
                ";" if angle == 0 => {
                    self.s += 1;
                    break;
                }
                _ => {}
            }
            self.s += 1;
        }
        self.push(
            ctx,
            ItemKind::Trait,
            &name,
            vis,
            start_s,
            None,
            line,
            col,
            in_test,
        );
        if has_body {
            self.s += 1; // {
            let inner = Ctx {
                module_path: ctx.module_path.clone(),
                self_ty: Some(name),
                trait_name: None,
                in_test,
            };
            self.items(&inner, true);
        }
    }

    fn item_impl(&mut self, ctx: &Ctx, in_test: bool) {
        self.s += 1; // impl
        if self.text(self.s) == Some("<") {
            self.skip_angles();
        }
        // Header: `Path<…> (for Path<…>)? where …? {`.
        let mut first: Vec<String> = Vec::new();
        let mut second: Vec<String> = Vec::new();
        let mut saw_for = false;
        let mut angle = 0i64;
        let mut paren = 0i64;
        while let Some(t) = self.tok(self.s) {
            let txt = t.text.as_str();
            match txt {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle = (angle - 1).max(0),
                ">>" => angle = (angle - 2).max(0),
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                "for" if angle == 0 && paren == 0 => saw_for = true,
                "where" if angle == 0 && paren == 0 => break,
                "{" if angle == 0 && paren == 0 => break,
                ";" if angle == 0 && paren == 0 => {
                    // Degenerate/malformed header — bail.
                    self.s += 1;
                    return;
                }
                _ => {
                    if angle == 0
                        && paren == 0
                        && matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent)
                        && !matches!(txt, "dyn" | "mut")
                    {
                        if saw_for {
                            second.push(txt.to_owned());
                        } else {
                            first.push(txt.to_owned());
                        }
                    }
                }
            }
            self.s += 1;
        }
        // Skip a where-clause to the body.
        while let Some(t) = self.text(self.s) {
            if t == "{" {
                break;
            }
            self.s += 1;
        }
        if self.text(self.s) != Some("{") {
            return;
        }
        self.s += 1; // {
        let (self_ty, trait_name) = if saw_for {
            (second.last().cloned(), first.last().cloned())
        } else {
            (first.last().cloned(), None)
        };
        let inner = Ctx {
            module_path: ctx.module_path.clone(),
            self_ty,
            trait_name,
            in_test,
        };
        self.items(&inner, true);
    }

    fn item_mod(
        &mut self,
        ctx: &Ctx,
        start_s: usize,
        vis: Vis,
        in_test: bool,
        line: u32,
        col: u32,
    ) {
        self.s += 1; // mod
        let name = self.take_name();
        match self.text(self.s) {
            Some("{") => {
                self.push(
                    ctx,
                    ItemKind::Mod,
                    &name,
                    vis,
                    start_s,
                    None,
                    line,
                    col,
                    in_test,
                );
                self.s += 1;
                let mut module_path = ctx.module_path.clone();
                module_path.push(name);
                let inner = Ctx {
                    module_path,
                    self_ty: None,
                    trait_name: None,
                    in_test,
                };
                self.items(&inner, true);
            }
            _ => {
                self.skip_to_semi();
                self.push(
                    ctx,
                    ItemKind::Mod,
                    &name,
                    vis,
                    start_s,
                    None,
                    line,
                    col,
                    in_test,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<Item> {
        parse_items(&lex(src))
    }

    fn find<'a>(items: &'a [Item], name: &str) -> &'a Item {
        items
            .iter()
            .find(|i| i.name == name)
            .unwrap_or_else(|| panic!("no item `{name}` in {items:#?}"))
    }

    #[test]
    fn free_fn_and_visibility() {
        let items = parse("pub fn a() {} fn b(x: u32) -> u32 { x } pub(crate) fn c() {}");
        assert_eq!(find(&items, "a").vis, Vis::Pub);
        assert_eq!(find(&items, "b").vis, Vis::Private);
        assert_eq!(find(&items, "c").vis, Vis::Restricted);
        assert!(find(&items, "b").body.is_some());
    }

    #[test]
    fn impl_methods_carry_self_ty_and_trait() {
        let src = "
            struct Foo;
            impl Foo { pub fn new() -> Foo { Foo } }
            impl std::fmt::Display for Foo {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
            }
        ";
        let items = parse(src);
        let new = find(&items, "new");
        assert_eq!(new.self_ty.as_deref(), Some("Foo"));
        assert_eq!(new.trait_name, None);
        let fmt = find(&items, "fmt");
        assert_eq!(fmt.self_ty.as_deref(), Some("Foo"));
        assert_eq!(fmt.trait_name.as_deref(), Some("Display"));
    }

    #[test]
    fn generic_impl_headers_resolve_the_base_name() {
        let src = "impl<'a, T: Clone> Wrapper<'a, T> { fn get(&self) -> &T { &self.0 } }";
        let items = parse(src);
        assert_eq!(find(&items, "get").self_ty.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn trait_default_methods_resolve_to_the_trait() {
        let items = parse("pub trait Sink { fn flush(&self) {} fn record(&self); }");
        assert_eq!(find(&items, "flush").self_ty.as_deref(), Some("Sink"));
        assert!(find(&items, "flush").body.is_some());
        assert!(find(&items, "record").body.is_none());
    }

    #[test]
    fn mods_nest_and_cfg_test_marks_items() {
        let src = "
            mod outer { pub mod inner { pub fn deep() {} } }
            #[cfg(test)]
            mod tests { fn helper() {} #[test] fn case() {} }
            #[cfg(not(test))] fn shipped() {}
        ";
        let items = parse(src);
        assert_eq!(find(&items, "deep").module_path, vec!["outer", "inner"]);
        assert!(find(&items, "helper").in_test);
        assert!(find(&items, "case").in_test);
        assert!(!find(&items, "shipped").in_test);
    }

    #[test]
    fn statics_consts_uses_types() {
        let src = "
            pub static mut GLOBAL: u32 = 0;
            static OK: &str = \"x\";
            pub const LIMIT: usize = 10;
            use std::collections::BTreeMap;
            pub type Alias = BTreeMap<String, u32>;
        ";
        let items = parse(src);
        assert_eq!(
            find(&items, "GLOBAL").kind,
            ItemKind::Static { mutable: true }
        );
        assert_eq!(find(&items, "OK").kind, ItemKind::Static { mutable: false });
        assert_eq!(find(&items, "LIMIT").kind, ItemKind::Const);
        assert_eq!(find(&items, "Alias").kind, ItemKind::TypeAlias);
        assert!(items.iter().any(|i| i.kind == ItemKind::Use));
    }

    #[test]
    fn struct_variants() {
        let items = parse("pub struct A { x: u32 } struct B(u8); struct C; enum E<T> { V(T) }");
        for n in ["A", "B", "C"] {
            assert_eq!(find(&items, n).kind, ItemKind::Struct, "{n}");
        }
        assert_eq!(find(&items, "E").kind, ItemKind::Enum);
    }

    #[test]
    fn fn_after_tuple_struct_is_not_swallowed() {
        let items = parse("struct B(u8);\npub fn after() {}");
        assert!(items.iter().any(|i| i.name == "after"));
    }

    #[test]
    fn macro_invocations_at_item_level_are_opaque() {
        let src = "thread_local! { static TL: u32 = 0; }\npub fn after_macro() {}";
        let items = parse(src);
        assert!(!items
            .iter()
            .any(|i| matches!(i.kind, ItemKind::Static { .. })));
        assert!(items.iter().any(|i| i.name == "after_macro"));
    }

    #[test]
    fn spans_are_in_bounds_and_bodies_nest_inside_spans() {
        let src = "
            pub fn outer(v: Vec<u32>) -> u32 {
                let c = |x: u32| x + 1;
                c(v.len() as u32)
            }
            impl Thing { fn method(&self) { self.other() } }
        ";
        let toks = lex(src);
        for item in parse_items(&toks) {
            assert!(item.span.end <= toks.len());
            assert!(item.span.start <= item.span.end);
            if let Some(b) = &item.body {
                assert!(b.start >= item.span.start && b.end <= item.span.end);
            }
        }
    }

    #[test]
    fn where_clauses_and_generic_returns() {
        let src = "
            pub fn f<T>(t: T) -> Vec<Vec<T>> where T: Clone { vec![vec![t]] }
            fn g() -> impl Iterator<Item = (usize, u8)> { std::iter::empty() }
        ";
        let items = parse(src);
        assert!(find(&items, "f").body.is_some());
        assert!(find(&items, "g").body.is_some());
    }
}

#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `udi-audit` — a zero-dependency static analysis engine enforcing the
//! workspace's probability, determinism, panic-freedom, and layering
//! invariants.
//!
//! UDI's correctness claims are probabilistic identities: p-med-schema
//! weights (Algorithm 2), maximum-entropy p-mapping distributions
//! (Theorem 5.2), and consolidation equivalence (Theorem 6.2). Those
//! identities silently degrade under hash-order nondeterminism, ad-hoc
//! float comparison, and panic-on-bad-input library code. This crate turns
//! the conventions that protect them into machine-checked rules, in the
//! same house style as `udi-obs`: hand-rolled, dependency-free, and wired
//! into both CI and the workspace test suite.
//!
//! The pipeline has two tiers sharing one token stream per file:
//!
//! 1. **File-local lints** ([`lints`]): token-pattern matchers over the
//!    hand-rolled Rust [`lexer`] output (nested block comments, raw
//!    strings, char literals vs. lifetimes).
//! 2. **Workspace passes**: a recursive-descent item [`parser`] extracts
//!    fns, impls, statics and `use` paths per file; [`graph`] assembles a
//!    call graph (with receiver-typed method resolution) and a
//!    crate-dependency edge list; [`mod@cfg`] builds a per-function control
//!    flow graph from each body's token range and [`dataflow`] runs
//!    gen/kill analyses over it. The passes then check transitive
//!    panic-reachability, the crate layering contract from `audit.toml`
//!    ([`config`]), concurrency rules, lock-acquisition-order cycles,
//!    determinism certification of the declared entry points,
//!    discarded `Result`s, and dead exports against the shared
//!    [`ratchet`] file.
//!
//! Every file is lexed exactly once per audit ([`Workspace::lex_count`]
//! asserts it); each pass is timed through a `udi-obs` span
//! (`audit.pass.*`). Diagnostics are rustc-style `file:line:col` with
//! `note:` context lines (e.g. full call chains), and any error-severity
//! finding makes the binary exit nonzero.
//!
//! See `AUDIT.md` at the repository root for the lint taxonomy and the
//! escape-hatch policy, and `DESIGN.md` §10 for the layering contract.
//!
//! # Example
//!
//! ```
//! use udi_audit::{audit_source, all_lints, CodeKind, FileClass};
//!
//! let class = FileClass { crate_name: "udi-core".into(), kind: CodeKind::Lib };
//! let diags = audit_source(
//!     "demo.rs",
//!     &class,
//!     "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
//!     &all_lints(),
//! );
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].lint, "no-panic-in-lib");
//! assert_eq!((diags[0].line, diags[0].col), (1, 37));
//! ```

pub mod cfg;
pub mod classify;
pub mod config;
pub mod dataflow;
pub mod effects;
pub mod graph;
pub mod lexer;
pub mod lints;
pub mod parser;
mod passes;
pub mod ratchet;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

pub use classify::{classify, collect_sources, CodeKind, FileClass};
pub use config::{load_config, parse_config, Config, IndexMode};
pub use lints::{all_lints, audit_source, Diagnostic, LintInfo, Severity, LINTS};

use lexer::{lex, Token};
use parser::Item;

/// A failure of the audit *process* itself (I/O, bad config), as opposed
/// to audit findings.
#[derive(Debug)]
pub enum AuditError {
    /// A file or directory could not be read.
    Io(PathBuf, std::io::Error),
    /// `audit.toml` did not parse.
    Config {
        /// Path of the offending config file.
        path: PathBuf,
        /// 1-based line of the problem.
        line: u32,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::Io(p, e) => write!(f, "cannot read {}: {e}", p.display()),
            AuditError::Config {
                path,
                line,
                message,
            } => {
                write!(f, "{}:{line}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for AuditError {}

/// One lexed + parsed source file of the workspace.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Owning crate and code kind.
    pub class: FileClass,
    /// The file's full token stream — lexed once, shared by every lint
    /// and pass.
    pub tokens: Vec<Token>,
    /// The item model parsed from `tokens`.
    pub items: Vec<Item>,
}

/// The whole workspace, loaded once.
#[derive(Debug)]
pub struct Workspace {
    /// Workspace root directory.
    pub root: PathBuf,
    /// Every classifiable `.rs` file, in sorted path order.
    pub files: Vec<SourceFile>,
    /// How many times [`lexer::lex`] ran while loading — the lex-once
    /// contract means this always equals `files.len()`.
    pub lex_count: usize,
}

/// Read, lex, and parse every classifiable `.rs` file under `root`.
pub fn load_workspace(root: &Path) -> Result<Workspace, AuditError> {
    let sources = collect_sources(root).map_err(|e| AuditError::Io(root.to_path_buf(), e))?;
    let mut files = Vec::with_capacity(sources.len());
    let mut lex_count = 0usize;
    for (rel, class) in sources {
        let abs = root.join(&rel);
        let src = std::fs::read_to_string(&abs).map_err(|e| AuditError::Io(abs.clone(), e))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let tokens = lex(&src);
        lex_count += 1;
        let items = parser::parse_items(&tokens);
        files.push(SourceFile {
            rel: rel_str,
            class,
            tokens,
            items,
        });
    }
    Ok(Workspace {
        root: root.to_path_buf(),
        files,
        lex_count,
    })
}

/// Outcome of a whole-workspace audit.
#[derive(Debug)]
pub struct AuditReport {
    /// Every finding, sorted by path, line, column, lint.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of lex runs (must equal `files_scanned`; see
    /// [`Workspace::lex_count`]).
    pub lex_count: usize,
}

impl AuditReport {
    /// Error-severity findings — these gate CI.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Warning-severity findings (ratcheted debt, warn-mode indexing).
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// True when no *error* was found. Warnings do not dirty the tree —
    /// they are the visible, frozen debt the ratchet tracks.
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }

    /// Per-lint finding counts (errors and warnings together), keyed by
    /// lint name in sorted order. Feeds both the JSON report and the
    /// `--bench-out` CI artifact.
    pub fn by_lint(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut m = std::collections::BTreeMap::new();
        for d in &self.diagnostics {
            *m.entry(d.lint).or_insert(0) += 1;
        }
        m
    }

    /// Machine-readable rendering: one JSON object with summary counts
    /// (total and per-lint) and a `diagnostics` array. Stable field
    /// order, no external serializer.
    pub fn to_json(&self) -> String {
        let by_lint = self.by_lint();
        let by_lint = by_lint
            .iter()
            .map(|(l, n)| format!("\"{}\":{n}", json_escape(l)))
            .collect::<Vec<_>>()
            .join(",");
        let mut out = String::with_capacity(256 + self.diagnostics.len() * 160);
        out.push_str(&format!(
            "{{\"files_scanned\":{},\"lex_count\":{},\"errors\":{},\"warnings\":{},\"by_lint\":{{{by_lint}}},\"diagnostics\":[",
            self.files_scanned,
            self.lex_count,
            self.errors().count(),
            self.warnings().count(),
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"severity\":\"{}\",\"lint\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\",\"notes\":[",
                d.severity.word(),
                json_escape(d.lint),
                json_escape(&d.path),
                d.line,
                d.col,
                json_escape(&d.message),
            ));
            for (j, n) in d.notes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&json_escape(n));
                out.push('"');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Run every enabled lint and pass over a loaded workspace.
///
/// Each stage runs under a `udi-obs` span (`audit.pass.file-lints`,
/// `audit.graph.call`, `audit.cfg.build`,
/// `audit.pass.panic-reachability`, `audit.pass.crate-layering`,
/// `audit.pass.concurrency`, `audit.pass.lock-order`,
/// `audit.pass.determinism`, `audit.pass.hot-path-cert`,
/// `audit.pass.error-discard`, `audit.pass.dead-exports`) so a
/// [`udi_obs::TraceSummary`] of the recorder shows where audit time goes.
pub fn run_audit(
    ws: &Workspace,
    cfg: &Config,
    enabled: &BTreeSet<&str>,
    rec: &udi_obs::Recorder,
) -> Result<AuditReport, AuditError> {
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut directives: Vec<Vec<lints::AllowDirective>> = Vec::with_capacity(ws.files.len());

    {
        let _span = rec.span("audit.pass.file-lints");
        for file in &ws.files {
            let mut ds =
                lints::parse_directives(&file.rel, &file.tokens, enabled, &mut diagnostics);
            diagnostics.extend(lints::run_file_lints(
                &file.rel,
                &file.class,
                &file.tokens,
                &mut ds,
                enabled,
            ));
            directives.push(ds);
        }
    }

    let need_graph = [
        lints::PANIC_REACHABILITY,
        lints::LOCK_ORDER_CYCLE,
        lints::DETERMINISM_CERT,
        lints::ERROR_DISCARD,
        lints::HOT_PATH_CERT,
    ]
    .iter()
    .any(|l| enabled.contains(l));
    let call_graph = if need_graph {
        let _span = rec.span("audit.graph.call");
        graph::build_call_graph(&ws.files)
    } else {
        graph::CallGraph::default()
    };

    // Per-function CFGs, built once and shared by the dataflow passes.
    let need_cfg = [
        lints::LOCK_ORDER_CYCLE,
        lints::ERROR_DISCARD,
        lints::HOT_PATH_CERT,
    ]
    .iter()
    .any(|l| enabled.contains(l));
    let cfgs: Vec<Option<cfg::Cfg>> = if need_cfg {
        let _span = rec.span("audit.cfg.build");
        call_graph
            .fns
            .iter()
            .map(|node| {
                let body = node.body.clone()?;
                let file = ws.files.get(node.file)?;
                Some(cfg::build_cfg(&file.tokens, body))
            })
            .collect()
    } else {
        vec![None; call_graph.fns.len()]
    };

    // The ratchet file is shared by every ratcheting pass.
    let ratchet_path = cfg.ratchet.as_deref();
    let ratchet = match ratchet_path {
        Some(rel) => {
            ratchet::Ratchet::parse(&std::fs::read_to_string(ws.root.join(rel)).unwrap_or_default())
        }
        None => ratchet::Ratchet::default(),
    };

    if enabled.contains(lints::PANIC_REACHABILITY) {
        let _span = rec.span("audit.pass.panic-reachability");
        diagnostics.extend(passes::panic_reach::run(
            ws,
            cfg,
            &call_graph,
            &mut directives,
        ));
    }

    if enabled.contains(lints::CRATE_LAYERING) && !cfg.layers.is_empty() {
        let _span = rec.span("audit.pass.crate-layering");
        let mut edges = graph::manifest_deps(&ws.root)?;
        edges.extend(graph::use_deps(&ws.files));
        diagnostics.extend(passes::layering::run(cfg, &edges));
    }

    let conc = [lints::STATIC_MUT, lints::SHARED_MUTABLE_STATIC];
    if conc.iter().any(|l| enabled.contains(l)) {
        let _span = rec.span("audit.pass.concurrency");
        let mut found =
            passes::concurrency::run(ws, &cfg.interior_mutable_allowed, &mut directives);
        found.retain(|d| enabled.contains(d.lint));
        diagnostics.extend(found);
    }

    if enabled.contains(lints::LOCK_ORDER_CYCLE) {
        let _span = rec.span("audit.pass.lock-order");
        diagnostics.extend(passes::lock_order::run(
            ws,
            cfg,
            &call_graph,
            &cfgs,
            &ratchet,
            ratchet_path,
            &mut directives,
        ));
    }

    if enabled.contains(lints::DETERMINISM_CERT) {
        let _span = rec.span("audit.pass.determinism");
        diagnostics.extend(passes::determinism::run(
            ws,
            cfg,
            &call_graph,
            &ratchet,
            ratchet_path,
            &mut directives,
        ));
    }

    if enabled.contains(lints::HOT_PATH_CERT) {
        let _span = rec.span("audit.pass.hot-path-cert");
        diagnostics.extend(passes::hot_path::run(
            ws,
            cfg,
            &call_graph,
            &cfgs,
            &ratchet,
            ratchet_path,
            &mut directives,
        ));
    }

    if enabled.contains(lints::ERROR_DISCARD) {
        let _span = rec.span("audit.pass.error-discard");
        diagnostics.extend(passes::error_discard::run(
            ws,
            cfg,
            &call_graph,
            &cfgs,
            &ratchet,
            ratchet_path,
            &mut directives,
        ));
    }

    if enabled.contains(lints::DEAD_EXPORT) {
        if let Some(ratchet_rel) = ratchet_path {
            let _span = rec.span("audit.pass.dead-exports");
            diagnostics.extend(passes::dead_exports::run(
                ws,
                ratchet_rel,
                &ratchet,
                &mut directives,
            ));
        }
    }

    if enabled.contains(lints::UNUSED_ALLOW) {
        for (file, ds) in ws.files.iter().zip(directives.iter_mut()) {
            // A directive for a lint the caller disabled is trivially
            // "used": the run never gave it a chance to suppress.
            for d in ds.iter_mut() {
                if !enabled.contains(d.lint.as_str()) {
                    d.used = true;
                }
            }
            diagnostics.extend(lints::unused_allow_diags(&file.rel, ds));
        }
    }

    diagnostics.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.lint).cmp(&(b.path.as_str(), b.line, b.col, b.lint))
    });
    Ok(AuditReport {
        diagnostics,
        files_scanned: ws.files.len(),
        lex_count: ws.lex_count,
    })
}

/// Audit every classifiable `.rs` file under `root` with the given lint
/// set ([`all_lints`] for everything), reading `audit.toml` if present.
/// Convenience wrapper around [`load_workspace`] + [`run_audit`] with a
/// disabled recorder.
pub fn audit_workspace(root: &Path, enabled: &BTreeSet<&str>) -> Result<AuditReport, AuditError> {
    audit_workspace_observed(root, enabled, &udi_obs::Recorder::disabled())
}

/// [`audit_workspace`] with per-pass timing spans emitted through `rec`.
pub fn audit_workspace_observed(
    root: &Path,
    enabled: &BTreeSet<&str>,
    rec: &udi_obs::Recorder,
) -> Result<AuditReport, AuditError> {
    let ws = {
        let _span = rec.span("audit.load");
        load_workspace(root)?
    };
    let cfg = load_config(root)?;
    run_audit(&ws, &cfg, enabled, rec)
}

/// Walk upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

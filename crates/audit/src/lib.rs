#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `udi-audit` — a zero-dependency static analysis engine enforcing the
//! workspace's probability, determinism, and panic-freedom invariants.
//!
//! UDI's correctness claims are probabilistic identities: p-med-schema
//! weights (Algorithm 2), maximum-entropy p-mapping distributions
//! (Theorem 5.2), and consolidation equivalence (Theorem 6.2). Those
//! identities silently degrade under hash-order nondeterminism, ad-hoc
//! float comparison, and panic-on-bad-input library code. This crate turns
//! the conventions that protect them into machine-checked rules, in the
//! same house style as `udi-obs`: hand-rolled, dependency-free, and wired
//! into both CI and the workspace test suite.
//!
//! The pipeline is a hand-rolled Rust [`lexer`] (nested block comments,
//! raw strings, char literals vs. lifetimes) feeding token-stream pattern
//! matchers ([`lints`]) over every `.rs` file the [`mod@classify`] walker
//! attributes to a workspace crate. Diagnostics are rustc-style
//! `file:line:col`, and any violation makes the binary exit nonzero.
//!
//! See `AUDIT.md` at the repository root for the lint taxonomy and the
//! escape-hatch policy.
//!
//! # Example
//!
//! ```
//! use udi_audit::{audit_source, all_lints, CodeKind, FileClass};
//!
//! let class = FileClass { crate_name: "udi-core".into(), kind: CodeKind::Lib };
//! let diags = audit_source(
//!     "demo.rs",
//!     &class,
//!     "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
//!     &all_lints(),
//! );
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].lint, "no-panic-in-lib");
//! assert_eq!((diags[0].line, diags[0].col), (1, 37));
//! ```

pub mod classify;
pub mod lexer;
pub mod lints;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

pub use classify::{classify, collect_sources, CodeKind, FileClass};
pub use lints::{all_lints, audit_source, Diagnostic, LintInfo, LINTS};

/// A failure of the audit *process* itself (I/O), as opposed to audit
/// findings.
#[derive(Debug)]
pub enum AuditError {
    /// A file or directory could not be read.
    Io(PathBuf, std::io::Error),
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::Io(p, e) => write!(f, "cannot read {}: {e}", p.display()),
        }
    }
}

impl std::error::Error for AuditError {}

/// Outcome of a whole-workspace audit.
#[derive(Debug)]
pub struct AuditReport {
    /// Every violation found, in path order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl AuditReport {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Audit every classifiable `.rs` file under `root` with the given lint
/// set ([`all_lints`] for everything).
pub fn audit_workspace(root: &Path, enabled: &BTreeSet<&str>) -> Result<AuditReport, AuditError> {
    let sources = collect_sources(root).map_err(|e| AuditError::Io(root.to_path_buf(), e))?;
    let mut diagnostics = Vec::new();
    let files_scanned = sources.len();
    for (rel, class) in sources {
        let abs = root.join(&rel);
        let src = std::fs::read_to_string(&abs).map_err(|e| AuditError::Io(abs.clone(), e))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        diagnostics.extend(audit_source(&rel_str, &class, &src, enabled));
    }
    Ok(AuditReport {
        diagnostics,
        files_scanned,
    })
}

/// Walk upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

//! Interprocedural effect inference: which blocking or concurrency
//! effects can each workspace function perform, transitively?
//!
//! The serving layer's contract is that *readers never block*: answering
//! a query must not take a lock, touch the filesystem or network, spawn
//! a thread, build a channel, or panic while holding a guard (poisoning
//! the mutex for every later caller). The file-local lints can police
//! spellings; proving the contract needs a whole-program view. This
//! module provides it in three layers:
//!
//! 1. **Effect lattice.** [`EffectSet`] is a five-element powerset
//!    lattice ordered by inclusion: [`Effect::Locks`],
//!    [`Effect::BlocksIo`], [`Effect::Spawns`], [`Effect::Channels`],
//!    [`Effect::PanicsViaPoison`]. Join is set union; the analysis is a
//!    *may* analysis, so bigger means "can do more".
//! 2. **Local extraction.** [`local_effects`] scans one fn body's token
//!    range for effect sites. Lock acquisition reuses the lock-order
//!    pass's guard-call detector; `PanicsViaPoison` is path-sensitive —
//!    it runs the same gen/kill guard-range dataflow
//!    ([`crate::dataflow::forward_may`] over the fn's CFG), so a panic
//!    site *after* `drop(guard)` or outside the guard's lexical scope
//!    does not count. Test code never reaches extraction at all (callers
//!    skip `in_test` fns), which is the other path-sensitivity rule: an
//!    effect inside `#[cfg(test)]` doesn't leak into a certificate.
//! 3. **Interprocedural solve.** [`solve`] condenses the call graph into
//!    its component DAG ([`crate::graph::scc::condense`]) and walks the
//!    reverse-topological order front-to-back: a component's summary is
//!    the union of its members' local effects and its callee components'
//!    summaries (already final when visited — mutual recursion inside a
//!    component is handled by the condensation itself, so one pass is
//!    the fixpoint). The result is deterministic (BTree-ordered
//!    everywhere) and monotone: adding a call edge can only grow
//!    summaries, never shrink them.
//!
//! The `hot-path-cert` pass ([`crate::passes`]) layers the `audit.toml`
//! `[effects]` budgets on top and reports certificate failures with full
//! call chains, in the same shape as the determinism certificate.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::cfg::Cfg;
use crate::cfg::StmtKind;
use crate::dataflow::{forward_may, BitSet};
use crate::graph::scc::condense;
use crate::lexer::{Token, TokenKind};
use crate::lints::{PANIC_MACROS, PANIC_METHODS};
use crate::parser::is_comment;
use crate::passes::lock_order::{drops_name, is_guard_call, scope_end, LOCK_METHODS};

/// One element of the effect lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Effect {
    /// Acquires a lock guard (`.lock()`, `.borrow_mut()`, empty-argument
    /// `.read()` / `.write()`).
    Locks,
    /// Performs blocking I/O: filesystem (`std::fs`, `File`,
    /// `OpenOptions`), sockets (`TcpStream` and friends), standard
    /// streams, or the print-macro family.
    BlocksIo,
    /// Spawns a thread (`thread::spawn`, scoped spawns, builders).
    Spawns,
    /// Constructs an mpsc channel (`channel()` / `sync_channel()`).
    Channels,
    /// Can panic at a statement where a lock guard is live — poisoning
    /// the mutex for every subsequent acquirer.
    PanicsViaPoison,
}

impl Effect {
    /// Every effect, in lattice display order.
    pub const ALL: [Effect; 5] = [
        Effect::Locks,
        Effect::BlocksIo,
        Effect::Spawns,
        Effect::Channels,
        Effect::PanicsViaPoison,
    ];

    /// Stable kebab-case name, used in diagnostics and docs.
    pub fn name(self) -> &'static str {
        match self {
            Effect::Locks => "locks",
            Effect::BlocksIo => "blocks-io",
            Effect::Spawns => "spawns",
            Effect::Channels => "channels",
            Effect::PanicsViaPoison => "panics-via-poison",
        }
    }

    fn bit(self) -> u8 {
        match self {
            Effect::Locks => 1,
            Effect::BlocksIo => 1 << 1,
            Effect::Spawns => 1 << 2,
            Effect::Channels => 1 << 3,
            Effect::PanicsViaPoison => 1 << 4,
        }
    }
}

/// A set of [`Effect`]s — the lattice element attached to each fn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct EffectSet(u8);

impl EffectSet {
    /// The bottom element: no effects.
    pub const EMPTY: EffectSet = EffectSet(0);

    /// The set containing exactly `e`.
    pub fn singleton(e: Effect) -> EffectSet {
        EffectSet(e.bit())
    }

    /// Add `e` in place.
    pub fn insert(&mut self, e: Effect) {
        self.0 |= e.bit();
    }

    /// Membership test.
    pub fn contains(self, e: Effect) -> bool {
        self.0 & e.bit() != 0
    }

    /// Lattice join (set union).
    #[must_use]
    pub fn union(self, other: EffectSet) -> EffectSet {
        EffectSet(self.0 | other.0)
    }

    /// Intersection — the hot-path pass uses it to mask a summary
    /// against an entry's banned set.
    #[must_use]
    pub fn intersect(self, other: EffectSet) -> EffectSet {
        EffectSet(self.0 & other.0)
    }

    /// True when no effect is present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Lattice order: every effect of `self` is in `other`.
    pub fn is_subset(self, other: EffectSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Members in display order.
    pub fn iter(self) -> impl Iterator<Item = Effect> {
        Effect::ALL.into_iter().filter(move |e| self.contains(*e))
    }
}

impl std::fmt::Display for EffectSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "pure");
        }
        let names: Vec<&str> = self.iter().map(Effect::name).collect();
        write!(f, "{}", names.join("+"))
    }
}

/// One effect occurrence inside a fn body, with reporting context.
#[derive(Debug, Clone)]
pub struct EffectSite {
    /// Which lattice element the site contributes.
    pub effect: Effect,
    /// Human-readable description of the offending construct.
    pub what: String,
    /// 1-based line of the site.
    pub line: u32,
    /// 1-based column of the site.
    pub col: u32,
}

/// Type idents whose mere construction/use in a body marks blocking I/O.
const IO_TYPES: &[&str] = &[
    "File",
    "OpenOptions",
    "TcpStream",
    "TcpListener",
    "UdpSocket",
];

/// `std::io` stream accessors (`io::stdout()` …).
const IO_STREAMS: &[&str] = &["stdin", "stdout", "stderr"];

/// Print-family macros (blocking writes to the standard streams).
const IO_PRINT_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// Scan one fn body for effect sites. `fcfg` enables the path-sensitive
/// `PanicsViaPoison` analysis; without a CFG that effect is skipped
/// entirely (never over-approximated — a certificate must not fail on
/// facts the engine cannot ground).
///
/// The caller owns the skip policy (test fns, non-lib files, exempt
/// crates) and any allow-directive sanctioning.
pub fn local_effects(tokens: &[Token], body: Range<usize>, fcfg: Option<&Cfg>) -> Vec<EffectSite> {
    let mut sites = Vec::new();
    let sig_prev = |from: usize| {
        (body.start..from)
            .rev()
            .find(|&k| tokens.get(k).is_some_and(|t| !is_comment(t)))
    };
    let sig_next = |from: usize| {
        (from + 1..body.end.min(tokens.len()))
            .find(|&k| tokens.get(k).is_some_and(|t| !is_comment(t)))
    };

    for i in body.clone() {
        let Some(t) = tokens.get(i) else { continue };
        if t.kind != TokenKind::Ident {
            continue;
        }
        let text = t.text.as_str();
        let followed_by =
            |s: &str| sig_next(i).is_some_and(|k| tokens.get(k).is_some_and(|t| t.text == s));
        let preceded_by =
            |s: &str| sig_prev(i).is_some_and(|k| tokens.get(k).is_some_and(|t| t.text == s));

        // Locks: guard-returning method calls, same detector as the
        // lock-order pass.
        if LOCK_METHODS.contains(&text) && is_guard_call(tokens, body.clone(), i) {
            sites.push(EffectSite {
                effect: Effect::Locks,
                what: format!("`.{text}()` guard acquisition"),
                line: t.line,
                col: t.col,
            });
            continue;
        }

        // BlocksIo: filesystem / socket types, std stream handles,
        // print-family macros, `fs::` paths.
        let io = if IO_TYPES.contains(&text) {
            Some(format!("`{text}` (blocking I/O handle)"))
        } else if IO_STREAMS.contains(&text) && preceded_by("::") && followed_by("(") {
            Some(format!("`io::{text}()` (standard stream)"))
        } else if text == "fs" && followed_by("::") {
            Some("`fs::…` (filesystem access)".to_owned())
        } else if IO_PRINT_MACROS.contains(&text) && followed_by("!") {
            Some(format!("`{text}!` (blocking stream write)"))
        } else {
            None
        };
        if let Some(what) = io {
            sites.push(EffectSite {
                effect: Effect::BlocksIo,
                what,
                line: t.line,
                col: t.col,
            });
            continue;
        }

        // Spawns: any `spawn(…)` call (free, builder, or scoped) plus the
        // `thread::scope` entry itself.
        if text == "spawn" && followed_by("(") {
            sites.push(EffectSite {
                effect: Effect::Spawns,
                what: "`spawn(…)` (thread spawn)".to_owned(),
                line: t.line,
                col: t.col,
            });
            continue;
        }
        if text == "scope" && followed_by("(") {
            let thread_qualified = sig_prev(i)
                .filter(|&k| tokens.get(k).is_some_and(|t| t.text == "::"))
                .and_then(sig_prev)
                .is_some_and(|k| tokens.get(k).is_some_and(|t| t.text == "thread"));
            if thread_qualified {
                sites.push(EffectSite {
                    effect: Effect::Spawns,
                    what: "`thread::scope` (scoped spawn region)".to_owned(),
                    line: t.line,
                    col: t.col,
                });
                continue;
            }
        }

        // Channels: mpsc constructors.
        if matches!(text, "channel" | "sync_channel") && followed_by("(") {
            sites.push(EffectSite {
                effect: Effect::Channels,
                what: format!("`{text}(…)` (mpsc channel construction)"),
                line: t.line,
                col: t.col,
            });
        }
    }

    if let Some(fcfg) = fcfg {
        sites.extend(poison_sites(tokens, body, fcfg));
    }
    sites.sort_by_key(|s| (s.line, s.col, s.effect));
    sites
}

/// Path-sensitive `PanicsViaPoison`: a panic-capable token at a statement
/// where a `let`-bound lock guard is live at entry. Reuses the lock-order
/// pass's guard-range dataflow — the fact is generated at the binding
/// statement and killed both at `drop(name)` and past the binding's
/// lexical scope, then propagated along real control flow by
/// [`forward_may`]. A panic in the *same* statement as the acquisition
/// (`m.lock().unwrap()`) is not a poison panic: the guard is still inside
/// the `Result` when `unwrap` decides.
fn poison_sites(tokens: &[Token], body: Range<usize>, fcfg: &Cfg) -> Vec<EffectSite> {
    // Guard facts: let-bound, non-discard guard-call acquisitions.
    struct Guard {
        name: String,
        block: usize,
        tok: usize,
    }
    let mut guards: Vec<Guard> = Vec::new();
    for i in body.clone() {
        let Some(t) = tokens.get(i) else { continue };
        if t.kind != TokenKind::Ident
            || !LOCK_METHODS.contains(&t.text.as_str())
            || !is_guard_call(tokens, body.clone(), i)
        {
            continue;
        }
        let Some(block) = fcfg.block_of_token(i) else {
            continue;
        };
        let Some(StmtKind::Let {
            name: Some(name),
            discard: false,
        }) = fcfg
            .blocks
            .get(block)
            .and_then(|b| b.stmt.as_ref())
            .map(|s| s.kind.clone())
        else {
            continue;
        };
        guards.push(Guard {
            name,
            block,
            tok: i,
        });
    }
    if guards.is_empty() {
        return Vec::new();
    }

    let nb = fcfg.blocks.len();
    let mut gen = vec![BitSet::new(guards.len()); nb];
    let mut kill = vec![BitSet::new(guards.len()); nb];
    for (bit, g) in guards.iter().enumerate() {
        if let Some(gs) = gen.get_mut(g.block) {
            gs.insert(bit);
        }
        let scope = scope_end(tokens, body.clone(), g.tok);
        for (b, blk) in fcfg.blocks.iter().enumerate() {
            let Some(s) = &blk.stmt else { continue };
            if s.span.start >= scope || drops_name(tokens, s.span.clone(), &g.name) {
                if let Some(ks) = kill.get_mut(b) {
                    ks.insert(bit);
                }
            }
        }
    }
    let flow = forward_may(fcfg, guards.len(), &gen, &kill);

    let sig_prev = |from: usize| {
        (body.start..from)
            .rev()
            .find(|&k| tokens.get(k).is_some_and(|t| !is_comment(t)))
    };
    let sig_next = |from: usize| {
        (from + 1..body.end.min(tokens.len()))
            .find(|&k| tokens.get(k).is_some_and(|t| !is_comment(t)))
    };
    let mut sites = Vec::new();
    for i in body.clone() {
        let Some(t) = tokens.get(i) else { continue };
        if t.kind != TokenKind::Ident {
            continue;
        }
        let text = t.text.as_str();
        let at = |k: usize, s: &str| tokens.get(k).is_some_and(|t| t.text == s);
        let method = PANIC_METHODS.contains(&text)
            && sig_prev(i).is_some_and(|k| at(k, "."))
            && sig_next(i).is_some_and(|k| at(k, "("));
        let mac = PANIC_MACROS.contains(&text) && sig_next(i).is_some_and(|k| at(k, "!"));
        if !method && !mac {
            continue;
        }
        let Some(b) = fcfg.block_of_token(i) else {
            continue;
        };
        let Some(held) = flow.input.get(b) else {
            continue;
        };
        let Some(first) = held.iter().next() else {
            continue;
        };
        let spelled = if mac {
            format!("`{text}!`")
        } else {
            format!("`.{text}()`")
        };
        sites.push(EffectSite {
            effect: Effect::PanicsViaPoison,
            what: format!(
                "{spelled} while guard `{}` is held (poisons the lock)",
                guards.get(first).map(|g| g.name.as_str()).unwrap_or("?")
            ),
            line: t.line,
            col: t.col,
        });
    }
    sites
}

/// Interprocedural fixpoint: fold per-fn local effect sets bottom-up over
/// the call graph.
///
/// `adj[f]` is the callee set of fn `f` (any edge kind — a *may*
/// analysis wants the over-approximation); `local[f]` its local effects.
/// Returns the transitive summary per fn. Functions in the same strongly
/// connected component share one summary; components are solved callees
/// first along [`condense`]'s reverse-topological order, so a single
/// sweep reaches the fixpoint.
pub fn solve(n: usize, adj: &[BTreeSet<usize>], local: &[EffectSet]) -> Vec<EffectSet> {
    debug_assert_eq!(adj.len(), n);
    debug_assert_eq!(local.len(), n);
    let c = condense(n, adj);
    let mut comp_fx = vec![EffectSet::EMPTY; c.members.len()];
    for &comp in &c.topo {
        let mut fx = EffectSet::EMPTY;
        for &m in c.members.get(comp).map(Vec::as_slice).unwrap_or(&[]) {
            fx = fx.union(local.get(m).copied().unwrap_or(EffectSet::EMPTY));
        }
        for &succ in c.comp_adj.get(comp).into_iter().flatten() {
            fx = fx.union(comp_fx.get(succ).copied().unwrap_or(EffectSet::EMPTY));
        }
        if let Some(slot) = comp_fx.get_mut(comp) {
            *slot = fx;
        }
    }
    (0..n)
        .map(|f| {
            c.comp
                .get(f)
                .and_then(|&cp| comp_fx.get(cp))
                .copied()
                .unwrap_or(EffectSet::EMPTY)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use crate::lexer::lex;

    fn set(effects: &[Effect]) -> EffectSet {
        let mut s = EffectSet::EMPTY;
        for &e in effects {
            s.insert(e);
        }
        s
    }

    fn graph(n: usize, edges: &[(usize, usize)]) -> Vec<BTreeSet<usize>> {
        let mut adj = vec![BTreeSet::new(); n];
        for &(a, b) in edges {
            adj[a].insert(b);
        }
        adj
    }

    /// Lex `src` (one fn), return tokens + the body token range + CFG.
    fn body_of(src: &str) -> (Vec<Token>, Range<usize>, Cfg) {
        let tokens = lex(src);
        let open = tokens.iter().position(|t| t.text == "{").expect("body");
        let body = open..tokens.len();
        let cfg = build_cfg(&tokens, body.clone());
        (tokens, body, cfg)
    }

    #[test]
    fn lattice_ops_behave() {
        let mut s = EffectSet::EMPTY;
        assert!(s.is_empty());
        s.insert(Effect::Locks);
        s.insert(Effect::Spawns);
        assert!(s.contains(Effect::Locks));
        assert!(!s.contains(Effect::BlocksIo));
        assert!(EffectSet::singleton(Effect::Locks).is_subset(s));
        assert!(!s.is_subset(EffectSet::singleton(Effect::Locks)));
        let joined = s.union(EffectSet::singleton(Effect::Channels));
        assert_eq!(joined.iter().count(), 3);
        assert_eq!(s.to_string(), "locks+spawns");
        assert_eq!(EffectSet::EMPTY.to_string(), "pure");
        assert_eq!(
            joined.intersect(set(&[Effect::Channels, Effect::BlocksIo])),
            EffectSet::singleton(Effect::Channels)
        );
    }

    #[test]
    fn local_extraction_finds_each_effect_class() {
        let (tokens, body, _) = body_of(
            "fn f(&self) {\n\
             let _g = self.m.lock();\n\
             let h = File::open(p);\n\
             std::thread::spawn(|| {});\n\
             let (tx, rx) = std::sync::mpsc::channel();\n\
             println!(\"x\");\n\
             }",
        );
        let sites = local_effects(&tokens, body, None);
        let effects: Vec<Effect> = sites.iter().map(|s| s.effect).collect();
        assert!(effects.contains(&Effect::Locks));
        assert!(effects.contains(&Effect::BlocksIo));
        assert!(effects.contains(&Effect::Spawns));
        assert!(effects.contains(&Effect::Channels));
    }

    #[test]
    fn read_with_arguments_is_not_a_lock() {
        let (tokens, body, _) = body_of("fn f() { file.read(&mut buf); }");
        assert!(local_effects(&tokens, body, None).is_empty());
    }

    #[test]
    fn panic_under_live_guard_is_poison() {
        let (tokens, body, cfg) = body_of(
            "fn f(&self) {\n\
             let g = self.m.lock();\n\
             self.x.get(k).unwrap();\n\
             }",
        );
        let sites = local_effects(&tokens, body, Some(&cfg));
        assert!(
            sites.iter().any(|s| s.effect == Effect::PanicsViaPoison),
            "panic with guard held must register: {sites:?}"
        );
    }

    #[test]
    fn drop_kills_the_guard_range() {
        let (tokens, body, cfg) = body_of(
            "fn f(&self) {\n\
             let g = self.m.lock();\n\
             drop(g);\n\
             self.x.get(k).unwrap();\n\
             }",
        );
        let sites = local_effects(&tokens, body, Some(&cfg));
        assert!(
            !sites.iter().any(|s| s.effect == Effect::PanicsViaPoison),
            "drop(g) before the panic site must kill the fact: {sites:?}"
        );
    }

    #[test]
    fn acquisition_statement_itself_is_not_poison() {
        let (tokens, body, cfg) = body_of("fn f(&self) { let g = self.m.lock().unwrap(); }");
        let sites = local_effects(&tokens, body, Some(&cfg));
        assert!(!sites.iter().any(|s| s.effect == Effect::PanicsViaPoison));
    }

    #[test]
    fn solve_propagates_up_a_chain() {
        // 0 → 1 → 2, only 2 has a local effect.
        let adj = graph(3, &[(0, 1), (1, 2)]);
        let local = vec![
            EffectSet::EMPTY,
            EffectSet::EMPTY,
            EffectSet::singleton(Effect::BlocksIo),
        ];
        let s = solve(3, &adj, &local);
        assert!(s[0].contains(Effect::BlocksIo));
        assert!(s[1].contains(Effect::BlocksIo));
        assert!(!s[2].contains(Effect::Locks));
    }

    #[test]
    fn solve_handles_cycles_as_one_component() {
        // 0 ↔ 1 mutual recursion; 1 → 2; 2 locks, 0 spawns.
        let adj = graph(3, &[(0, 1), (1, 0), (1, 2)]);
        let local = vec![
            EffectSet::singleton(Effect::Spawns),
            EffectSet::EMPTY,
            EffectSet::singleton(Effect::Locks),
        ];
        let s = solve(3, &adj, &local);
        assert_eq!(s[0], set(&[Effect::Spawns, Effect::Locks]));
        assert_eq!(s[0], s[1], "an SCC shares one summary");
        assert_eq!(s[2], EffectSet::singleton(Effect::Locks));
    }

    #[test]
    fn solve_is_monotone_in_edges() {
        let local = vec![
            EffectSet::EMPTY,
            EffectSet::singleton(Effect::Channels),
            EffectSet::singleton(Effect::Locks),
        ];
        let before = solve(3, &graph(3, &[(0, 1)]), &local);
        let after = solve(3, &graph(3, &[(0, 1), (0, 2)]), &local);
        for f in 0..3 {
            assert!(before[f].is_subset(after[f]));
        }
    }
}

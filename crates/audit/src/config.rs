//! `audit.toml` — the checked-in contract the workspace passes enforce.
//!
//! The parser is a deliberately tiny TOML subset (sections, `key = value`
//! with strings, integers, booleans, and flat string arrays): enough for a
//! config file that is itself reviewed in PRs, with zero dependencies.
//!
//! ```toml
//! [layers]
//! udi-obs = 0
//! udi-core = 4
//!
//! [panic-reachability]
//! crates = ["udi-core"]
//! index-sites = "off"          # off | warn | error
//!
//! [concurrency]
//! interior-mutable-allowed = ["udi-obs"]
//!
//! [determinism]
//! entry-points = ["udi-core::SetupEngine::refresh"]
//! exempt-crates = ["udi-obs"]
//!
//! [effects]
//! exempt-crates = ["udi-obs"]
//! lock-free = ["udi-serve::execute_answer"]
//! io-free = ["udi-core::UdiSystem::answer"]
//! spawn-free = ["udi-core::UdiSystem::answer"]
//!
//! [lock-order]
//! exempt-crates = []
//!
//! [error-discard]
//! exempt-crates = []
//!
//! [dead-exports]
//! ratchet = "audit.ratchet"
//! ```

use std::collections::BTreeMap;
use std::path::Path;

use crate::lints::PANIC_FREE_CRATES;
use crate::AuditError;

/// How `expr[…]` indexing participates in panic-reachability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexMode {
    /// Indexing is not a panic source (the default: dense math kernels
    /// index heavily, and bounds are the paper algorithms' own loop
    /// invariants).
    Off,
    /// Reachable indexing is reported as a warning.
    Warn,
    /// Reachable indexing is an error.
    Error,
}

/// The parsed layering / pass configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crate → layer number. A crate may depend only on strictly lower
    /// layers. Empty map disables the layering pass.
    pub layers: BTreeMap<String, u32>,
    /// Crates whose `pub` lib fns must not reach a panic.
    pub reach_crates: Vec<String>,
    /// Indexing severity for panic-reachability.
    pub index_sites: IndexMode,
    /// Crates allowed to hold non-`const` interior-mutable statics.
    pub interior_mutable_allowed: Vec<String>,
    /// `fn` id-paths (`crate::(Type::)name`) the determinism pass
    /// certifies transitively. Empty disables the pass.
    pub determinism_entries: Vec<String>,
    /// Crates exempt from determinism sites (the timing authority reads
    /// the clock by design).
    pub determinism_exempt: Vec<String>,
    /// Crates exempt from the lock-order pass.
    pub lock_order_exempt: Vec<String>,
    /// Crates exempt from the error-discard pass.
    pub error_discard_exempt: Vec<String>,
    /// Crates whose bodies the effect-inference engine treats as
    /// effect-free (the obs layer's sink registry locks by design).
    pub effects_exempt: Vec<String>,
    /// `fn` id-paths that must certify lock-free.
    pub effects_lock_free: Vec<String>,
    /// `fn` id-paths that must certify free of blocking I/O.
    pub effects_io_free: Vec<String>,
    /// `fn` id-paths that must certify spawn-free.
    pub effects_spawn_free: Vec<String>,
    /// `fn` id-paths that must certify channel-free.
    pub effects_channel_free: Vec<String>,
    /// `fn` id-paths that must certify free of poisoning panics.
    pub effects_poison_free: Vec<String>,
    /// Workspace-relative path of the dead-export ratchet file. `None`
    /// disables the dead-export pass.
    pub ratchet: Option<String>,
    /// Workspace-relative path this config was read from (for diagnostics).
    pub source: Option<String>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            layers: BTreeMap::new(),
            reach_crates: PANIC_FREE_CRATES.iter().map(|s| (*s).to_owned()).collect(),
            index_sites: IndexMode::Off,
            interior_mutable_allowed: vec!["udi-obs".to_owned()],
            determinism_entries: Vec::new(),
            determinism_exempt: vec!["udi-obs".to_owned()],
            lock_order_exempt: Vec::new(),
            error_discard_exempt: Vec::new(),
            effects_exempt: vec!["udi-obs".to_owned()],
            effects_lock_free: Vec::new(),
            effects_io_free: Vec::new(),
            effects_spawn_free: Vec::new(),
            effects_channel_free: Vec::new(),
            effects_poison_free: Vec::new(),
            ratchet: None,
            source: None,
        }
    }
}

/// Load `root/audit.toml`; a missing file yields [`Config::default`].
pub fn load_config(root: &Path) -> Result<Config, AuditError> {
    let path = root.join("audit.toml");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Ok(Config::default());
    };
    parse_config(&text, "audit.toml").map_err(|(line, msg)| AuditError::Config {
        path: path.clone(),
        line,
        message: msg,
    })
}

/// One parsed TOML value of the supported subset.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    Array(Vec<String>),
}

/// Parse the config text. Errors are `(1-based line, message)`.
pub fn parse_config(text: &str, source: &str) -> Result<Config, (u32, String)> {
    let mut cfg = Config {
        source: Some(source.to_owned()),
        ..Config::default()
    };
    let mut section = String::new();
    for (ln0, raw) in text.lines().enumerate() {
        let ln = ln0 as u32 + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(h) = line.strip_prefix('[') {
            let Some(name) = h.strip_suffix(']') else {
                return Err((ln, format!("unterminated section header `{line}`")));
            };
            section = name.trim().to_owned();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err((ln, format!("expected `key = value`, got `{line}`")));
        };
        let key = key.trim().trim_matches('"');
        let value = parse_value(value.trim()).map_err(|m| (ln, m))?;
        match (section.as_str(), key) {
            ("layers", crate_name) => {
                let Value::Int(layer) = value else {
                    return Err((ln, format!("layer of `{crate_name}` must be an integer")));
                };
                if !(0..=64).contains(&layer) {
                    return Err((ln, format!("layer of `{crate_name}` out of range 0..=64")));
                }
                cfg.layers.insert(crate_name.to_owned(), layer as u32);
            }
            ("panic-reachability", "crates") => {
                let Value::Array(a) = value else {
                    return Err((ln, "`crates` must be an array of crate names".to_owned()));
                };
                cfg.reach_crates = a;
            }
            ("panic-reachability", "index-sites") => {
                let Value::Str(s) = value else {
                    return Err((ln, "`index-sites` must be a string".to_owned()));
                };
                cfg.index_sites = match s.as_str() {
                    "off" => IndexMode::Off,
                    "warn" => IndexMode::Warn,
                    "error" => IndexMode::Error,
                    other => {
                        return Err((
                            ln,
                            format!("`index-sites` must be off|warn|error, got `{other}`"),
                        ))
                    }
                };
            }
            ("determinism", "entry-points") => {
                let Value::Array(a) = value else {
                    return Err((ln, "`entry-points` must be an array of fn paths".to_owned()));
                };
                cfg.determinism_entries = a;
            }
            ("determinism", "exempt-crates") => {
                let Value::Array(a) = value else {
                    return Err((ln, "`exempt-crates` must be an array".to_owned()));
                };
                cfg.determinism_exempt = a;
            }
            ("lock-order", "exempt-crates") => {
                let Value::Array(a) = value else {
                    return Err((ln, "`exempt-crates` must be an array".to_owned()));
                };
                cfg.lock_order_exempt = a;
            }
            ("error-discard", "exempt-crates") => {
                let Value::Array(a) = value else {
                    return Err((ln, "`exempt-crates` must be an array".to_owned()));
                };
                cfg.error_discard_exempt = a;
            }
            (
                "effects",
                key @ ("exempt-crates" | "lock-free" | "io-free" | "spawn-free" | "channel-free"
                | "poison-free"),
            ) => {
                let Value::Array(a) = value else {
                    return Err((ln, format!("`{key}` must be an array of fn paths")));
                };
                match key {
                    "exempt-crates" => cfg.effects_exempt = a,
                    "lock-free" => cfg.effects_lock_free = a,
                    "io-free" => cfg.effects_io_free = a,
                    "spawn-free" => cfg.effects_spawn_free = a,
                    "channel-free" => cfg.effects_channel_free = a,
                    _ => cfg.effects_poison_free = a,
                }
            }
            ("concurrency", "interior-mutable-allowed") => {
                let Value::Array(a) = value else {
                    return Err((ln, "`interior-mutable-allowed` must be an array".to_owned()));
                };
                cfg.interior_mutable_allowed = a;
            }
            ("dead-exports", "ratchet") => {
                let Value::Str(s) = value else {
                    return Err((ln, "`ratchet` must be a path string".to_owned()));
                };
                cfg.ratchet = Some(s);
            }
            (sec, key) => {
                return Err((
                    ln,
                    format!("unknown config key `{key}` in section `[{sec}]`"),
                ));
            }
        }
    }
    Ok(cfg)
}

/// Strip a `#` comment that is outside any string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return line.get(..i).unwrap_or(line),
            _ => {}
        }
    }
    line
}

fn parse_value(v: &str) -> Result<Value, String> {
    if v == "true" {
        return Ok(Value::Bool(true));
    }
    if v == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(s) = v.strip_prefix('"') {
        let Some(s) = s.strip_suffix('"') else {
            return Err(format!("unterminated string `{v}`"));
        };
        return Ok(Value::Str(s.to_owned()));
    }
    if let Some(body) = v.strip_prefix('[') {
        let Some(body) = body.strip_suffix(']') else {
            return Err(format!("unterminated array `{v}`"));
        };
        let mut items = Vec::new();
        for part in body.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let Some(s) = part.strip_prefix('"').and_then(|p| p.strip_suffix('"')) else {
                return Err(format!("array elements must be quoted strings: `{part}`"));
            };
            items.push(s.to_owned());
        }
        return Ok(Value::Array(items));
    }
    v.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("cannot parse value `{v}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_config_round_trip() {
        let text = r#"
# layering contract
[layers]
udi-obs = 0
udi-core = 4    # serving layer

[panic-reachability]
crates = ["udi-core", "udi-query"]
index-sites = "warn"

[concurrency]
interior-mutable-allowed = ["udi-obs"]

[determinism]
entry-points = ["udi-core::SetupEngine::refresh", "udi-core::UdiSystem::answer"]
exempt-crates = ["udi-obs", "udi-bench"]

[effects]
exempt-crates = ["udi-obs", "udi-z"]
lock-free = ["udi-serve::execute_answer"]
io-free = ["udi-core::UdiSystem::answer", "udi-serve::execute_answer"]
spawn-free = ["udi-core::UdiSystem::answer"]
channel-free = ["udi-serve::execute_answer"]
poison-free = ["udi-serve::execute_answer"]

[lock-order]
exempt-crates = ["udi-x"]

[error-discard]
exempt-crates = ["udi-y"]

[dead-exports]
ratchet = "audit.ratchet"
"#;
        let cfg = parse_config(text, "audit.toml").expect("parses");
        assert_eq!(cfg.layers.get("udi-obs"), Some(&0));
        assert_eq!(cfg.layers.get("udi-core"), Some(&4));
        assert_eq!(cfg.reach_crates, vec!["udi-core", "udi-query"]);
        assert_eq!(cfg.index_sites, IndexMode::Warn);
        assert_eq!(
            cfg.determinism_entries,
            vec![
                "udi-core::SetupEngine::refresh",
                "udi-core::UdiSystem::answer"
            ]
        );
        assert_eq!(cfg.determinism_exempt, vec!["udi-obs", "udi-bench"]);
        assert_eq!(cfg.lock_order_exempt, vec!["udi-x"]);
        assert_eq!(cfg.error_discard_exempt, vec!["udi-y"]);
        assert_eq!(cfg.effects_exempt, vec!["udi-obs", "udi-z"]);
        assert_eq!(cfg.effects_lock_free, vec!["udi-serve::execute_answer"]);
        assert_eq!(
            cfg.effects_io_free,
            vec!["udi-core::UdiSystem::answer", "udi-serve::execute_answer"]
        );
        assert_eq!(cfg.effects_spawn_free, vec!["udi-core::UdiSystem::answer"]);
        assert_eq!(cfg.effects_channel_free, vec!["udi-serve::execute_answer"]);
        assert_eq!(cfg.effects_poison_free, vec!["udi-serve::execute_answer"]);
        assert_eq!(cfg.ratchet.as_deref(), Some("audit.ratchet"));
    }

    #[test]
    fn defaults_when_sections_absent() {
        let cfg = parse_config("", "audit.toml").expect("parses");
        assert!(cfg.layers.is_empty());
        assert_eq!(cfg.index_sites, IndexMode::Off);
        assert!(cfg.ratchet.is_none());
        assert!(!cfg.reach_crates.is_empty());
        assert_eq!(cfg.effects_exempt, vec!["udi-obs"]);
        assert!(cfg.effects_lock_free.is_empty());
        assert!(cfg.effects_io_free.is_empty());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_config("[layers]\nudi-core = \"high\"\n", "audit.toml").unwrap_err();
        assert_eq!(err.0, 2);
        let err = parse_config("[nope]\nkey = 1\n", "audit.toml").unwrap_err();
        assert_eq!(err.0, 2);
        assert!(err.1.contains("unknown config key"));
    }

    #[test]
    fn comments_inside_strings_survive() {
        let cfg = parse_config("[dead-exports]\nratchet = \"a#b\"\n", "t").expect("parses");
        assert_eq!(cfg.ratchet.as_deref(), Some("a#b"));
    }
}

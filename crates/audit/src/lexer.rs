//! A hand-rolled Rust lexer, just faithful enough for lint-grade pattern
//! matching.
//!
//! The token stream preserves exactly what the lints need — identifiers,
//! multi-character operators, literals, and comments with precise
//! line/column positions — while making the classic false-positive sources
//! impossible by construction: the contents of string literals (cooked,
//! raw, byte, C), char literals, and comments (line, and *nested* block)
//! never appear as identifier or punctuation tokens, and lifetimes are
//! distinguished from char literals so `'a` in `fn f<'a>` does not swallow
//! the rest of the file.
//!
//! The lexer never fails: on malformed input (e.g. an unterminated string)
//! it degrades to consuming the rest of the file as one literal token,
//! which at worst *suppresses* lints — it cannot invent a violation.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `fn`, `HashMap`).
    Ident,
    /// A raw identifier (`r#type`); `text` holds the part after `r#`.
    RawIdent,
    /// A lifetime (`'a`, `'static`); `text` holds the name without `'`.
    Lifetime,
    /// A numeric literal. `float` is true for `1.0`, `2e-3`, `1.`.
    Num {
        /// Whether the literal is a floating-point literal.
        float: bool,
    },
    /// Any string-like literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// A char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// A `//` comment (including `///` and `//!`); `text` is the full
    /// comment including the slashes.
    LineComment,
    /// A `/* … */` comment, nesting handled; `text` is the full comment.
    BlockComment,
    /// Punctuation; `text` is the full operator (`==`, `::`, `.`, `{`).
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Token text (see [`TokenKind`] for what each kind stores).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    fn new(kind: TokenKind, text: impl Into<String>, line: u32, col: u32) -> Token {
        Token {
            kind,
            text: text.into(),
            line,
            col,
        }
    }
}

/// Lex `src` into a complete token stream.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

const PUNCT3: &[&str] = &["<<=", ">>=", "..="];
const PUNCT2: &[&str] = &[
    "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "<<", ">>", "+=", "-=", "*=", "/=",
    "%=", "^=", "&=", "|=",
];

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

impl Lexer {
    fn peek(&self, k: usize) -> Option<char> {
        self.chars.get(self.i + k).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: impl Into<String>, line: u32, col: u32) {
        self.out.push(Token::new(kind, text, line, col));
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(line, col);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment(line, col);
            } else if c == '\'' {
                self.quote(line, col);
            } else if c == '"' {
                self.cooked_string();
                self.push(TokenKind::Str, "", line, col);
            } else if c.is_ascii_digit() {
                self.number(line, col);
            } else if is_ident_start(c) {
                self.ident_or_prefixed_literal(line, col);
            } else {
                self.punct(line, col);
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::LineComment, text, line, col);
    }

    fn block_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let mut depth = 0u32;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth = depth.saturating_sub(1);
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::BlockComment, text, line, col);
    }

    /// At a `'`: either a lifetime or a char literal.
    fn quote(&mut self, line: u32, col: u32) {
        self.bump(); // the opening '
        match self.peek(0) {
            // Escape sequence ⇒ char literal; consume to the closing quote.
            Some('\\') => {
                self.bump();
                self.bump(); // the escaped character (enough for \', \\)
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokenKind::Char, "", line, col);
            }
            // `'a'` is a char, `'a` (no closing quote) is a lifetime.
            Some(c) if is_ident_start(c) => {
                if self.peek(1) == Some('\'') {
                    self.bump();
                    self.bump();
                    self.push(TokenKind::Char, "", line, col);
                } else {
                    let mut name = String::new();
                    while let Some(c) = self.peek(0) {
                        if !is_ident_continue(c) {
                            break;
                        }
                        name.push(c);
                        self.bump();
                    }
                    self.push(TokenKind::Lifetime, name, line, col);
                }
            }
            // `'('`, `'9'`, … — a one-character char literal.
            _ => {
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokenKind::Char, "", line, col);
            }
        }
    }

    /// At a `"`: consume a cooked string body (escapes honored).
    fn cooked_string(&mut self) {
        self.bump(); // the opening "
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump();
            } else if c == '"' {
                break;
            }
        }
    }

    /// At a `"` of a raw string with `hashes` leading `#`s: consume until
    /// `"` followed by the same number of `#`s.
    fn raw_string(&mut self, hashes: usize) {
        self.bump(); // the opening "
        while let Some(c) = self.bump() {
            if c == '"' {
                let closed = (0..hashes).all(|k| self.peek(k) == Some('#'));
                if closed {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
        }
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let radix_prefixed = self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
        self.number_body(&mut text, radix_prefixed);
        // A fractional part: `1.5`, `1.` — but not `1..2` (range) and not
        // `1.max(2)` (method call).
        if self.peek(0) == Some('.') && !radix_prefixed {
            let after = self.peek(1);
            let fractional = match after {
                Some(c) if c.is_ascii_digit() => true,
                Some('.') => false,
                Some(c) if is_ident_start(c) => false,
                _ => true, // trailing-dot float like `1.`
            };
            if fractional {
                text.push('.');
                self.bump();
                self.number_body(&mut text, false);
            }
        }
        let has_exponent = !radix_prefixed
            && text
                .char_indices()
                .any(|(k, c)| matches!(c, 'e' | 'E') && k > 0);
        let float = !radix_prefixed && (text.contains('.') || has_exponent);
        self.push(TokenKind::Num { float }, text, line, col);
    }

    /// Digits, underscores, radix letters, suffixes, and (in decimal)
    /// exponents with an optional sign.
    fn number_body(&mut self, text: &mut String, radix_prefixed: bool) {
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
                // An exponent sign directly after e/E: `1e-5`, `2E+3`.
                if !radix_prefixed
                    && matches!(c, 'e' | 'E')
                    && matches!(self.peek(0), Some('+' | '-'))
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                {
                    if let Some(sign) = self.bump() {
                        text.push(sign);
                    }
                }
            } else {
                break;
            }
        }
    }

    /// An identifier, or a string literal carrying an identifier-like
    /// prefix (`r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`, `b'x'`,
    /// `r#ident`).
    fn ident_or_prefixed_literal(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        let raw_capable = matches!(text.as_str(), "r" | "br" | "cr");
        let cooked_prefix = matches!(text.as_str(), "b" | "c");
        match self.peek(0) {
            Some('"') if raw_capable => {
                self.raw_string(0);
                self.push(TokenKind::Str, "", line, col);
            }
            Some('"') if cooked_prefix => {
                self.cooked_string();
                self.push(TokenKind::Str, "", line, col);
            }
            Some('#') if raw_capable => {
                let mut hashes = 0;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    self.raw_string(hashes);
                    self.push(TokenKind::Str, "", line, col);
                } else if text == "r" && hashes == 1 && self.peek(1).is_some_and(is_ident_start) {
                    // Raw identifier: r#type.
                    self.bump(); // #
                    let mut name = String::new();
                    while let Some(c) = self.peek(0) {
                        if !is_ident_continue(c) {
                            break;
                        }
                        name.push(c);
                        self.bump();
                    }
                    self.push(TokenKind::RawIdent, name, line, col);
                } else {
                    self.push(TokenKind::Ident, text, line, col);
                }
            }
            Some('\'') if text == "b" => {
                let (l, c) = (self.line, self.col);
                self.quote(l, c);
                // Rewrite the just-pushed token to start at the `b`.
                if let Some(last) = self.out.last_mut() {
                    last.kind = TokenKind::Char;
                    last.line = line;
                    last.col = col;
                }
            }
            _ => self.push(TokenKind::Ident, text, line, col),
        }
    }

    fn punct(&mut self, line: u32, col: u32) {
        let probe: String = (0..3).filter_map(|k| self.peek(k)).collect();
        for op in PUNCT3 {
            if probe.starts_with(op) {
                for _ in 0..3 {
                    self.bump();
                }
                self.push(TokenKind::Punct, *op, line, col);
                return;
            }
        }
        for op in PUNCT2 {
            if probe.starts_with(op) {
                for _ in 0..2 {
                    self.bump();
                }
                self.push(TokenKind::Punct, *op, line, col);
                return;
            }
        }
        if let Some(c) = self.bump() {
            self.push(TokenKind::Punct, c.to_string(), line, col);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ts = kinds("x.unwrap()");
        assert_eq!(ts[0], (TokenKind::Ident, "x".into()));
        assert_eq!(ts[1], (TokenKind::Punct, ".".into()));
        assert_eq!(ts[2], (TokenKind::Ident, "unwrap".into()));
        assert_eq!(ts[3], (TokenKind::Punct, "(".into()));
    }

    #[test]
    fn strings_hide_their_contents() {
        for src in [
            "let s = \"call .unwrap() here\";",
            "let s = r\"x.unwrap()\";",
            "let s = r#\"x.unwrap() \" still\"#;",
            "let s = b\"x.unwrap()\";",
            "let s = br#\"x.unwrap()\"#;",
        ] {
            let toks = lex(src);
            assert!(!toks.iter().any(|t| t.text == "unwrap"), "{src}: {toks:?}");
            assert!(toks.iter().any(|t| t.kind == TokenKind::Str), "{src}");
        }
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner .unwrap() */ still outer */ fn f() {}");
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert_eq!(toks[1].text, "fn");
    }

    #[test]
    fn line_comments_to_eol() {
        let toks = lex("// has .unwrap() in it\nlet x = 1;");
        assert_eq!(toks[0].kind, TokenKind::LineComment);
        assert_eq!(toks[1].text, "let");
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ts = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(ts.contains(&(TokenKind::Lifetime, "a".into())));
        assert!(ts.iter().any(|(k, _)| *k == TokenKind::Char));
        // The char literal must not have eaten the closing brace.
        assert_eq!(ts.last(), Some(&(TokenKind::Punct, "}".into())));
    }

    #[test]
    fn escaped_char_literals() {
        let ts = kinds(r"let c = '\''; let n = '\n'; let b = b'\x41';");
        let chars = ts.iter().filter(|(k, _)| *k == TokenKind::Char).count();
        assert_eq!(chars, 3);
        assert_eq!(ts.last(), Some(&(TokenKind::Punct, ";".into())));
    }

    #[test]
    fn numbers_and_floats() {
        let ts = kinds("1 1.0 1. 2e-3 0x1F 1..4 1.max(2) 1_000u64");
        let nums: Vec<bool> = ts
            .iter()
            .filter_map(|(k, _)| match k {
                TokenKind::Num { float } => Some(*float),
                _ => None,
            })
            .collect();
        // 1, 1.0, 1., 2e-3, 0x1F, 1, 4, 1, 2, 1_000u64
        assert_eq!(
            nums,
            vec![false, true, true, true, false, false, false, false, false, false]
        );
        assert!(ts.contains(&(TokenKind::Punct, "..".into())));
        assert!(ts.contains(&(TokenKind::Ident, "max".into())));
    }

    #[test]
    fn multichar_operators() {
        let ts = kinds("a == b != c :: d -> e .. f ..= g");
        for op in ["==", "!=", "::", "->", "..", "..="] {
            assert!(ts.contains(&(TokenKind::Punct, op.into())), "{op}");
        }
    }

    #[test]
    fn raw_identifiers() {
        let ts = kinds("let r#type = 1;");
        assert!(ts.contains(&(TokenKind::RawIdent, "type".into())));
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_string_consumes_rest_without_panicking() {
        let toks = lex("let s = \"never closed .unwrap()");
        assert!(!toks.iter().any(|t| t.text == "unwrap"));
    }
}

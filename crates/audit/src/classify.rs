//! Mapping workspace files to the crate and code class the lints care
//! about.
//!
//! Every lint's applicability is a function of *where* the code lives:
//! library code of `udi-core` must be panic-free, the same tokens in a
//! bench binary or a `#[cfg(test)]` module are fine. This module derives
//! that classification purely from the workspace's directory layout, so the
//! engine needs no Cargo metadata (and stays zero-dependency).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Which compilation class a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeKind {
    /// Library code — the surface every lint applies to.
    Lib,
    /// A binary target (`src/main.rs`, `src/bin/*`): exempt.
    Bin,
    /// Integration-test code (`tests/*`): exempt.
    Test,
    /// Benchmark code (`benches/*`, the whole `udi-bench` crate): exempt.
    Bench,
    /// Example code (`examples/*`): exempt.
    Example,
}

/// The lint-relevant identity of one source file.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Cargo package name (`udi-core`, …; the workspace root package is
    /// `udi`).
    pub crate_name: String,
    /// Code class within that crate.
    pub kind: CodeKind,
}

/// Classify a workspace-relative path. `None` for files the audit does not
/// cover (stub crates, experiment scripts, …).
pub fn classify(rel: &Path) -> Option<FileClass> {
    let parts: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    let class = |crate_name: &str, kind| {
        Some(FileClass {
            crate_name: crate_name.to_owned(),
            kind,
        })
    };
    match parts.as_slice() {
        ["crates", name, rest @ ..] => {
            let crate_name = format!("udi-{name}");
            if *name == "bench" {
                // The whole reproduction-harness crate is bench code.
                return class(&crate_name, CodeKind::Bench);
            }
            match rest {
                ["src", "main.rs"] => class(&crate_name, CodeKind::Bin),
                ["src", "bin", ..] => class(&crate_name, CodeKind::Bin),
                ["src", ..] => class(&crate_name, CodeKind::Lib),
                ["tests", ..] => class(&crate_name, CodeKind::Test),
                ["benches", ..] => class(&crate_name, CodeKind::Bench),
                ["examples", ..] => class(&crate_name, CodeKind::Example),
                _ => None,
            }
        }
        ["src", "main.rs"] => class("udi", CodeKind::Bin),
        ["src", "bin", ..] => class("udi", CodeKind::Bin),
        ["src", ..] => class("udi", CodeKind::Lib),
        ["tests", ..] => class("udi", CodeKind::Test),
        ["benches", ..] => class("udi", CodeKind::Bench),
        ["examples", ..] => class("udi", CodeKind::Example),
        _ => None,
    }
}

/// Directories never descended into: build output, VCS metadata, the
/// offline dependency stubs (external code, not UDI's), and experiment
/// results.
const SKIP_DIRS: &[&str] = &[
    "target",
    ".git",
    ".github",
    "offline",
    "related",
    "results",
    "node_modules",
    // The deliberate-violation fixture workspace under
    // crates/audit/testdata/ is audited by its own tests, never as part
    // of the real workspace.
    "testdata",
];

/// Collect every classifiable `.rs` file under `root`, as
/// `(workspace-relative path, class)`, in deterministic (sorted) order.
pub fn collect_sources(root: &Path) -> io::Result<Vec<(PathBuf, FileClass)>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    Ok(files
        .into_iter()
        .filter_map(|rel| classify(&rel).map(|c| (rel, c)))
        .collect())
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kind_of(p: &str) -> Option<(String, CodeKind)> {
        classify(Path::new(p)).map(|c| (c.crate_name, c.kind))
    }

    #[test]
    fn crate_layout_classification() {
        assert_eq!(
            kind_of("crates/core/src/engine.rs"),
            Some(("udi-core".into(), CodeKind::Lib))
        );
        assert_eq!(
            kind_of("crates/core/src/bin/tool.rs"),
            Some(("udi-core".into(), CodeKind::Bin))
        );
        assert_eq!(
            kind_of("crates/core/tests/t.rs"),
            Some(("udi-core".into(), CodeKind::Test))
        );
        assert_eq!(
            kind_of("crates/bench/src/lib.rs"),
            Some(("udi-bench".into(), CodeKind::Bench))
        );
        assert_eq!(
            kind_of("crates/bench/src/bin/fig4.rs"),
            Some(("udi-bench".into(), CodeKind::Bench))
        );
    }

    #[test]
    fn root_package_classification() {
        assert_eq!(kind_of("src/lib.rs"), Some(("udi".into(), CodeKind::Lib)));
        assert_eq!(kind_of("src/main.rs"), Some(("udi".into(), CodeKind::Bin)));
        assert_eq!(
            kind_of("tests/end_to_end.rs"),
            Some(("udi".into(), CodeKind::Test))
        );
        assert_eq!(
            kind_of("examples/observability.rs"),
            Some(("udi".into(), CodeKind::Example))
        );
    }

    #[test]
    fn uncovered_paths_are_skipped() {
        assert_eq!(kind_of("offline/stubs/rand/src/lib.rs"), None);
        assert_eq!(kind_of("build.rs"), None);
    }
}

//! The lint pass: domain-specific rules over the token stream, with
//! scoped escape hatches.
//!
//! Each lint is a pattern over [`Token`]s plus an
//! applicability predicate over [`FileClass`].
//! Code inside `#[cfg(test)]` modules and `#[test]` functions is exempt
//! from every lint (the invariants protect *shipped* probability code, not
//! assertions about it).
//!
//! # Escape hatches
//!
//! A violation can be accepted explicitly — with a mandatory reason:
//!
//! ```text
//! // udi-audit: allow(no-panic-in-lib, "documented invariant: engine is only exposed configured")
//! ```
//!
//! The directive covers its own line when it trails code, otherwise the
//! next line of code. A directive without a reason, with an unknown lint
//! name, or that suppresses nothing is itself a violation
//! (`malformed-allow` / `unused-allow`) — the allow inventory is the
//! grep-able tech-debt ledger, so it must stay accurate.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::classify::{CodeKind, FileClass};
use crate::lexer::{lex, Token, TokenKind};
use crate::parser::is_comment;

/// `unwrap()/expect()/panic!/…` forbidden in library code of the
/// panic-free crates.
pub const NO_PANIC_IN_LIB: &str = "no-panic-in-lib";
/// `HashMap`/`HashSet` forbidden in probability-producing library code.
pub const DETERMINISTIC_ITERATION: &str = "deterministic-iteration";
/// `==`/`!=` against float literals forbidden in probability code.
pub const FLOAT_EQ: &str = "float-eq";
/// `Instant`/`SystemTime` forbidden outside `udi-obs` and bench code.
pub const NO_RAW_TIME: &str = "no-raw-time";
/// `println!`/`eprintln!`/`dbg!` forbidden in library code.
pub const NO_STRAY_IO: &str = "no-stray-io";
/// A `udi-audit:` directive that does not parse, names an unknown lint, or
/// omits the mandatory reason.
pub const MALFORMED_ALLOW: &str = "malformed-allow";
/// An allow directive that suppressed nothing — stale tech debt.
pub const UNUSED_ALLOW: &str = "unused-allow";
/// A `pub` lib fn from which a panic is reachable through the call graph.
pub const PANIC_REACHABILITY: &str = "panic-reachability";
/// A crate dependency that violates the declared layer order.
pub const CRATE_LAYERING: &str = "crate-layering";
/// `static mut` anywhere in shipped code.
pub const STATIC_MUT: &str = "static-mut";
/// A non-`const` interior-mutable static outside the sanctioned crates.
pub const SHARED_MUTABLE_STATIC: &str = "shared-mutable-static";
/// A cycle in the workspace lock-acquisition-order graph (deadlock risk).
pub const LOCK_ORDER_CYCLE: &str = "lock-order-cycle";
/// A declared deterministic entry point that can reach nondeterministic
/// iteration, a raw clock read, or an environment read.
pub const DETERMINISM_CERT: &str = "determinism-cert";
/// A dropped `Result` (`let _ = …` or a bare expression statement of a
/// fallible call) in library code.
pub const ERROR_DISCARD: &str = "error-discard";
/// A `pub` item with zero intra-workspace references.
pub const DEAD_EXPORT: &str = "dead-export";
/// A declared hot-path entry point whose transitive effect summary
/// contains an effect its `[effects]` budget bans (locks, blocking I/O,
/// spawns, channels, poisoning panics).
pub const HOT_PATH_CERT: &str = "hot-path-cert";

/// Name and one-line rationale of one lint.
#[derive(Debug, Clone, Copy)]
pub struct LintInfo {
    /// Lint name as used in diagnostics and allow directives.
    pub name: &'static str,
    /// One-line rationale.
    pub summary: &'static str,
}

/// Every lint the engine knows, in severity-independent display order.
pub const LINTS: &[LintInfo] = &[
    LintInfo {
        name: NO_PANIC_IN_LIB,
        summary: "library code of the panic-free crates must propagate UdiError, not panic \
                  (unwrap/expect/panic!/unreachable!/todo!/unimplemented!)",
    },
    LintInfo {
        name: DETERMINISTIC_ITERATION,
        summary: "HashMap/HashSet iteration order is nondeterministic; probability-producing \
                  crates must use BTreeMap/BTreeSet (or justify lookup-only use)",
    },
    LintInfo {
        name: FLOAT_EQ,
        summary: "==/!= against float literals breaks under rounding; compare via epsilon \
                  helpers (udi_schema::float)",
    },
    LintInfo {
        name: NO_RAW_TIME,
        summary: "Instant/SystemTime outside udi-obs and bench code splinters the timing \
                  source; use udi_obs spans or udi_obs::Stopwatch",
    },
    LintInfo {
        name: NO_STRAY_IO,
        summary: "println!/eprintln!/dbg! in library crates bypasses the obs sinks; emit \
                  events or return data instead",
    },
    LintInfo {
        name: MALFORMED_ALLOW,
        summary: "udi-audit directives must be `allow(<lint>, \"<reason>\")` with a known \
                  lint and a non-empty reason",
    },
    LintInfo {
        name: UNUSED_ALLOW,
        summary: "an allow directive that suppresses nothing is stale and must be removed",
    },
    LintInfo {
        name: PANIC_REACHABILITY,
        summary: "a pub lib fn of a panic-free crate must not transitively reach \
                  unwrap/expect/panic! through the workspace call graph (full chain reported)",
    },
    LintInfo {
        name: CRATE_LAYERING,
        summary: "crate dependencies must respect the layer order declared in audit.toml; \
                  back-edges and undeclared crates fail",
    },
    LintInfo {
        name: STATIC_MUT,
        summary: "`static mut` is unsynchronized shared mutable state; the parallel \
                  fan-out path forbids it outright",
    },
    LintInfo {
        name: SHARED_MUTABLE_STATIC,
        summary: "non-const interior-mutable statics outside udi-obs's sanctioned sink \
                  registry are hidden cross-thread channels; pass state explicitly",
    },
    LintInfo {
        name: LOCK_ORDER_CYCLE,
        summary: "two code paths acquiring the same locks in opposite orders deadlock under \
                  the parallel serving layer; acquisition order must be a DAG (chains reported)",
    },
    LintInfo {
        name: DETERMINISM_CERT,
        summary: "functions reachable from the audit.toml [determinism] entry points must \
                  avoid hash-ordered iteration, raw clock reads, and env reads — a transitive \
                  proof of the byte-identical-answers invariant",
    },
    LintInfo {
        name: ERROR_DISCARD,
        summary: "`let _ = fallible()` or a bare `fallible();` statement silently drops a \
                  Result in library code; handle or propagate it",
    },
    LintInfo {
        name: DEAD_EXPORT,
        summary: "pub items nothing in the workspace references; existing debt is frozen \
                  in the ratchet file, new debt fails",
    },
    LintInfo {
        name: HOT_PATH_CERT,
        summary: "entry points declared in audit.toml [effects] must not transitively reach \
                  the banned effects of their budget (lock acquisition, blocking I/O, thread \
                  spawns, channel construction, poisoning panics) — the readers-never-block \
                  proof of the serving layer",
    },
];

/// True if `name` is a known lint.
pub fn is_known_lint(name: &str) -> bool {
    LINTS.iter().any(|l| l.name == name)
}

/// The full lint set, as an enabled-set for [`audit_source`].
pub fn all_lints() -> BTreeSet<&'static str> {
    LINTS.iter().map(|l| l.name).collect()
}

/// How severe a finding is: errors gate CI, warnings are visible debt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Fails the audit (nonzero exit, red CI).
    Error,
    /// Reported and counted, but does not fail the audit. Used by the
    /// dead-export ratchet and warn-mode index reachability.
    Warning,
}

impl Severity {
    /// `"error"` / `"warning"` — the word diagnostics and JSON print.
    pub fn word(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One reported violation, rustc-style.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Which lint fired.
    pub lint: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
    /// Extra context lines (call chains, ratchet hints), rendered as
    /// `note:` lines under the location.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// An error diagnostic with no notes.
    pub fn error(
        path: &str,
        line: u32,
        col: u32,
        lint: &'static str,
        message: String,
    ) -> Diagnostic {
        Diagnostic {
            path: path.to_owned(),
            line,
            col,
            lint,
            severity: Severity::Error,
            message,
            notes: Vec::new(),
        }
    }

    /// A warning diagnostic with no notes.
    pub fn warning(
        path: &str,
        line: u32,
        col: u32,
        lint: &'static str,
        message: String,
    ) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(path, line, col, lint, message)
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}[udi-audit::{}]: {}",
            self.severity.word(),
            self.lint,
            self.message
        )?;
        write!(f, "  --> {}:{}:{}", self.path, self.line, self.col)?;
        for note in &self.notes {
            write!(f, "\n  note: {note}")?;
        }
        Ok(())
    }
}

/// Crates whose library code must be panic-free (propagate `UdiError`).
pub const PANIC_FREE_CRATES: &[&str] = &[
    "udi-core",
    "udi-schema",
    "udi-maxent",
    "udi-query",
    "udi-store",
    "udi-audit",
    "udi-serve",
];

/// Probability-producing crates where map iteration order reaches
/// p-mapping enumeration, consolidation, or answer sets.
pub const DETERMINISTIC_CRATES: &[&str] = &["udi-core", "udi-schema", "udi-maxent"];

/// Crates whose floats are probabilities (or derived from them).
pub const FLOAT_EQ_CRATES: &[&str] = &[
    "udi-core",
    "udi-schema",
    "udi-maxent",
    "udi-query",
    "udi-baselines",
    "udi-eval",
];

/// Crates allowed to read the clock directly.
pub const RAW_TIME_EXEMPT_CRATES: &[&str] = &["udi-obs", "udi-bench"];

/// Crates allowed to print directly (the bench harness narrates runs).
pub const STRAY_IO_EXEMPT_CRATES: &[&str] = &["udi-bench"];

pub(crate) const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
pub(crate) const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const IO_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

/// A parsed `udi-audit: allow(...)` directive.
#[derive(Debug)]
pub(crate) struct AllowDirective {
    pub(crate) lint: String,
    pub(crate) line: u32,
    pub(crate) col: u32,
    /// The line of code this directive covers.
    pub(crate) target_line: u32,
    pub(crate) used: bool,
}

/// Mark the directive covering `(lint, line)` used and return whether one
/// exists. Presence alone sanctions the line; `used` feeds the
/// `unused-allow` sweep.
pub(crate) fn allow_covers(directives: &mut [AllowDirective], lint: &str, line: u32) -> bool {
    let mut found = false;
    for d in directives.iter_mut() {
        if d.lint == lint && d.target_line == line {
            d.used = true;
            found = true;
        }
    }
    found
}

/// Audit one file's source text. `path` is used only for reporting.
///
/// This is the single-file convenience entry (it lexes `src` itself); the
/// workspace runner lexes once into a [`crate::Workspace`] and shares the
/// token stream across every lint and pass instead.
pub fn audit_source(
    path: &str,
    class: &FileClass,
    src: &str,
    enabled: &BTreeSet<&str>,
) -> Vec<Diagnostic> {
    let tokens = lex(src);
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut directives = parse_directives(path, &tokens, enabled, &mut diags);
    diags.extend(run_file_lints(
        path,
        class,
        &tokens,
        &mut directives,
        enabled,
    ));
    if enabled.contains(UNUSED_ALLOW) {
        diags.extend(unused_allow_diags(path, &directives));
    }
    diags.sort_by_key(|d| (d.line, d.col, d.lint));
    diags
}

/// Diagnostics for every still-unused directive of one file.
pub(crate) fn unused_allow_diags(path: &str, directives: &[AllowDirective]) -> Vec<Diagnostic> {
    directives
        .iter()
        .filter(|d| !d.used)
        .map(|d| {
            Diagnostic::error(
                path,
                d.line,
                d.col,
                UNUSED_ALLOW,
                format!(
                    "allow({}) suppresses nothing on line {} — remove the stale directive",
                    d.lint, d.target_line
                ),
            )
        })
        .collect()
}

/// Run the token-pattern (file-local) lints over a pre-lexed stream,
/// marking matching allow directives used. The `unused-allow` sweep is the
/// caller's job, after every pass has had a chance to use a directive.
pub(crate) fn run_file_lints(
    path: &str,
    class: &FileClass,
    tokens: &[Token],
    directives: &mut [AllowDirective],
    enabled: &BTreeSet<&str>,
) -> Vec<Diagnostic> {
    let test_regions = test_regions(tokens);
    let in_test = |i: usize| test_regions.iter().any(|r| r.contains(&i));
    let use_spans = use_spans(tokens);
    let in_use = |i: usize| use_spans.iter().any(|r| r.contains(&i));

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut candidates: Vec<(usize, &'static str, String)> = Vec::new();
    let crate_name = class.crate_name.as_str();
    let is_lib = class.kind == CodeKind::Lib;

    let prev_sig = |i: usize| {
        tokens
            .get(..i)
            .unwrap_or(&[])
            .iter()
            .rev()
            .find(|t| !is_comment(t))
    };
    let next_sig = |i: usize| {
        tokens
            .get(i + 1..)
            .unwrap_or(&[])
            .iter()
            .find(|t| !is_comment(t))
    };

    for (i, tok) in tokens.iter().enumerate() {
        if is_comment(tok) || in_test(i) {
            continue;
        }
        let is_ident = tok.kind == TokenKind::Ident;

        // no-panic-in-lib
        if is_lib && PANIC_FREE_CRATES.contains(&crate_name) {
            if is_ident && PANIC_METHODS.contains(&tok.text.as_str()) {
                let prev = prev_sig(i).map(|t| t.text.as_str());
                let next = next_sig(i).map(|t| t.text.as_str());
                let method_call = prev == Some(".") && next == Some("(");
                let path_use = prev == Some("::");
                if method_call || path_use {
                    candidates.push((
                        i,
                        NO_PANIC_IN_LIB,
                        format!(
                            "`{}` can panic; library code of `{}` must propagate `UdiError` \
                             (or carry a reasoned allow)",
                            tok.text, crate_name
                        ),
                    ));
                }
            }
            if is_ident
                && PANIC_MACROS.contains(&tok.text.as_str())
                && next_sig(i).map(|t| t.text.as_str()) == Some("!")
            {
                candidates.push((
                    i,
                    NO_PANIC_IN_LIB,
                    format!(
                        "`{}!` panics; library code of `{}` must return an error instead",
                        tok.text, crate_name
                    ),
                ));
            }
        }

        // deterministic-iteration
        if is_lib
            && DETERMINISTIC_CRATES.contains(&crate_name)
            && is_ident
            && matches!(tok.text.as_str(), "HashMap" | "HashSet")
            && !in_use(i)
        {
            candidates.push((
                i,
                DETERMINISTIC_ITERATION,
                format!(
                    "`{}` iteration order is nondeterministic and `{}` produces probabilities; \
                     use BTreeMap/BTreeSet, or allow with a reason why order cannot leak",
                    tok.text, crate_name
                ),
            ));
        }

        // float-eq
        if is_lib
            && FLOAT_EQ_CRATES.contains(&crate_name)
            && tok.kind == TokenKind::Punct
            && (tok.text == "==" || tok.text == "!=")
        {
            let float = |t: Option<&Token>| {
                matches!(t.map(|t| t.kind), Some(TokenKind::Num { float: true }))
            };
            if float(prev_sig(i)) || float(next_sig(i)) {
                candidates.push((
                    i,
                    FLOAT_EQ,
                    format!(
                        "`{}` against a float literal is exact-bit comparison; use the epsilon \
                         helpers in `udi_schema::float`",
                        tok.text
                    ),
                ));
            }
        }

        // no-raw-time
        if is_lib
            && !RAW_TIME_EXEMPT_CRATES.contains(&crate_name)
            && is_ident
            && matches!(tok.text.as_str(), "Instant" | "SystemTime")
        {
            candidates.push((
                i,
                NO_RAW_TIME,
                format!(
                    "`{}` outside udi-obs splinters the timing source; use udi_obs spans or \
                     `udi_obs::Stopwatch`",
                    tok.text
                ),
            ));
        }

        // no-stray-io
        if is_lib
            && !STRAY_IO_EXEMPT_CRATES.contains(&crate_name)
            && is_ident
            && IO_MACROS.contains(&tok.text.as_str())
            && next_sig(i).map(|t| t.text.as_str()) == Some("!")
        {
            candidates.push((
                i,
                NO_STRAY_IO,
                format!(
                    "`{}!` bypasses the obs sinks; emit an event, return the data, or move \
                     the printing to a binary",
                    tok.text
                ),
            ));
        }
    }

    for (i, lint, message) in candidates {
        if !enabled.contains(lint) {
            continue;
        }
        let Some(tok) = tokens.get(i) else { continue };
        if !allow_covers(directives, lint, tok.line) {
            diags.push(Diagnostic::error(path, tok.line, tok.col, lint, message));
        }
    }

    diags
}

/// Doc comments are documentation, not directives: a `udi-audit:` mention
/// in `///`/`//!`/`/**`/`/*!` text (say, this crate's own docs) must not
/// act as an escape hatch.
fn is_doc_comment(t: &Token) -> bool {
    t.text.starts_with("///")
        || t.text.starts_with("//!")
        || t.text.starts_with("/**")
        || t.text.starts_with("/*!")
}

/// Extract `udi-audit:` directives from comment tokens; malformed ones are
/// reported into `diags` directly.
pub(crate) fn parse_directives(
    path: &str,
    tokens: &[Token],
    enabled: &BTreeSet<&str>,
    diags: &mut Vec<Diagnostic>,
) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if !is_comment(tok) || is_doc_comment(tok) {
            continue;
        }
        let Some(at) = tok.text.find("udi-audit:") else {
            continue;
        };
        let body = tok.text.get(at + "udi-audit:".len()..).unwrap_or("").trim();
        let malformed = |msg: &str, diags: &mut Vec<Diagnostic>| {
            if enabled.contains(MALFORMED_ALLOW) {
                diags.push(Diagnostic::error(
                    path,
                    tok.line,
                    tok.col,
                    MALFORMED_ALLOW,
                    msg.to_owned(),
                ));
            }
        };
        let Some(args) = body
            .strip_prefix("allow(")
            .and_then(|r| r.trim_end().strip_suffix(')'))
        else {
            malformed(
                "directive must be `udi-audit: allow(<lint>, \"<reason>\")`",
                diags,
            );
            continue;
        };
        let Some((lint, reason)) = args.split_once(',') else {
            malformed(
                "escape hatch needs a reason: `allow(<lint>, \"<reason>\")`",
                diags,
            );
            continue;
        };
        let lint = lint.trim();
        if !is_known_lint(lint) {
            malformed(&format!("unknown lint `{lint}` in allow directive"), diags);
            continue;
        }
        let reason = reason.trim();
        let quoted = reason.len() >= 2 && reason.starts_with('"') && reason.ends_with('"');
        if !quoted || reason.len() == 2 {
            malformed("the allow reason must be a non-empty quoted string", diags);
            continue;
        }
        // A trailing comment covers its own line; a standalone comment
        // covers the next line of code.
        let trailing = tokens
            .get(..i)
            .unwrap_or(&[])
            .iter()
            .any(|t| t.line == tok.line && !is_comment(t));
        let target_line = if trailing {
            tok.line
        } else {
            tokens
                .get(i + 1..)
                .unwrap_or(&[])
                .iter()
                .find(|t| !is_comment(t))
                .map(|t| t.line)
                .unwrap_or(tok.line)
        };
        out.push(AllowDirective {
            lint: lint.to_owned(),
            line: tok.line,
            col: tok.col,
            target_line,
            used: false,
        });
    }
    out
}

/// Token-index ranges covered by `#[cfg(test)]` / `#[test]` / `#[bench]`
/// items (attribute through the matching closing brace).
pub(crate) fn test_regions(tokens: &[Token]) -> Vec<Range<usize>> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let is_hash = tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text == "#");
        if is_hash && tokens.get(i + 1).is_some_and(|t| t.text == "[") {
            let attr_start = i;
            let (attr_tokens, after) = attribute_body(tokens, i + 1);
            if is_test_attribute(&attr_tokens) {
                if let Some(end) = item_end(tokens, after) {
                    regions.push(attr_start..end);
                    i = end;
                    continue;
                }
            }
            i = after;
        } else {
            i += 1;
        }
    }
    regions
}

/// Texts inside an attribute's brackets; returns `(texts, index after `]`)`.
/// `open` is the index of the `[`.
fn attribute_body(tokens: &[Token], open: usize) -> (Vec<String>, usize) {
    let mut texts = Vec::new();
    let mut depth = 0i32;
    let mut i = open;
    while let Some(t) = tokens.get(i) {
        if t.kind == TokenKind::Punct && t.text == "[" {
            depth += 1;
        } else if t.kind == TokenKind::Punct && t.text == "]" {
            depth -= 1;
            if depth == 0 {
                return (texts, i + 1);
            }
        } else if depth > 0 && !is_comment(t) {
            texts.push(t.text.clone());
        }
        i += 1;
    }
    (texts, i)
}

fn is_test_attribute(texts: &[String]) -> bool {
    let joined: String = texts.concat();
    if joined == "test" || joined == "bench" || joined.ends_with("::test") {
        return true;
    }
    // cfg(test), cfg(any(test, …)), cfg(all(test, …)) — but not
    // cfg(not(test)).
    joined.starts_with("cfg(") && joined.contains("test") && !joined.contains("not(test")
}

/// Given the index just after a test attribute, find the index just past
/// the end of the annotated item (the matching `}` of its body, or the `;`
/// of a bodiless item). Skips any further attributes in between.
fn item_end(tokens: &[Token], mut i: usize) -> Option<usize> {
    // Skip stacked attributes (#[test] #[ignore] fn …).
    while tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == "#")
        && tokens.get(i + 1).is_some_and(|t| t.text == "[")
    {
        let (_, after) = attribute_body(tokens, i + 1);
        i = after;
    }
    // Find the item's opening brace (or a terminating semicolon for
    // bodiless items like `#[cfg(test)] mod tests;`).
    let mut j = i;
    loop {
        let t = tokens.get(j)?;
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" => break,
                ";" => return Some(j + 1),
                _ => {}
            }
        }
        j += 1;
    }
    // Match braces from the opening brace.
    let mut depth = 0i32;
    while let Some(t) = tokens.get(j) {
        if t.kind == TokenKind::Punct {
            if t.text == "{" {
                depth += 1;
            } else if t.text == "}" {
                depth -= 1;
                if depth == 0 {
                    return Some(j + 1);
                }
            }
        }
        j += 1;
    }
    Some(tokens.len())
}

/// Token-index ranges of `use` declarations (so importing `HashMap` is not
/// double-reported alongside each usage site).
fn use_spans(tokens: &[Token]) -> Vec<Range<usize>> {
    let mut spans = Vec::new();
    let mut i = 0;
    while let Some(t) = tokens.get(i) {
        let at_item_position = i == 0
            || tokens
                .get(..i)
                .unwrap_or(&[])
                .iter()
                .rev()
                .find(|t| !is_comment(t))
                .is_none_or(|p| matches!(p.text.as_str(), ";" | "{" | "}" | "]" | ")" | "pub"));
        if t.kind == TokenKind::Ident && t.text == "use" && at_item_position {
            let start = i;
            while tokens.get(i).is_some_and(|t| t.text != ";") {
                i += 1;
            }
            spans.push(start..i + 1);
        }
        i += 1;
    }
    spans
}

//! A small forward gen/kill dataflow framework over [`crate::cfg`]
//! graphs.
//!
//! Facts are bit positions in a [`BitSet`]; the analysis is a forward
//! *may* analysis (union at joins):
//!
//! ```text
//! in[b]  = ⋃ out[p]            for p ∈ preds(b)
//! out[b] = (in[b] ∖ kill[b]) ∪ gen[b]
//! ```
//!
//! The fixpoint loop is a deterministic round-robin over block ids (the
//! graphs are a few dozen blocks; worklist ordering buys nothing and
//! costs reproducibility). The lock-order pass instantiates it with
//! "lock L is held" facts; any other small forward analysis fits the same
//! shape.

use crate::cfg::{Cfg, ENTRY};

/// A fixed-capacity bitset over `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    nbits: usize,
}

impl BitSet {
    /// An empty set with capacity for `nbits` facts.
    pub fn new(nbits: usize) -> BitSet {
        BitSet {
            words: vec![0; nbits.div_ceil(64)],
            nbits,
        }
    }

    /// Set bit `i`; out-of-range bits are ignored (lint-grade tolerance).
    pub fn insert(&mut self, i: usize) {
        if i < self.nbits {
            if let Some(w) = self.words.get_mut(i / 64) {
                *w |= 1 << (i % 64);
            }
        }
    }

    /// Clear bit `i`.
    pub fn remove(&mut self, i: usize) {
        if i < self.nbits {
            if let Some(w) = self.words.get_mut(i / 64) {
                *w &= !(1 << (i % 64));
            }
        }
    }

    /// Whether bit `i` is set.
    pub fn contains(&self, i: usize) -> bool {
        i < self.nbits
            && self
                .words
                .get(i / 64)
                .is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    /// Union `other` into `self`; returns whether anything changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            let next = *w | *o;
            changed |= next != *w;
            *w = next;
        }
        changed
    }

    /// Iterate the set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.nbits).filter(|&i| self.contains(i))
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// Per-block entry/exit facts of a completed analysis.
#[derive(Debug, Clone)]
pub struct Dataflow {
    /// Facts holding at block entry.
    pub input: Vec<BitSet>,
    /// Facts holding at block exit.
    pub output: Vec<BitSet>,
}

/// Run a forward may-analysis. `gen`/`kill` are indexed by block id and
/// must each have `cfg.blocks.len()` entries of capacity `nbits`; a
/// mismatch degrades to empty sets rather than panicking.
pub fn forward_may(cfg: &Cfg, nbits: usize, gen: &[BitSet], kill: &[BitSet]) -> Dataflow {
    let n = cfg.blocks.len();
    let mut input = vec![BitSet::new(nbits); n];
    let mut output = vec![BitSet::new(nbits); n];
    let preds = cfg.preds();
    let transfer = |inp: &BitSet, b: usize| -> BitSet {
        let mut out = inp.clone();
        if let Some(k) = kill.get(b) {
            for i in k.iter() {
                out.remove(i);
            }
        }
        if let Some(g) = gen.get(b) {
            out.union_with(g);
        }
        out
    };
    // Round-robin to fixpoint. Monotone over a finite lattice, so the
    // iteration count is bounded by n * nbits; the explicit cap only
    // guards against an (impossible) non-monotone transfer bug.
    let max_rounds = n.saturating_mul(nbits.max(1)).saturating_add(2);
    for _ in 0..max_rounds {
        let mut changed = false;
        for b in 0..n {
            let Some(slot) = input.get_mut(b) else {
                continue;
            };
            let mut inp = std::mem::replace(slot, BitSet::new(0));
            if b != ENTRY {
                for &p in preds.get(b).map(Vec::as_slice).unwrap_or(&[]) {
                    if let Some(o) = output.get(p) {
                        changed |= inp.union_with(o);
                    }
                }
            }
            let out = transfer(&inp, b);
            if output.get(b) != Some(&out) {
                changed = true;
                if let Some(o) = output.get_mut(b) {
                    *o = out;
                }
            }
            if let Some(slot) = input.get_mut(b) {
                *slot = inp;
            }
        }
        if !changed {
            break;
        }
    }
    Dataflow { input, output }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use crate::lexer::lex;

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(64);
        s.insert(129);
        s.insert(999); // ignored
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(999));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
        s.remove(64);
        assert!(!s.contains(64));
        let mut t = BitSet::new(130);
        assert!(t.union_with(&s));
        assert!(!t.union_with(&s), "second union is a no-op");
    }

    /// A fact generated before a branch is live in both arms and at the
    /// join; a fact killed in one arm survives the join (may-analysis).
    #[test]
    fn facts_flow_through_branches() {
        let src = "{ acquire(); if c { release(); } after(); }";
        let tokens = lex(src);
        let cfg = build_cfg(&tokens, 0..tokens.len());
        let n = cfg.blocks.len();
        // Fact 0 generated at the `acquire();` statement, killed at
        // `release();`.
        let mut gen = vec![BitSet::new(1); n];
        let mut kill = vec![BitSet::new(1); n];
        let stmt_with = |needle: &str| {
            cfg.stmts()
                .find(|(_, s)| {
                    s.span
                        .clone()
                        .any(|i| tokens.get(i).is_some_and(|t| t.text == needle))
                })
                .map(|(b, _)| b)
                .expect("statement")
        };
        let acq = stmt_with("acquire");
        let rel = stmt_with("release");
        let aft = stmt_with("after");
        gen[acq].insert(0);
        kill[rel].insert(0);
        let flow = forward_may(&cfg, 1, &gen, &kill);
        assert!(flow.output[acq].contains(0));
        assert!(flow.input[rel].contains(0), "held entering the branch");
        assert!(!flow.output[rel].contains(0), "killed in the branch");
        // May-analysis: the skip path did not release, so it may be held.
        assert!(flow.input[aft].contains(0));
    }

    #[test]
    fn loop_back_edges_reach_fixpoint() {
        let src = "{ loop { take(); if c { break; } } tail(); }";
        let tokens = lex(src);
        let cfg = build_cfg(&tokens, 0..tokens.len());
        let n = cfg.blocks.len();
        let mut gen = vec![BitSet::new(1); n];
        let kill = vec![BitSet::new(1); n];
        let take = cfg
            .stmts()
            .find(|(_, s)| {
                s.span
                    .clone()
                    .any(|i| tokens.get(i).is_some_and(|t| t.text == "take"))
            })
            .map(|(b, _)| b)
            .expect("take stmt");
        gen[take].insert(0);
        let flow = forward_may(&cfg, 1, &gen, &kill);
        // Around the back edge, the fact reaches the loop head's input.
        assert!(flow.input[take].contains(0), "fact survives the back edge");
        let tail = cfg
            .stmts()
            .find(|(_, s)| {
                s.span
                    .clone()
                    .any(|i| tokens.get(i).is_some_and(|t| t.text == "tail"))
            })
            .map(|(b, _)| b)
            .expect("tail stmt");
        assert!(flow.input[tail].contains(0), "break carries the fact out");
    }
}

//! `udi-audit` CLI: lint the workspace tree, exit nonzero on violations.
//!
//! ```text
//! cargo run -p udi-audit -- --deny-all            # CI gate
//! cargo run -p udi-audit -- --list                # lint taxonomy
//! cargo run -p udi-audit -- --allow float-eq      # run all but one lint
//! cargo run -p udi-audit -- --root /path/to/tree  # explicit root
//! cargo run -p udi-audit -- --format json         # machine-readable
//! cargo run -p udi-audit -- --timings             # per-pass spans to stderr
//! cargo run -p udi-audit -- --bench-out B.json    # per-pass cost artifact
//! ```
//!
//! Exit codes: `0` clean (warnings allowed), `1` errors found, `2` usage,
//! I/O, or config error.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use udi_audit::{all_lints, audit_workspace_observed, find_workspace_root, LINTS};
use udi_obs::{MemorySink, Recorder, TraceSummary};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut disabled: BTreeSet<String> = BTreeSet::new();
    let mut deny_all = false;
    let mut quiet = false;
    let mut json = false;
    let mut timings = false;
    let mut bench_out: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a directory argument"),
            },
            "--allow" => match args.next() {
                Some(l) => {
                    if !udi_audit::lints::is_known_lint(&l) {
                        return usage_error(&format!("unknown lint `{l}` (see --list)"));
                    }
                    disabled.insert(l);
                }
                None => return usage_error("--allow needs a lint name argument"),
            },
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                Some(other) => {
                    return usage_error(&format!("--format must be text|json, got `{other}`"))
                }
                None => return usage_error("--format needs text|json"),
            },
            "--deny-all" => deny_all = true,
            "--quiet" => quiet = true,
            "--timings" => timings = true,
            "--bench-out" => match args.next() {
                Some(p) => bench_out = Some(PathBuf::from(p)),
                None => return usage_error("--bench-out needs a file argument"),
            },
            "--list" => {
                for lint in LINTS {
                    println!("{:<26} {}", lint.name, lint.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "udi-audit: workspace static-analysis engine for UDI invariants\n\n\
                     usage: udi-audit [--root DIR] [--deny-all] [--allow LINT]... \
                     [--format text|json] [--quiet] [--timings] [--bench-out FILE] [--list]\n\n\
                     All lints run by default; --allow disables one, --deny-all re-enables\n\
                     everything (the CI configuration). Pass configuration (layering,\n\
                     panic-reachability roots, ratchet path) comes from audit.toml at the\n\
                     workspace root. Exit codes: 0 clean (warnings allowed), 1 errors,\n\
                     2 usage/I-O/config error."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let mut enabled = all_lints();
    if !deny_all {
        enabled.retain(|l| !disabled.contains(*l));
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => return usage_error("no workspace root found (pass --root)"),
    };

    let sink = Arc::new(MemorySink::new());
    // The bench artifact is built from the same spans --timings prints,
    // so either flag turns the recorder on.
    let rec = if timings || bench_out.is_some() {
        Recorder::new(sink.clone())
    } else {
        Recorder::disabled()
    };

    let started = std::time::Instant::now();
    let report = match audit_workspace_observed(&root, &enabled, &rec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("udi-audit: {e}");
            return ExitCode::from(2);
        }
    };
    let total_us = started.elapsed().as_micros();

    if timings {
        let summary = TraceSummary::from_events(&sink.events());
        let mut names: Vec<_> = summary.span_names().collect();
        names.sort();
        for name in names {
            if let Some(stat) = summary.span(name) {
                eprintln!("udi-audit: {name:<28} {:>8} us", stat.total_us);
            }
        }
        // Wall-clock total for the CI budget gate (spans nest, so their
        // sum over-counts; this is the number CI compares).
        eprintln!("udi-audit: {:<28} {total_us:>8} us", "total");
    }

    if let Some(path) = &bench_out {
        let summary = TraceSummary::from_events(&sink.events());
        let mut names: Vec<_> = summary.span_names().collect();
        names.sort_unstable();
        let passes = names
            .iter()
            .filter_map(|name| {
                summary
                    .span(name)
                    .map(|st| format!("    \"{name}\": {}", st.total_us))
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let lints = report
            .by_lint()
            .iter()
            .map(|(l, n)| format!("    \"{l}\": {n}"))
            .collect::<Vec<_>>()
            .join(",\n");
        let artifact = format!(
            "{{\n  \"schema\": \"udi-audit-bench/v1\",\n  \"files_scanned\": {},\n  \
             \"lints_enabled\": {},\n  \"errors\": {},\n  \"warnings\": {},\n  \
             \"total_us\": {total_us},\n  \"pass_us\": {{\n{passes}\n  }},\n  \
             \"by_lint\": {{\n{lints}\n  }}\n}}\n",
            report.files_scanned,
            enabled.len(),
            report.errors().count(),
            report.warnings().count(),
        );
        if let Err(e) = std::fs::write(path, artifact) {
            eprintln!(
                "udi-audit: cannot write bench artifact {}: {e}",
                path.display()
            );
            return ExitCode::from(2);
        }
    }

    if json {
        println!("{}", report.to_json());
        return if report.is_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let errors = report.errors().count();
    let warnings = report.warnings().count();
    if !quiet {
        for d in &report.diagnostics {
            println!("{d}\n");
        }
    }
    if report.is_clean() {
        if !quiet {
            if warnings > 0 {
                println!(
                    "udi-audit: clean — {} files, {} lints, {warnings} warning(s)",
                    report.files_scanned,
                    enabled.len()
                );
            } else {
                println!(
                    "udi-audit: clean — {} files, {} lints",
                    report.files_scanned,
                    enabled.len()
                );
            }
        }
        ExitCode::SUCCESS
    } else {
        println!(
            "udi-audit: {errors} error(s), {warnings} warning(s) across {} scanned file(s)",
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("udi-audit: {msg}");
    eprintln!(
        "usage: udi-audit [--root DIR] [--deny-all] [--allow LINT]... [--format text|json] \
         [--quiet] [--timings] [--bench-out FILE] [--list]"
    );
    ExitCode::from(2)
}

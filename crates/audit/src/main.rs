//! `udi-audit` CLI: lint the workspace tree, exit nonzero on violations.
//!
//! ```text
//! cargo run -p udi-audit -- --deny-all            # CI gate
//! cargo run -p udi-audit -- --list                # lint taxonomy
//! cargo run -p udi-audit -- --allow float-eq      # run all but one lint
//! cargo run -p udi-audit -- --root /path/to/tree  # explicit root
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

use udi_audit::{all_lints, audit_workspace, find_workspace_root, LINTS};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut disabled: BTreeSet<String> = BTreeSet::new();
    let mut deny_all = false;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a directory argument"),
            },
            "--allow" => match args.next() {
                Some(l) => {
                    if !udi_audit::lints::is_known_lint(&l) {
                        return usage_error(&format!("unknown lint `{l}` (see --list)"));
                    }
                    disabled.insert(l);
                }
                None => return usage_error("--allow needs a lint name argument"),
            },
            "--deny-all" => deny_all = true,
            "--quiet" => quiet = true,
            "--list" => {
                for lint in LINTS {
                    println!("{:<26} {}", lint.name, lint.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "udi-audit: workspace lint engine for UDI invariants\n\n\
                     usage: udi-audit [--root DIR] [--deny-all] [--allow LINT]... [--quiet] [--list]\n\n\
                     All lints are errors by default; --allow disables one, --deny-all\n\
                     re-enables everything (the CI configuration). Exit codes: 0 clean,\n\
                     1 violations, 2 usage/I-O error."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let mut enabled = all_lints();
    if !deny_all {
        enabled.retain(|l| !disabled.contains(*l));
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => return usage_error("no workspace root found (pass --root)"),
    };

    match audit_workspace(&root, &enabled) {
        Ok(report) => {
            if !quiet {
                for d in &report.diagnostics {
                    println!("{d}\n");
                }
            }
            if report.is_clean() {
                if !quiet {
                    println!(
                        "udi-audit: clean — {} files, {} lints",
                        report.files_scanned,
                        enabled.len()
                    );
                }
                ExitCode::SUCCESS
            } else {
                println!(
                    "udi-audit: {} violation(s) across {} scanned file(s)",
                    report.diagnostics.len(),
                    report.files_scanned
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("udi-audit: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("udi-audit: {msg}");
    eprintln!("usage: udi-audit [--root DIR] [--deny-all] [--allow LINT]... [--quiet] [--list]");
    ExitCode::from(2)
}

//! The generalized ratchet file shared by every ratchet-aware pass.
//!
//! A ratchet freezes *pre-existing* debt: a finding whose key is listed
//! is reported as a warning (visible, counted, allowed to exist), an
//! unlisted finding is an error (new debt is rejected), and a listed key
//! that no longer matches any finding is itself an error — the file only
//! ever shrinks.
//!
//! Line format, one entry per line, `#` comments allowed:
//!
//! ```text
//! # legacy dead-export form (no lint prefix)
//! udi-beta::old_debt
//! # general form: <lint> <key>
//! error-discard udi-beta::discards_old
//! lock-order-cycle udi-beta::A<->udi-beta::B
//! ```
//!
//! Keys are pass-specific but always stable across unrelated edits:
//! dead-export and error-discard use item/fn id-paths, determinism-cert
//! uses the entry point's id-path, lock-order-cycle the sorted lock set.

use std::collections::BTreeMap;

use crate::lints::{is_known_lint, DEAD_EXPORT};

/// A parsed ratchet file.
#[derive(Debug, Default)]
pub struct Ratchet {
    /// `(lint, key) → 1-based line` of each entry.
    entries: BTreeMap<(String, String), u32>,
}

impl Ratchet {
    /// Parse a ratchet file body. A line whose first whitespace-separated
    /// field is a known lint name is `<lint> <key>`; any other non-empty
    /// line is a legacy dead-export key.
    pub fn parse(text: &str) -> Ratchet {
        let mut entries = BTreeMap::new();
        for (ln0, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (lint, key) = match line.split_once(char::is_whitespace) {
                Some((first, rest)) if is_known_lint(first) => {
                    (first.to_owned(), rest.trim().to_owned())
                }
                _ => (DEAD_EXPORT.to_owned(), line.to_owned()),
            };
            if key.is_empty() {
                continue;
            }
            entries.entry((lint, key)).or_insert(ln0 as u32 + 1);
        }
        Ratchet { entries }
    }

    /// The 1-based line of entry `(lint, key)`, if listed.
    pub fn line_of(&self, lint: &str, key: &str) -> Option<u32> {
        self.entries
            .get(&(lint.to_owned(), key.to_owned()))
            .copied()
    }

    /// All `(key, line)` entries of one lint, in key order.
    pub fn entries_for<'a>(&'a self, lint: &str) -> Vec<(&'a str, u32)> {
        let lint = lint.to_owned();
        self.entries
            .iter()
            .filter(move |((l, _), _)| *l == lint)
            .map(|((_, k), &line)| (k.as_str(), line))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::ERROR_DISCARD;

    #[test]
    fn legacy_and_prefixed_lines_coexist() {
        let r = Ratchet::parse(
            "# comment\n\
             udi-beta::old_debt\n\
             error-discard udi-beta::discards_old # trailing\n\
             lock-order-cycle udi-a::A<->udi-a::B\n",
        );
        assert_eq!(r.line_of(DEAD_EXPORT, "udi-beta::old_debt"), Some(2));
        assert_eq!(r.line_of(ERROR_DISCARD, "udi-beta::discards_old"), Some(3));
        assert_eq!(
            r.line_of("lock-order-cycle", "udi-a::A<->udi-a::B"),
            Some(4)
        );
        assert_eq!(r.line_of(ERROR_DISCARD, "udi-beta::old_debt"), None);
        assert_eq!(r.entries_for(ERROR_DISCARD).len(), 1);
    }

    #[test]
    fn unknown_first_field_is_a_dead_export_key() {
        // A hypothetical key containing a space still round-trips as
        // dead-export because `not-a-lint` is not a lint name.
        let r = Ratchet::parse("not-a-lint thing\n");
        assert_eq!(r.line_of(DEAD_EXPORT, "not-a-lint thing"), Some(1));
    }
}

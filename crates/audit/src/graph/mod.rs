//! Whole-workspace graphs: the function **call graph** and the
//! **crate-dependency** edge set.
//!
//! Name resolution is deliberately lint-grade. Calls are resolved by
//! identifier against the set of functions the [`crate::parser`] extracted:
//!
//! - `foo(…)` resolves within the calling crate, then through the file's
//!   `use` imports of workspace crates;
//! - `recv.foo(…)` resolves to *every* workspace method named `foo`
//!   (receiver types are unknown without type inference — this
//!   over-approximates, which for panic-reachability is the safe
//!   direction);
//! - `Type::foo(…)` resolves through the workspace type `Type`,
//!   `udi_x::path::foo(…)` through the crate alias, `Self::foo(…)`
//!   through the enclosing `impl`.
//!
//! Unresolved names (std, closures, locals) produce no edge: the graph
//! only ever connects functions the workspace defines, so chains in
//! diagnostics are always fully showable.

pub mod scc;

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;
use std::path::Path;

use crate::classify::CodeKind;
use crate::lexer::{Token, TokenKind};
use crate::lints::{PANIC_MACROS, PANIC_METHODS};
use crate::parser::{is_comment, Item, ItemKind, Vis};
use crate::{AuditError, SourceFile};

/// One function node in the call graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index of the defining file in the workspace file list.
    pub file: usize,
    /// Crate the file belongs to.
    pub crate_name: String,
    /// Function name.
    pub name: String,
    /// `impl`/`trait` type the fn is a method of, if any.
    pub self_ty: Option<String>,
    /// `pub` as written (not module-path-effective).
    pub is_pub: bool,
    /// Defined under a test attribute.
    pub in_test: bool,
    /// Code class of the defining file.
    pub kind: CodeKind,
    /// 1-based definition position.
    pub line: u32,
    /// 1-based definition column.
    pub col: u32,
    /// Token range of the body in the defining file, if the fn has one.
    pub body: Option<Range<usize>>,
    /// Token range of the signature (item start through the body's `{`,
    /// or the whole item for bodiless fns).
    pub sig: Range<usize>,
    /// The declared return type mentions `Result` — the fn is fallible
    /// as far as the error-discard pass cares.
    pub returns_result: bool,
    /// `crate::module::(Type::)name` — stable display/ratchet id.
    pub id_path: String,
}

/// How a panic site can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()` / `.expect(…)` and friends.
    UnwrapLike,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    Macro,
    /// `expr[…]` indexing / slicing (bounds-checked abort).
    Index,
}

/// One potential panic inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// What fires.
    pub kind: PanicKind,
    /// The offending token text (`unwrap`, `panic`, `[`).
    pub what: String,
    /// 1-based position in the defining file.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One resolved call inside a function body.
#[derive(Debug, Clone, Copy)]
pub struct CallSite {
    /// Token index of the callee name in the calling file.
    pub tok: usize,
    /// Callee node id.
    pub callee: usize,
    /// `true` when the resolution is structural (qualified path or plain
    /// call); `false` for the method-name over-approximation, where
    /// `x.len()` resolves to *every* workspace method called `len`.
    /// Reachability uses all edges (over-approximation is the safe
    /// direction there); precision-sensitive lints filter on this flag.
    pub certain: bool,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All function nodes, in file order.
    pub fns: Vec<FnNode>,
    /// Per-fn resolved calls, sorted by token position.
    pub calls: Vec<Vec<CallSite>>,
    /// Per-fn potential panic sites.
    pub sites: Vec<Vec<PanicSite>>,
}

impl CallGraph {
    /// Callee-id adjacency (deduplicated) for plain reachability walks.
    pub fn edges(&self, f: usize) -> BTreeSet<usize> {
        self.calls
            .get(f)
            .map(|cs| cs.iter().map(|c| c.callee).collect())
            .unwrap_or_default()
    }

    /// Human-readable name of fn `f`: `crate::Type::name` or `crate::name`.
    pub fn display(&self, f: usize) -> String {
        self.fns
            .get(f)
            .map(|n| n.id_path.clone())
            .unwrap_or_default()
    }
}

/// One `crate → crate` dependency edge with its declaration site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct DepEdge {
    /// Depending crate.
    pub from: String,
    /// Depended-upon crate.
    pub to: String,
    /// Workspace-relative file the edge was read from (`Cargo.toml` or a
    /// source file's `use`).
    pub path: String,
    /// 1-based line of the declaration.
    pub line: u32,
}

/// `udi_obs` → `udi-obs`; `crate`/`self`/`super` → the current crate.
/// `None` for anything that is not a workspace crate alias.
pub fn crate_of_alias(seg: &str, current: &str) -> Option<String> {
    match seg {
        "crate" | "self" | "super" => Some(current.to_owned()),
        "udi" => Some("udi".to_owned()),
        s if s.starts_with("udi_") => Some(s.replace('_', "-")),
        _ => None,
    }
}

/// Extract the names a `use` declaration binds from a workspace crate, as
/// `(bound name, source crate)` pairs. Non-workspace imports yield nothing.
fn use_imports(file: &SourceFile, item: &Item, out: &mut BTreeMap<String, String>) {
    let toks: Vec<&Token> = file
        .tokens
        .get(item.span.clone())
        .unwrap_or(&[])
        .iter()
        .filter(|t| !is_comment(t))
        .collect();
    // Leading segment after `use` (skipping a root `::`).
    let mut lead = None;
    for t in toks.iter().skip(1) {
        if matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent) {
            lead = Some(t.text.as_str());
            break;
        }
        if t.text != "::" {
            break;
        }
    }
    let Some(source) = lead.and_then(|l| crate_of_alias(l, &file.class.crate_name)) else {
        return;
    };
    // Terminal names: an ident directly followed by `,`, `}`, `;`, or `as`
    // (in which case the alias after `as` is the bound name instead).
    for (k, t) in toks.iter().enumerate() {
        if !matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent) || t.text == "as" {
            continue;
        }
        match toks.get(k + 1).map(|n| n.text.as_str()) {
            Some("," | "}" | ";") => {
                // `self` re-binds the path segment before it, unless this
                // ident is itself an `as` alias (which can't be `self`).
                let after_as = toks.get(k.wrapping_sub(1)).map(|p| p.text.as_str()) == Some("as");
                if t.text != "self" || after_as {
                    out.insert(t.text.clone(), source.clone());
                }
            }
            Some("as") => {} // the alias will be recorded instead
            _ => {}
        }
    }
}

/// Build the workspace call graph from the loaded files.
pub fn build_call_graph(files: &[SourceFile]) -> CallGraph {
    let mut g = CallGraph::default();

    // Pass 1: nodes and resolution indexes.
    let mut by_crate_name: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    let mut by_type_name: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    let mut methods: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut type_names: BTreeSet<String> = BTreeSet::new();
    for (fi, file) in files.iter().enumerate() {
        for item in &file.items {
            match &item.kind {
                ItemKind::Struct | ItemKind::Enum | ItemKind::Union | ItemKind::Trait => {
                    type_names.insert(item.name.clone());
                }
                ItemKind::Fn => {
                    let id = g.fns.len();
                    let crate_name = file.class.crate_name.clone();
                    let mut id_path = crate_name.clone();
                    for m in &item.module_path {
                        id_path.push_str("::");
                        id_path.push_str(m);
                    }
                    if let Some(ty) = &item.self_ty {
                        id_path.push_str("::");
                        id_path.push_str(ty);
                    }
                    id_path.push_str("::");
                    id_path.push_str(&item.name);
                    by_crate_name
                        .entry((crate_name.clone(), item.name.clone()))
                        .or_default()
                        .push(id);
                    if let Some(ty) = &item.self_ty {
                        by_type_name
                            .entry((ty.clone(), item.name.clone()))
                            .or_default()
                            .push(id);
                        methods.entry(item.name.clone()).or_default().push(id);
                    }
                    let sig_end = item.body.as_ref().map(|b| b.start).unwrap_or(item.span.end);
                    let sig = item.span.start..sig_end;
                    g.fns.push(FnNode {
                        file: fi,
                        crate_name,
                        name: item.name.clone(),
                        self_ty: item.self_ty.clone(),
                        is_pub: item.vis == Vis::Pub,
                        in_test: item.in_test,
                        kind: file.class.kind,
                        line: item.line,
                        col: item.col,
                        body: item.body.clone(),
                        returns_result: sig_returns_result(&file.tokens, sig.clone()),
                        sig,
                        id_path,
                    });
                }
                _ => {}
            }
        }
    }

    // Per-file workspace imports.
    let mut imports: Vec<BTreeMap<String, String>> = Vec::with_capacity(files.len());
    for file in files {
        let mut map = BTreeMap::new();
        for item in &file.items {
            if item.kind == ItemKind::Use {
                use_imports(file, item, &mut map);
            }
        }
        imports.push(map);
    }

    // Pass 2: body scans — calls and panic sites.
    g.calls = vec![Vec::new(); g.fns.len()];
    g.sites = vec![Vec::new(); g.fns.len()];
    for f in 0..g.fns.len() {
        let Some(node) = g.fns.get(f) else {
            continue;
        };
        let Some(body) = node.body.clone() else {
            continue;
        };
        let Some(file) = files.get(node.file) else {
            continue;
        };
        let empty = BTreeMap::new();
        let imp = imports.get(node.file).unwrap_or(&empty);
        let params = param_types(&file.tokens, node.sig.clone(), &type_names);
        let (calls, sites) = scan_body(
            file,
            body,
            &node.crate_name,
            node.self_ty.as_deref(),
            &params,
            imp,
            &by_crate_name,
            &by_type_name,
            &methods,
            &type_names,
        );
        if let Some(slot) = g.calls.get_mut(f) {
            *slot = calls;
        }
        if let Some(slot) = g.sites.get_mut(f) {
            *slot = sites;
        }
    }
    g
}

#[allow(clippy::too_many_arguments)]
fn scan_body(
    file: &SourceFile,
    body: Range<usize>,
    crate_name: &str,
    self_ty: Option<&str>,
    params: &BTreeMap<String, String>,
    imports: &BTreeMap<String, String>,
    by_crate_name: &BTreeMap<(String, String), Vec<usize>>,
    by_type_name: &BTreeMap<(String, String), Vec<usize>>,
    methods: &BTreeMap<String, Vec<usize>>,
    type_names: &BTreeSet<String>,
) -> (Vec<CallSite>, Vec<PanicSite>) {
    let mut calls: Vec<CallSite> = Vec::new();
    let mut sites: Vec<PanicSite> = Vec::new();
    // Receiver types known at the current scan position: fn params up
    // front, `let` bindings added as the linear scan passes them (a
    // later shadowing rebind simply overwrites — linear approximation).
    let mut locals: BTreeMap<String, String> = params.clone();
    // Significant-token slots of the body.
    let sig: Vec<usize> = (body.start..body.end.min(file.tokens.len()))
        .filter(|&i| file.tokens.get(i).is_some_and(|t| !is_comment(t)))
        .collect();
    let tok = |s: usize| -> Option<&Token> { sig.get(s).and_then(|&i| file.tokens.get(i)) };
    let text = |s: usize| -> Option<&str> { tok(s).map(|t| t.text.as_str()) };

    let push_targets =
        |calls: &mut Vec<CallSite>, tok_idx: usize, ids: Option<&Vec<usize>>, certain: bool| {
            if let Some(ids) = ids {
                for &callee in ids {
                    calls.push(CallSite {
                        tok: tok_idx,
                        callee,
                        certain,
                    });
                }
            }
        };

    for s in 0..sig.len() {
        let Some(t) = tok(s) else { continue };
        let tok_idx = sig.get(s).copied().unwrap_or(0);

        // Indexing / slicing: `expr[…]` — prev significant token ends an
        // expression. (`#[attr]` and `vec![…]` are excluded because their
        // `[` follows `#` / `!`.)
        if t.kind == TokenKind::Punct && t.text == "[" && s > 0 {
            let prev_ends_expr = tok(s - 1).is_some_and(|p| {
                matches!(p.kind, TokenKind::Ident | TokenKind::RawIdent)
                    && !matches!(
                        p.text.as_str(),
                        "mut" | "return" | "in" | "as" | "else" | "match" | "let" | "ref" | "box"
                    )
                    || (p.kind == TokenKind::Punct && matches!(p.text.as_str(), ")" | "]"))
            });
            if prev_ends_expr {
                sites.push(PanicSite {
                    kind: PanicKind::Index,
                    what: "[".to_owned(),
                    line: t.line,
                    col: t.col,
                });
            }
            continue;
        }

        if !matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent) {
            continue;
        }
        let name = t.text.as_str();
        let prev = if s > 0 { text(s - 1) } else { None };
        let next = text(s + 1);

        // `let (mut)? x: Type = …` / `let x = Type::ctor(…)` — record the
        // binding's workspace type for receiver-typed method resolution.
        if name == "let" {
            let mut n = s + 1;
            while text(n) == Some("mut") {
                n += 1;
            }
            let bound = tok(n)
                .filter(|t| matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent))
                .map(|t| t.text.clone());
            if let Some(bound) = bound.filter(|b| b != "_") {
                match text(n + 1) {
                    Some(":") => {
                        // Annotated type up to `=` or `;` at depth zero.
                        let mut ty_toks: Vec<&Token> = Vec::new();
                        let mut depth = 0i64;
                        let mut k = n + 2;
                        while let Some(tk) = tok(k) {
                            match tk.text.as_str() {
                                "(" | "[" | "{" | "<" => depth += 1,
                                ")" | "]" | "}" | ">" => depth -= 1,
                                "=" | ";" if depth <= 0 => break,
                                _ => {}
                            }
                            ty_toks.push(tk);
                            k += 1;
                        }
                        if let Some(ty) = workspace_type_of(&ty_toks, type_names) {
                            locals.insert(bound, ty);
                        }
                    }
                    Some("=") => {
                        // `let x = Type::new(…)` / `let x = Type { … }`.
                        let ctor = tok(n + 2)
                            .filter(|t| matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent))
                            .filter(|t| type_names.contains(&t.text))
                            .filter(|_| matches!(text(n + 3), Some("::" | "{")));
                        if let Some(ctor) = ctor {
                            locals.insert(bound, ctor.text.clone());
                        }
                    }
                    _ => {}
                }
            }
            continue;
        }

        // Panic macros: `panic!(…)`.
        if PANIC_MACROS.contains(&name) && next == Some("!") {
            sites.push(PanicSite {
                kind: PanicKind::Macro,
                what: format!("{name}!"),
                line: t.line,
                col: t.col,
            });
            continue;
        }

        if next != Some("(") {
            continue;
        }

        // Panic methods: `.unwrap()` or `Option::unwrap(…)`.
        if PANIC_METHODS.contains(&name) && matches!(prev, Some("." | "::")) {
            sites.push(PanicSite {
                kind: PanicKind::UnwrapLike,
                what: name.to_owned(),
                line: t.line,
                col: t.col,
            });
            continue;
        }

        match prev {
            Some(".") => {
                // Method call. When the receiver is `self` or a
                // param/local with a known workspace type, and that type
                // provably defines the method, the edge is demoted from
                // the method-name over-approximation to a certain edge.
                // A receiver preceded by `.`/`::`/`)`/`]` is a field or
                // chain result — type unknown, keep the fallback.
                let recv_ty: Option<&str> = if s >= 2 {
                    let simple = s < 3 || !matches!(text(s - 3), Some("." | "::" | ")" | "]"));
                    tok(s - 2)
                        .filter(|_| simple)
                        .filter(|r| matches!(r.kind, TokenKind::Ident | TokenKind::RawIdent))
                        .and_then(|r| {
                            if r.text == "self" {
                                self_ty
                            } else {
                                locals.get(&r.text).map(String::as_str)
                            }
                        })
                } else {
                    None
                };
                let demoted =
                    recv_ty.and_then(|ty| by_type_name.get(&(ty.to_owned(), name.to_owned())));
                match demoted {
                    Some(ids) => push_targets(&mut calls, tok_idx, Some(ids), true),
                    None => push_targets(&mut calls, tok_idx, methods.get(name), false),
                }
            }
            Some("::") => {
                // Qualified call. Find the nearest path segment (skipping
                // one turbofish group if present), and the leading one.
                let mut q = s.wrapping_sub(2);
                if text(q) == Some(">") || text(q) == Some(">>") {
                    // `Type::<T>::new` — walk back over the angle group.
                    let mut depth = 0i64;
                    loop {
                        match text(q) {
                            Some(">") => depth += 1,
                            Some(">>") => depth += 2,
                            Some("<") => depth -= 1,
                            Some("<<") => depth -= 2,
                            None => break,
                            _ => {}
                        }
                        if depth <= 0 || q == 0 {
                            break;
                        }
                        q -= 1;
                    }
                    q = q.wrapping_sub(1); // the segment before `::<`
                    if text(q) == Some("::") {
                        q = q.wrapping_sub(1);
                    }
                }
                let nearest = tok(q)
                    .filter(|t| matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent))
                    .map(|t| t.text.as_str());
                // Leading segment of the whole path.
                let mut lead = nearest;
                let mut k = q;
                while k >= 2 && text(k - 1) == Some("::") {
                    k -= 2;
                    if let Some(t) = tok(k) {
                        if matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent) {
                            lead = Some(t.text.as_str());
                            continue;
                        }
                    }
                    break;
                }
                let resolved: Option<&Vec<usize>> = match nearest {
                    Some("Self") => {
                        self_ty.and_then(|ty| by_type_name.get(&(ty.to_owned(), name.to_owned())))
                    }
                    Some(seg) if type_names.contains(seg) => {
                        by_type_name.get(&(seg.to_owned(), name.to_owned()))
                    }
                    _ => match lead.and_then(|l| {
                        crate_of_alias(l, crate_name).or_else(|| {
                            imports
                                .get(l)
                                .cloned()
                                .filter(|_| l.starts_with(char::is_lowercase))
                        })
                    }) {
                        Some(c) => by_crate_name.get(&(c, name.to_owned())),
                        None => lead
                            .filter(|l| imports.contains_key(*l) && type_names.contains(*l))
                            .and_then(|l| by_type_name.get(&(l.to_owned(), name.to_owned()))),
                    },
                };
                push_targets(&mut calls, tok_idx, resolved, true);
            }
            Some("fn") => {} // a nested fn definition, not a call
            _ => {
                // Plain call: same crate first, then imported workspace fns.
                let same = by_crate_name.get(&(crate_name.to_owned(), name.to_owned()));
                if same.is_some() {
                    push_targets(&mut calls, tok_idx, same, true);
                } else if let Some(c) = imports.get(name) {
                    push_targets(
                        &mut calls,
                        tok_idx,
                        by_crate_name.get(&(c.clone(), name.to_owned())),
                        true,
                    );
                }
            }
        }
    }
    calls.sort_by_key(|c| (c.tok, c.callee));
    calls.dedup_by_key(|c| (c.tok, c.callee));
    (calls, sites)
}

/// The workspace type a value of the given type tokens dispatches
/// methods on: sees through `&`/`mut`/lifetimes/`dyn` and one layer of
/// `Arc`/`Rc`/`Box` (which `Deref` to their payload), then takes the last
/// path segment before any generic arguments. `None` unless that segment
/// is a type the workspace defines (so `Vec<Row>` is *not* `Row`).
fn workspace_type_of(ts: &[&Token], type_names: &BTreeSet<String>) -> Option<String> {
    let mut i = 0;
    let strip = |ts: &[&Token], mut i: usize| {
        while let Some(&t) = ts.get(i) {
            if matches!(t.text.as_str(), "&" | "&&" | "mut" | "*" | "const" | "dyn")
                || t.kind == TokenKind::Lifetime
            {
                i += 1;
            } else {
                break;
            }
        }
        i
    };
    i = strip(ts, i);
    while ts
        .get(i)
        .is_some_and(|t| matches!(t.text.as_str(), "Arc" | "Rc" | "Box"))
        && ts.get(i + 1).is_some_and(|t| t.text == "<")
    {
        i = strip(ts, i + 2);
    }
    let mut last = None;
    while let Some(&t) = ts.get(i) {
        if !matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent) {
            break;
        }
        last = Some(t.text.as_str());
        if ts.get(i + 1).is_some_and(|t| t.text == "::") {
            i += 2;
        } else {
            break;
        }
    }
    last.filter(|n| type_names.contains(*n)).map(str::to_owned)
}

/// Parse `name: Type` pairs out of a fn signature's parameter list,
/// keeping only params whose type resolves to a workspace type.
fn param_types(
    tokens: &[Token],
    sig: Range<usize>,
    type_names: &BTreeSet<String>,
) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let ts: Vec<&Token> = tokens
        .get(sig.start..sig.end.min(tokens.len()))
        .unwrap_or(&[])
        .iter()
        .filter(|t| !is_comment(t))
        .collect();
    let Some(fn_pos) = ts.iter().position(|t| t.text == "fn") else {
        return out;
    };
    let Some(open) = ts
        .get(fn_pos..)
        .unwrap_or(&[])
        .iter()
        .position(|t| t.text == "(")
        .map(|p| fn_pos + p)
    else {
        return out;
    };
    // Split the param list on `,` at paren depth 1 / angle depth 0.
    let mut depth = 0i64;
    let mut angle = 0i64;
    let mut param_start = open + 1;
    let mut k = open;
    while let Some(cur) = ts.get(k) {
        let txt = cur.text.as_str();
        match txt {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "<" => angle += 1,
            "<<" => angle += 2,
            ">" => angle -= 1,
            ">>" => angle -= 2,
            _ => {}
        }
        let boundary = (txt == "," && depth == 1 && angle <= 0) || depth == 0;
        if boundary && k > open {
            let param = ts.get(param_start..k).unwrap_or(&[]);
            // `name: Type`, skipping `mut` and any `self` receiver form.
            let mut p = 0;
            while param.get(p).is_some_and(|t| t.text == "mut") {
                p += 1;
            }
            if let (Some(name), Some(colon)) = (param.get(p), param.get(p + 1)) {
                if matches!(name.kind, TokenKind::Ident | TokenKind::RawIdent)
                    && name.text != "self"
                    && colon.text == ":"
                {
                    if let Some(ty) =
                        workspace_type_of(param.get(p + 2..).unwrap_or(&[]), type_names)
                    {
                        out.insert(name.text.clone(), ty);
                    }
                }
            }
            param_start = k + 1;
        }
        if depth == 0 && k > open {
            break; // closed the param list
        }
        k += 1;
    }
    out
}

/// Whether a fn signature's return type mentions `Result` (covers both
/// bare and fully-qualified spellings).
fn sig_returns_result(tokens: &[Token], sig: Range<usize>) -> bool {
    let ts: Vec<&Token> = tokens
        .get(sig.start..sig.end.min(tokens.len()))
        .unwrap_or(&[])
        .iter()
        .filter(|t| !is_comment(t))
        .collect();
    let Some(arrow) = ts.iter().position(|t| t.text == "->") else {
        return false;
    };
    ts.get(arrow + 1..)
        .unwrap_or(&[])
        .iter()
        .take_while(|t| !matches!(t.text.as_str(), "{" | ";" | "where"))
        .any(|t| t.text == "Result")
}

/// Parse `Cargo.toml` `[dependencies]` sections of the root package and
/// every `crates/*` member into `udi-* → udi-*` edges. Dev-dependencies
/// are deliberately excluded: the layering contract governs what shipped
/// code may link against, not what tests may exercise.
pub fn manifest_deps(root: &Path) -> Result<Vec<DepEdge>, AuditError> {
    let mut manifests: Vec<std::path::PathBuf> = vec![root.join("Cargo.toml")];
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut members: Vec<_> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for m in members {
            let manifest = m.join("Cargo.toml");
            if manifest.is_file() {
                manifests.push(manifest);
            }
        }
    }
    let mut edges = Vec::new();
    for manifest in manifests {
        let text =
            std::fs::read_to_string(&manifest).map_err(|e| AuditError::Io(manifest.clone(), e))?;
        let rel = manifest
            .strip_prefix(root)
            .unwrap_or(&manifest)
            .to_string_lossy()
            .replace('\\', "/");
        let mut section = String::new();
        let mut package_name: Option<String> = None;
        let mut deps: Vec<(String, u32)> = Vec::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if let Some(h) = line.strip_prefix('[') {
                section = h.trim_end_matches(']').trim().to_owned();
                continue;
            }
            if section == "package" && package_name.is_none() {
                if let Some(v) = line.strip_prefix("name") {
                    let v = v.trim_start().trim_start_matches('=').trim();
                    package_name = Some(v.trim_matches('"').to_owned());
                }
            }
            if section == "dependencies" {
                let key: &str = line
                    .split(['=', '.', ' ', '\t'])
                    .next()
                    .unwrap_or("")
                    .trim();
                if key.starts_with("udi-") {
                    deps.push((key.to_owned(), ln as u32 + 1));
                }
            }
        }
        let from = package_name.unwrap_or_default();
        if from.is_empty() {
            continue;
        }
        for (to, line) in deps {
            edges.push(DepEdge {
                from: from.clone(),
                to,
                path: rel.clone(),
                line,
            });
        }
    }
    edges.sort();
    edges.dedup();
    Ok(edges)
}

/// Derive `use udi_x::…` edges from source files (lib and bin code only —
/// tests, benches, and examples are dev context, like dev-dependencies).
pub fn use_deps(files: &[SourceFile]) -> Vec<DepEdge> {
    let mut edges = Vec::new();
    for file in files {
        if !matches!(file.class.kind, CodeKind::Lib | CodeKind::Bin) {
            continue;
        }
        for item in &file.items {
            if item.kind != ItemKind::Use || item.in_test {
                continue;
            }
            // Leading segment of the use path.
            let lead = file
                .tokens
                .get(item.span.clone())
                .unwrap_or(&[])
                .iter()
                .filter(|t| !is_comment(t))
                .skip(1)
                .find(|t| matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent));
            let Some(lead) = lead else { continue };
            if !lead.text.starts_with("udi_") && lead.text != "udi" {
                continue; // `crate::`/`self::` are not cross-crate edges
            }
            let Some(to) = crate_of_alias(&lead.text, &file.class.crate_name) else {
                continue;
            };
            if to == file.class.crate_name {
                continue;
            }
            edges.push(DepEdge {
                from: file.class.crate_name.clone(),
                to,
                path: file.rel.clone(),
                line: lead.line,
            });
        }
    }
    edges.sort();
    edges.dedup();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::FileClass;
    use crate::lexer::lex;
    use crate::parser::parse_items;

    fn file(crate_name: &str, rel: &str, src: &str) -> SourceFile {
        let tokens = lex(src);
        let items = parse_items(&tokens);
        SourceFile {
            rel: rel.to_owned(),
            class: FileClass {
                crate_name: crate_name.to_owned(),
                kind: CodeKind::Lib,
            },
            tokens,
            items,
        }
    }

    #[test]
    fn plain_calls_resolve_within_crate() {
        let files = vec![file(
            "udi-a",
            "crates/a/src/lib.rs",
            "pub fn top() { helper() } fn helper() { leaf() } fn leaf() {}",
        )];
        let g = build_call_graph(&files);
        assert_eq!(g.fns.len(), 3);
        let top = g.fns.iter().position(|f| f.name == "top").unwrap();
        let helper = g.fns.iter().position(|f| f.name == "helper").unwrap();
        let leaf = g.fns.iter().position(|f| f.name == "leaf").unwrap();
        assert!(g.edges(top).contains(&helper));
        assert!(g.edges(helper).contains(&leaf));
        assert!(g.edges(leaf).is_empty());
    }

    #[test]
    fn cross_crate_calls_resolve_through_imports() {
        let files = vec![
            file(
                "udi-a",
                "crates/a/src/lib.rs",
                "use udi_b::helper;\npub fn top() { helper() }",
            ),
            file("udi-b", "crates/b/src/lib.rs", "pub fn helper() {}"),
        ];
        let g = build_call_graph(&files);
        let top = g.fns.iter().position(|f| f.name == "top").unwrap();
        let helper = g.fns.iter().position(|f| f.name == "helper").unwrap();
        assert!(g.edges(top).contains(&helper));
    }

    #[test]
    fn qualified_paths_resolve_through_crate_alias_and_types() {
        let files = vec![
            file(
                "udi-a",
                "crates/a/src/lib.rs",
                "pub fn top() { udi_b::util::helper(); Widget::new(); }",
            ),
            file(
                "udi-b",
                "crates/b/src/lib.rs",
                "pub fn helper() {} pub struct Widget; impl Widget { pub fn new() -> Widget { Widget } }",
            ),
        ];
        let g = build_call_graph(&files);
        let top = g.fns.iter().position(|f| f.name == "top").unwrap();
        let helper = g.fns.iter().position(|f| f.name == "helper").unwrap();
        let new = g.fns.iter().position(|f| f.name == "new").unwrap();
        assert!(g.edges(top).contains(&helper));
        assert!(g.edges(top).contains(&new));
    }

    #[test]
    fn method_calls_over_approximate_by_name() {
        let files = vec![
            file(
                "udi-a",
                "crates/a/src/lib.rs",
                "pub fn top(s: S) { s.go() } pub struct S;",
            ),
            file(
                "udi-b",
                "crates/b/src/lib.rs",
                "pub struct T; impl T { pub fn go(&self) {} }",
            ),
        ];
        let g = build_call_graph(&files);
        let top = g.fns.iter().position(|f| f.name == "top").unwrap();
        let go = g.fns.iter().position(|f| f.name == "go").unwrap();
        assert!(g.edges(top).contains(&go));
    }

    #[test]
    fn panic_sites_are_collected_per_fn() {
        let files = vec![file(
            "udi-a",
            "crates/a/src/lib.rs",
            "pub fn f(x: Option<u8>, v: &[u8]) -> u8 { x.unwrap() + v[0] }\n\
             pub fn g() { panic!(\"no\") }\n\
             pub fn clean() {}",
        )];
        let g = build_call_graph(&files);
        let f = g.fns.iter().position(|f| f.name == "f").unwrap();
        let gg = g.fns.iter().position(|f| f.name == "g").unwrap();
        let clean = g.fns.iter().position(|f| f.name == "clean").unwrap();
        let kinds: Vec<PanicKind> = g.sites[f].iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&PanicKind::UnwrapLike));
        assert!(kinds.contains(&PanicKind::Index));
        assert_eq!(g.sites[gg].len(), 1);
        assert_eq!(g.sites[gg][0].kind, PanicKind::Macro);
        assert!(g.sites[clean].is_empty());
    }

    #[test]
    fn attribute_and_macro_brackets_are_not_index_sites() {
        let files = vec![file(
            "udi-a",
            "crates/a/src/lib.rs",
            "pub fn f() -> Vec<u8> { let v = vec![1, 2]; v }",
        )];
        let g = build_call_graph(&files);
        let f = g.fns.iter().position(|f| f.name == "f").unwrap();
        assert!(g.sites[f].is_empty(), "{:?}", g.sites[f]);
    }

    #[test]
    fn use_dep_edges_from_sources() {
        let files = vec![file(
            "udi-a",
            "crates/a/src/lib.rs",
            "use udi_b::Thing;\nuse crate::local;\npub fn f(_t: Thing) {}",
        )];
        let edges = use_deps(&files);
        assert_eq!(edges.len(), 1);
        assert_eq!(
            (edges[0].from.as_str(), edges[0].to.as_str()),
            ("udi-a", "udi-b")
        );
    }
}

//! Strongly-connected components over small index graphs.
//!
//! Shared by the lock-order pass (deadlock cycles over the lock graph)
//! and the effect-inference engine (condensing the call graph before
//! the bottom-up fixpoint). The input shape is deliberately minimal —
//! `n` nodes `0..n` with a `BTreeSet<usize>` adjacency per node — so
//! every caller gets the same deterministic component order.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Strongly-connected components (Kosaraju, deterministic orders).
///
/// Components are returned with members sorted ascending and the
/// component list itself sorted, so equal graphs always produce equal
/// output regardless of insertion history.
pub fn sccs(n: usize, adj: &[BTreeSet<usize>]) -> Vec<Vec<usize>> {
    let succs = |v: usize| -> Vec<usize> {
        adj.get(v)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    };
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for start in 0..n {
        if seen.get(start).copied().unwrap_or(true) {
            continue;
        }
        // Iterative post-order DFS.
        let mut stack = vec![(start, succs(start), 0usize)];
        if let Some(s) = seen.get_mut(start) {
            *s = true;
        }
        while let Some((v, nexts, mut i)) = stack.pop() {
            let mut descended = false;
            while let Some(&w) = nexts.get(i) {
                i += 1;
                if !seen.get(w).copied().unwrap_or(true) {
                    if let Some(s) = seen.get_mut(w) {
                        *s = true;
                    }
                    stack.push((v, nexts.clone(), i));
                    stack.push((w, succs(w), 0));
                    descended = true;
                    break;
                }
            }
            if !descended {
                order.push(v);
            }
        }
    }
    let mut radj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for (v, outs) in adj.iter().enumerate() {
        for &w in outs {
            if let Some(back) = radj.get_mut(w) {
                back.insert(v);
            }
        }
    }
    let mut comp = vec![usize::MAX; n];
    let mut comps: Vec<Vec<usize>> = Vec::new();
    for &start in order.iter().rev() {
        if comp.get(start).copied().unwrap_or(0) != usize::MAX {
            continue;
        }
        let c = comps.len();
        let mut members = Vec::new();
        let mut queue = VecDeque::from([start]);
        if let Some(slot) = comp.get_mut(start) {
            *slot = c;
        }
        while let Some(v) = queue.pop_front() {
            members.push(v);
            for &w in radj.get(v).into_iter().flatten() {
                if comp.get(w) == Some(&usize::MAX) {
                    if let Some(slot) = comp.get_mut(w) {
                        *slot = c;
                    }
                    queue.push_back(w);
                }
            }
        }
        members.sort_unstable();
        comps.push(members);
    }
    comps.sort();
    comps
}

/// A concrete cycle through the component's smallest node id, closed
/// (first element repeated at the end).
pub fn reconstruct_cycle(comp: &[usize], adj: &[BTreeSet<usize>]) -> Option<Vec<usize>> {
    let inset: BTreeSet<usize> = comp.iter().copied().collect();
    let m = *comp.first()?;
    let m_succs = adj.get(m)?;
    if m_succs.contains(&m) {
        return Some(vec![m, m]);
    }
    // BFS from each successor of m back to m, inside the component.
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &s in m_succs.iter().filter(|s| inset.contains(s)) {
        if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(s) {
            e.insert(m);
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        if v == m {
            break;
        }
        for &w in adj
            .get(v)
            .into_iter()
            .flatten()
            .filter(|w| inset.contains(w))
        {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(w) {
                e.insert(v);
                queue.push_back(w);
            }
        }
    }
    parent.get(&m)?;
    let mut path = vec![m];
    let mut cur = m;
    for _ in 0..=comp.len() {
        let &p = parent.get(&cur)?;
        path.push(p);
        cur = p;
        if p == m {
            break;
        }
    }
    path.reverse();
    Some(path)
}

/// SCC condensation: component membership per node plus the component
/// DAG in **reverse topological order** (every listed component appears
/// after all components it points at).
///
/// The effect fixpoint walks `topo` front-to-back so a component's
/// callees are always solved before the component itself.
pub struct Condensation {
    /// `comp[v]` — component index of node `v`.
    pub comp: Vec<usize>,
    /// Sorted member lists, indexed by component id.
    pub members: Vec<Vec<usize>>,
    /// Component adjacency (self-loops removed).
    pub comp_adj: Vec<BTreeSet<usize>>,
    /// Component ids, callees before callers (reverse topological).
    pub topo: Vec<usize>,
}

/// Condense `adj` into its component DAG and order it bottom-up.
pub fn condense(n: usize, adj: &[BTreeSet<usize>]) -> Condensation {
    let members = sccs(n, adj);
    let mut comp = vec![usize::MAX; n];
    for (c, ms) in members.iter().enumerate() {
        for &v in ms {
            if let Some(slot) = comp.get_mut(v) {
                *slot = c;
            }
        }
    }
    let k = members.len();
    let mut comp_adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); k];
    for (v, outs) in adj.iter().enumerate() {
        for &w in outs {
            let (Some(&cv), Some(&cw)) = (comp.get(v), comp.get(w)) else {
                continue;
            };
            if cv != cw {
                if let Some(set) = comp_adj.get_mut(cv) {
                    set.insert(cw);
                }
            }
        }
    }
    // Kahn over the reversed DAG: components with no outgoing edges
    // (leaves of the call DAG) drain first. Deterministic because the
    // ready queue is a BTreeSet of component ids.
    let mut pending: Vec<usize> = comp_adj.iter().map(BTreeSet::len).collect();
    let mut rev: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); k];
    for (c, outs) in comp_adj.iter().enumerate() {
        for &d in outs {
            if let Some(back) = rev.get_mut(d) {
                back.insert(c);
            }
        }
    }
    let mut ready: BTreeSet<usize> = (0..k).filter(|&c| pending.get(c) == Some(&0)).collect();
    let mut topo = Vec::with_capacity(k);
    while let Some(&c) = ready.iter().next() {
        ready.remove(&c);
        topo.push(c);
        for &caller in rev.get(c).into_iter().flatten() {
            let Some(p) = pending.get_mut(caller) else {
                continue;
            };
            *p = p.saturating_sub(1);
            if *p == 0 {
                ready.insert(caller);
            }
        }
    }
    debug_assert_eq!(topo.len(), k, "component DAG must be acyclic");
    Condensation {
        comp,
        members,
        comp_adj,
        topo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(usize, usize)]) -> Vec<BTreeSet<usize>> {
        let mut adj = vec![BTreeSet::new(); n];
        for &(a, b) in edges {
            adj[a].insert(b);
        }
        adj
    }

    #[test]
    fn singletons_without_edges() {
        let adj = graph(3, &[]);
        assert_eq!(sccs(3, &adj), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn simple_cycle_is_one_component() {
        let adj = graph(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let comps = sccs(4, &adj);
        assert!(comps.contains(&vec![0, 1, 2]));
        assert!(comps.contains(&vec![3]));
    }

    #[test]
    fn two_cycles_bridged() {
        let adj = graph(6, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 2), (4, 5)]);
        let comps = sccs(6, &adj);
        assert_eq!(comps.len(), 3);
        assert!(comps.contains(&vec![0, 1]));
        assert!(comps.contains(&vec![2, 3, 4]));
        assert!(comps.contains(&vec![5]));
    }

    #[test]
    fn deterministic_regardless_of_edge_insertion_order() {
        let a = graph(5, &[(0, 1), (1, 2), (2, 0), (3, 4)]);
        let b = graph(5, &[(3, 4), (2, 0), (1, 2), (0, 1)]);
        assert_eq!(sccs(5, &a), sccs(5, &b));
    }

    #[test]
    fn reconstructs_self_loop() {
        let adj = graph(2, &[(1, 1)]);
        assert_eq!(reconstruct_cycle(&[1], &adj), Some(vec![1, 1]));
    }

    #[test]
    fn reconstructs_closed_cycle_through_smallest() {
        let adj = graph(3, &[(0, 1), (1, 2), (2, 0)]);
        let cyc = reconstruct_cycle(&[0, 1, 2], &adj).expect("cycle");
        assert_eq!(cyc.first(), Some(&0));
        assert_eq!(cyc.last(), Some(&0));
        assert!(cyc.len() >= 3);
        for pair in cyc.windows(2) {
            assert!(adj[pair[0]].contains(&pair[1]), "edge {pair:?} missing");
        }
    }

    #[test]
    fn no_cycle_in_singleton_without_self_loop() {
        let adj = graph(2, &[(0, 1)]);
        assert_eq!(reconstruct_cycle(&[0], &adj), None);
    }

    #[test]
    fn condensation_orders_callees_first() {
        // 0 -> 1 -> {2,3 cycle} -> 4
        let adj = graph(5, &[(0, 1), (1, 2), (2, 3), (3, 2), (3, 4)]);
        let c = condense(5, &adj);
        assert_eq!(c.members.len(), 4);
        let pos: BTreeMap<usize, usize> = c.topo.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for (cid, outs) in c.comp_adj.iter().enumerate() {
            for &d in outs {
                assert!(pos[&d] < pos[&cid], "callee component must drain first");
            }
        }
        assert_eq!(c.comp[2], c.comp[3]);
        assert_ne!(c.comp[1], c.comp[2]);
    }

    #[test]
    fn condensation_covers_every_node_once() {
        let adj = graph(7, &[(0, 1), (1, 0), (2, 3), (4, 4), (5, 6)]);
        let c = condense(7, &adj);
        let mut all: Vec<usize> = c.members.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..7).collect::<Vec<_>>());
        assert_eq!(c.topo.len(), c.members.len());
    }
}

//! Dead-export detection with a ratchet.
//!
//! A `pub` item in a crate's lib code that no other workspace file ever
//! names is a dead export: unused API surface that still costs review and
//! compatibility attention. Because a freshly-bootstrapped codebase has
//! legitimate pre-existing surface (and some exports exist *for* external
//! callers), the pass ratchets instead of hard-failing on day one:
//!
//! * a dead export **listed** in the ratchet file is a warning (frozen
//!   debt — allowed to exist, visible in reports),
//! * a dead export **not listed** is an error (new debt is rejected),
//! * a ratchet entry that is **no longer dead** (or no longer exists) is an
//!   error — the file must shrink as debt is paid down, never drift.
//!
//! The ratchet file is shared with the other ratcheting passes — see
//! [`crate::ratchet`]. Dead-export entries use the legacy bare
//! `crate-name::item-name` form (no lint prefix), one per line.

use std::collections::{BTreeMap, BTreeSet};

use crate::classify::CodeKind;
use crate::lints::{allow_covers, AllowDirective, Diagnostic, DEAD_EXPORT};
use crate::parser::{ItemKind, Vis};
use crate::ratchet::Ratchet;
use crate::Workspace;

/// Run the pass over the shared parsed [`Ratchet`].
pub fn run(
    ws: &Workspace,
    ratchet_path: &str,
    ratchet: &Ratchet,
    directives: &mut [Vec<AllowDirective>],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // 1. Candidate exports: pub items in lib code, outside test regions.
    //    Trait impl members are not exports in their own right (their
    //    visibility is the trait's), and `use` / `mod` items are plumbing.
    struct Export<'a> {
        key: String,
        name: &'a str,
        file: usize,
        rel: &'a str,
        line: u32,
        col: u32,
    }
    let mut exports: Vec<Export<'_>> = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if file.class.kind != CodeKind::Lib {
            continue;
        }
        for item in &file.items {
            if item.vis != Vis::Pub
                || item.in_test
                || item.trait_name.is_some()
                || matches!(
                    item.kind,
                    ItemKind::Use | ItemKind::Mod | ItemKind::MacroDef
                )
                || item.name.is_empty()
            {
                continue;
            }
            // Inherent methods are reachable only through their type; the
            // type itself is the export we track. Skip `Self`-scoped fns.
            if item.self_ty.is_some() {
                continue;
            }
            exports.push(Export {
                key: format!("{}::{}", file.class.crate_name, item.name),
                name: &item.name,
                file: fi,
                rel: &file.rel,
                line: item.line,
                col: item.col,
            });
        }
    }

    // 2. Count ident occurrences across ALL files (tests and examples are
    //    legitimate consumers), excluding each export's own definition
    //    span, done cheaply: count global occurrences once, then subtract
    //    occurrences inside the defining item's span.
    let mut global: BTreeMap<&str, usize> = BTreeMap::new();
    for file in &ws.files {
        for tok in &file.tokens {
            if matches!(
                tok.kind,
                crate::lexer::TokenKind::Ident | crate::lexer::TokenKind::RawIdent
            ) {
                *global.entry(tok.text.as_str()).or_insert(0) += 1;
            }
        }
    }
    let mut live_keys: BTreeSet<String> = BTreeSet::new();

    for ex in &exports {
        let total = global.get(ex.name).copied().unwrap_or(0);
        // Occurrences within the defining item's own span (the definition
        // itself, recursive self-references, method bodies of the type).
        let own = ws.files.get(ex.file).map_or(0, |file| {
            let span = file
                .items
                .iter()
                .find(|it| it.line == ex.line && it.name == *ex.name)
                .map(|it| it.span.clone());
            match span {
                Some(span) => file
                    .tokens
                    .get(span)
                    .unwrap_or(&[])
                    .iter()
                    .filter(|t| t.text == *ex.name)
                    .count(),
                None => 0,
            }
        });
        if total > own {
            live_keys.insert(ex.key.clone());
            continue;
        }
        let allowed = directives
            .get_mut(ex.file)
            .is_some_and(|ds| allow_covers(ds, DEAD_EXPORT, ex.line));
        if allowed {
            live_keys.insert(ex.key.clone());
            continue;
        }
        if ratchet.line_of(DEAD_EXPORT, &ex.key).is_some() {
            diags.push(Diagnostic::warning(
                ex.rel,
                ex.line,
                ex.col,
                DEAD_EXPORT,
                format!("`{}` is unused outside its definition (ratcheted)", ex.key),
            ));
        } else {
            let mut d = Diagnostic::error(
                ex.rel,
                ex.line,
                ex.col,
                DEAD_EXPORT,
                format!(
                    "new dead export: `{}` is never named outside its definition",
                    ex.key
                ),
            );
            d.notes.push(format!(
                "remove it, reference it, or (for deliberate API surface) add `{}` to {ratchet_path}",
                ex.key
            ));
            diags.push(d);
        }
    }

    // 3. Stale ratchet entries: listed but no longer a dead export.
    let export_keys: BTreeSet<&str> = exports.iter().map(|e| e.key.as_str()).collect();
    for (key, line) in ratchet.entries_for(DEAD_EXPORT) {
        let stale = !export_keys.contains(key) || live_keys.contains(key);
        if stale {
            let mut d = Diagnostic::error(
                ratchet_path,
                line,
                1,
                DEAD_EXPORT,
                format!("stale ratchet entry: `{key}` is no longer a dead export"),
            );
            d.notes
                .push("delete the line — the ratchet only shrinks".to_owned());
            diags.push(d);
        }
    }
    diags
}

//! Determinism certification: a transitive proof that the declared entry
//! points (`audit.toml [determinism] entry-points`) cannot reach
//! nondeterministic behavior through the workspace call graph.
//!
//! The file-local `deterministic-iteration` / `no-raw-time` lints only
//! police the crates named in their static perimeter. This pass closes
//! the gap *semantically*: starting from each entry point's fn node it
//! walks **all** call edges (the uncertain method-name edges included —
//! over-approximation is the safe direction for a certificate) and fails
//! the entry if any reachable lib fn body contains:
//!
//! - hash-ordered containers (`HashMap` / `HashSet` / `RandomState`),
//! - raw clock reads (`Instant` / `SystemTime`),
//! - environment reads (`env::var` and friends).
//!
//! A site already sanctioned by a reasoned file-local allow
//! (`deterministic-iteration`, `no-raw-time`) is trusted: the allow's
//! stated reason is exactly a claim that order/time cannot leak.
//! Crates in `exempt-crates` (the timing authority) are out of scope.
//!
//! Ratchet key: the entry point's id-path. An entry that matches no
//! workspace fn is itself an error — a certificate over nothing is not
//! a certificate.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::classify::CodeKind;
use crate::config::Config;
use crate::graph::CallGraph;
use crate::lexer::TokenKind;
use crate::lints::{
    allow_covers, AllowDirective, Diagnostic, Severity, DETERMINISM_CERT, DETERMINISTIC_ITERATION,
    NO_RAW_TIME,
};
use crate::parser::is_comment;
use crate::ratchet::Ratchet;
use crate::Workspace;

/// One nondeterminism source found in a fn body.
struct Site {
    what: String,
    kind: &'static str,
    line: u32,
    col: u32,
}

/// Run the pass. Disabled (empty result) when no entry points are
/// configured.
pub fn run(
    ws: &Workspace,
    cfg: &Config,
    graph: &CallGraph,
    ratchet: &Ratchet,
    ratchet_path: Option<&str>,
    directives: &mut [Vec<AllowDirective>],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if cfg.determinism_entries.is_empty() {
        return diags;
    }
    let n = graph.fns.len();
    let cfg_path = cfg.source.as_deref().unwrap_or("audit.toml");

    // Nondeterminism sites per fn (lib, non-test, non-exempt crates).
    let mut sites: Vec<Vec<Site>> = (0..n).map(|_| Vec::new()).collect();
    for (f, node) in graph.fns.iter().enumerate() {
        if node.in_test
            || node.kind != CodeKind::Lib
            || cfg.determinism_exempt.iter().any(|c| c == &node.crate_name)
        {
            continue;
        }
        let (Some(body), Some(file)) = (node.body.clone(), ws.files.get(node.file)) else {
            continue;
        };
        for i in body.clone() {
            let Some(t) = file.tokens.get(i) else {
                continue;
            };
            if t.kind != TokenKind::Ident {
                continue;
            }
            let found: Option<(&str, String)> = match t.text.as_str() {
                "HashMap" | "HashSet" | "RandomState" => {
                    Some(("hash-ordered iteration", t.text.clone()))
                }
                "Instant" | "SystemTime" => Some(("raw clock read", t.text.clone())),
                "var" | "vars" | "var_os" | "vars_os" => {
                    // `env::var(…)` — require the qualified spelling.
                    let sig_prev = |from: usize| {
                        (body.start..from)
                            .rev()
                            .find(|&k| file.tokens.get(k).is_some_and(|t| !is_comment(t)))
                    };
                    let is_env = sig_prev(i)
                        .filter(|&p| file.tokens.get(p).is_some_and(|t| t.text == "::"))
                        .and_then(&sig_prev)
                        .is_some_and(|p| file.tokens.get(p).is_some_and(|t| t.text == "env"));
                    is_env.then(|| ("environment read", format!("env::{}", t.text)))
                }
                _ => None,
            };
            let Some((kind, what)) = found else { continue };
            // A reasoned file-local allow on the site line is an explicit
            // claim that this use cannot leak — trust it (presence only;
            // the file lints own those directives' used-ness).
            let sanctioned = directives.get(node.file).is_some_and(|ds| {
                ds.iter().any(|d| {
                    d.target_line == t.line
                        && matches!(
                            d.lint.as_str(),
                            x if x == DETERMINISTIC_ITERATION
                                || x == NO_RAW_TIME
                                || x == DETERMINISM_CERT
                        )
                })
            });
            if sanctioned {
                // determinism-cert allows at a site are used here.
                if let Some(ds) = directives.get_mut(node.file) {
                    allow_covers(ds, DETERMINISM_CERT, t.line);
                }
                continue;
            }
            if let Some(list) = sites.get_mut(f) {
                list.push(Site {
                    what,
                    kind,
                    line: t.line,
                    col: t.col,
                });
            }
        }
    }

    // Forward adjacency over all edges, test callees excluded.
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for (f, calls) in graph.calls.iter().enumerate() {
        if graph.fns.get(f).is_none_or(|nd| nd.in_test) {
            continue;
        }
        for cs in calls {
            if graph.fns.get(cs.callee).is_some_and(|c| !c.in_test) {
                if let Some(out) = adj.get_mut(f) {
                    out.insert(cs.callee);
                }
            }
        }
    }

    let mut found_keys: BTreeSet<String> = BTreeSet::new();
    for entry in &cfg.determinism_entries {
        let roots: Vec<usize> = graph
            .fns
            .iter()
            .enumerate()
            .filter(|(_, nd)| !nd.in_test && nd.id_path == *entry)
            .map(|(f, _)| f)
            .collect();
        if roots.is_empty() {
            diags.push(Diagnostic::error(
                cfg_path,
                1,
                1,
                DETERMINISM_CERT,
                format!("determinism entry point `{entry}` matches no workspace fn"),
            ));
            continue;
        }
        for root in roots {
            // BFS with parents for the shortest witness chain.
            let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
            let mut queue = VecDeque::from([root]);
            let mut seen = BTreeSet::from([root]);
            let mut hit: Option<usize> = None;
            while let Some(v) = queue.pop_front() {
                if sites.get(v).is_some_and(|l| !l.is_empty()) {
                    hit = Some(v);
                    break;
                }
                for &w in adj.get(v).into_iter().flatten() {
                    if seen.insert(w) {
                        parent.insert(w, v);
                        queue.push_back(w);
                    }
                }
            }
            let Some(hit) = hit else { continue };
            let Some(node) = graph.fns.get(root) else {
                continue;
            };
            let rel = ws
                .files
                .get(node.file)
                .map(|fl| fl.rel.as_str())
                .unwrap_or("?");
            let allowed = directives
                .get_mut(node.file)
                .is_some_and(|ds| allow_covers(ds, DETERMINISM_CERT, node.line));
            if allowed {
                continue;
            }
            let mut chain = vec![hit];
            let mut cur = hit;
            while let Some(&p) = parent.get(&cur) {
                chain.push(p);
                cur = p;
            }
            chain.reverse();
            let chain_text = chain
                .iter()
                .map(|&g| graph.display(g))
                .collect::<Vec<_>>()
                .join(" → ");
            let Some(site) = sites.get(hit).and_then(|l| l.first()) else {
                continue;
            };
            let site_rel = graph
                .fns
                .get(hit)
                .and_then(|nd| ws.files.get(nd.file))
                .map(|fl| fl.rel.as_str())
                .unwrap_or("?");
            let mut d = Diagnostic::error(
                rel,
                node.line,
                node.col,
                DETERMINISM_CERT,
                format!(
                    "declared deterministic entry `{entry}` can reach {}",
                    site.kind
                ),
            );
            if chain.len() > 1 {
                d.notes.push(format!("call chain: {chain_text}"));
            }
            d.notes.push(format!(
                "site: `{}` at {site_rel}:{}:{} ({})",
                site.what, site.line, site.col, site.kind
            ));
            d.notes.push(
                "replace with order-stable/injected alternatives, or carry a reasoned \
                 file-local allow at the site"
                    .to_owned(),
            );
            if ratchet.line_of(DETERMINISM_CERT, entry).is_some() {
                d.severity = Severity::Warning;
                d.message.push_str(" (ratcheted)");
            }
            found_keys.insert(entry.clone());
            diags.push(d);
        }
    }

    if let Some(rp) = ratchet_path {
        for (key, line) in ratchet.entries_for(DETERMINISM_CERT) {
            if !found_keys.contains(key) {
                let mut d = Diagnostic::error(
                    rp,
                    line,
                    1,
                    DETERMINISM_CERT,
                    format!("stale ratchet entry: entry point `{key}` now certifies clean"),
                );
                d.notes
                    .push("delete the line — the ratchet only shrinks".to_owned());
                diags.push(d);
            }
        }
    }
    diags
}

//! Error-discard lint: dropped `Result`s in library code.
//!
//! A discarded `Result` is the quiet failure mode of a pay-as-you-go
//! system — a refresh that half-ran, a sink write that vanished. Two
//! statement shapes drop one:
//!
//! ```text
//! let _ = fallible();     // explicit discard
//! fallible();             // bare expression statement
//! ```
//!
//! The pass is CFG-driven: it looks at [`crate::cfg::StmtKind::Let`]
//! statements with a `_` pattern and at semicolon-terminated expression
//! statements, and flags them when the statement's value is a **certain**
//! call (structurally resolved — the method-name over-approximation is
//! too noisy for a correctness lint) whose every target declares a
//! `Result` return. "The statement's value" is checked structurally: the
//! call's closing parenthesis must be the last token before the `;`, and
//! the tokens before the callee must be a plain path/receiver — so
//! `fallible().ok();`, `fallible()?;`, and `let ok = fallible().is_ok();`
//! are all fine.
//!
//! Ratchet key: the containing fn's id-path. Escape hatch:
//! `allow(error-discard, "…")` on the statement's first line.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::cfg::{Cfg, StmtKind};
use crate::classify::CodeKind;
use crate::config::Config;
use crate::graph::CallGraph;
use crate::lexer::{Token, TokenKind};
use crate::lints::{allow_covers, AllowDirective, Diagnostic, Severity, ERROR_DISCARD};
use crate::parser::is_comment;
use crate::ratchet::Ratchet;
use crate::Workspace;

/// Run the pass. `cfgs` is indexed like `graph.fns`.
pub fn run(
    ws: &Workspace,
    cfg: &Config,
    graph: &CallGraph,
    cfgs: &[Option<Cfg>],
    ratchet: &Ratchet,
    ratchet_path: Option<&str>,
    directives: &mut [Vec<AllowDirective>],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut used_keys: BTreeSet<String> = BTreeSet::new();

    for (f, node) in graph.fns.iter().enumerate() {
        if node.in_test
            || node.kind != CodeKind::Lib
            || cfg
                .error_discard_exempt
                .iter()
                .any(|c| c == &node.crate_name)
        {
            continue;
        }
        let (Some(file), Some(fcfg)) = (
            ws.files.get(node.file),
            cfgs.get(f).and_then(|c| c.as_ref()),
        ) else {
            continue;
        };
        let calls = graph.calls.get(f).map(Vec::as_slice).unwrap_or(&[]);
        for (_, stmt) in fcfg.stmts() {
            let value_range: Option<(Range<usize>, bool)> = match &stmt.kind {
                StmtKind::Let { discard: true, .. } => {
                    // Value starts after the (first depth-0) `=`.
                    find_eq(&file.tokens, stmt.span.clone()).map(|eq| (eq + 1..stmt.span.end, true))
                }
                StmtKind::Expr { semi: true } => Some((stmt.span.clone(), false)),
                _ => None,
            };
            let Some((range, is_let)) = value_range else {
                continue;
            };
            // The certain call whose result is the statement's value.
            let Some((call_tok, callee_names)) = discarded_call(&file.tokens, range, calls, graph)
            else {
                continue;
            };
            let Some(t) = file.tokens.get(call_tok) else {
                continue;
            };
            if directives
                .get_mut(node.file)
                .is_some_and(|ds| allow_covers(ds, ERROR_DISCARD, stmt.line))
            {
                continue;
            }
            let rel = file.rel.as_str();
            let shape = if is_let {
                "`let _ =` discards"
            } else {
                "bare statement drops"
            };
            let mut d = Diagnostic::error(
                rel,
                stmt.line,
                stmt.col,
                ERROR_DISCARD,
                format!("{shape} the `Result` of `{callee_names}`"),
            );
            d.notes.push(format!(
                "call at {rel}:{}:{} — handle the error, propagate with `?`, or carry a \
                 reasoned allow(error-discard)",
                t.line, t.col
            ));
            if ratchet.line_of(ERROR_DISCARD, &node.id_path).is_some() {
                d.severity = Severity::Warning;
                d.message.push_str(" (ratcheted)");
                used_keys.insert(node.id_path.clone());
            }
            diags.push(d);
        }
    }

    if let Some(rp) = ratchet_path {
        for (key, line) in ratchet.entries_for(ERROR_DISCARD) {
            if !used_keys.contains(key) {
                let mut d = Diagnostic::error(
                    rp,
                    line,
                    1,
                    ERROR_DISCARD,
                    format!("stale ratchet entry: `{key}` no longer discards a Result"),
                );
                d.notes
                    .push("delete the line — the ratchet only shrinks".to_owned());
                diags.push(d);
            }
        }
    }
    diags
}

/// First `=` (exactly, not `==`/`=>`/`+=`) at bracket depth 0 in the span.
fn find_eq(tokens: &[Token], span: Range<usize>) -> Option<usize> {
    let mut depth = 0i64;
    let hi = span.end.min(tokens.len());
    for (i, t) in tokens.iter().enumerate().take(hi).skip(span.start) {
        if is_comment(t) {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "=" if depth == 0 && t.kind == TokenKind::Punct => return Some(i),
            _ => {}
        }
    }
    None
}

/// If the value expression in `range` is a certain call of only
/// `Result`-returning targets whose result is dropped, return the call
/// token and a display name.
fn discarded_call(
    tokens: &[Token],
    range: Range<usize>,
    calls: &[crate::graph::CallSite],
    graph: &CallGraph,
) -> Option<(usize, String)> {
    let range = range.start..range.end.min(tokens.len());
    // Candidate call sites inside the range, certain only.
    for cs in calls.iter().filter(|c| c.certain && range.contains(&c.tok)) {
        // Every certain target at this token must return Result.
        let targets: Vec<usize> = calls
            .iter()
            .filter(|c| c.certain && c.tok == cs.tok)
            .map(|c| c.callee)
            .collect();
        if !targets
            .iter()
            .all(|&g| graph.fns.get(g).is_some_and(|nd| nd.returns_result))
        {
            continue;
        }
        // Prefix before the callee must be a plain path/receiver (no
        // operators: `x + fallible()` is not a discard of the call).
        let plain_prefix = tokens
            .get(range.start..cs.tok)
            .unwrap_or(&[])
            .iter()
            .filter(|t| !is_comment(t))
            .all(|t| {
                matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent)
                    || matches!(t.text.as_str(), "." | "::" | "&" | "<" | ">" | "mut")
            });
        if !plain_prefix {
            continue;
        }
        // The call's `(`…`)` group: its close must be the last
        // significant token before the final `;` (or the range end).
        let mut k = cs.tok + 1;
        while tokens.get(k).is_some_and(is_comment) {
            k += 1;
        }
        if tokens.get(k).map(|t| t.text.as_str()) != Some("(") {
            continue;
        }
        let mut depth = 0i64;
        let mut close = None;
        for (j, t) in tokens.iter().enumerate().take(range.end).skip(k) {
            if is_comment(t) {
                continue;
            }
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(j);
                        break;
                    }
                }
                _ => {}
            }
        }
        let close = close?;
        let tail_ok = tokens
            .get(close + 1..range.end)
            .unwrap_or(&[])
            .iter()
            .filter(|t| !is_comment(t))
            .all(|t| t.text == ";");
        if !tail_ok {
            continue; // `?;`, `.ok();`, `.is_err()` chains, …
        }
        let name = graph.display(*targets.first()?);
        return Some((cs.tok, name));
    }
    None
}

//! Whole-workspace semantic passes over the parsed item model and graphs.
//!
//! Unlike the token-pattern lints in [`crate::lints`] (which see one file
//! at a time), every pass here sees the whole [`crate::Workspace`]: the
//! call graph, the crate-dependency edges, and the per-file item models.
//! Each pass returns plain [`Diagnostic`]s; the orchestrator in
//! [`crate::run_audit`] times each one through `udi-obs` and merges the
//! results.

pub mod concurrency;
pub mod dead_exports;
pub mod layering;
pub mod panic_reach;

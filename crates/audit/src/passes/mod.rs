//! Whole-workspace semantic passes over the parsed item model and graphs.
//!
//! Unlike the token-pattern lints in [`crate::lints`] (which see one file
//! at a time), every pass here sees the whole [`crate::Workspace`]: the
//! call graph, the crate-dependency edges, the per-file item models, and
//! (for the dataflow passes) the per-function CFGs from [`crate::cfg`].
//! Each pass returns plain [`Diagnostic`]s; the orchestrator in
//! [`crate::run_audit`] times each one through `udi-obs` and merges the
//! results.

pub mod concurrency;
pub mod dead_exports;
pub mod determinism;
pub mod error_discard;
pub mod hot_path;
pub mod layering;
pub mod lock_order;
pub mod panic_reach;

//! Concurrency lints for the parallel serving layer.
//!
//! Three findings, all scoped to lib code outside test regions:
//!
//! * **static-mut** — `static mut` is never acceptable; it is UB-prone
//!   under any concurrent access and Rust 2024 deprecates taking
//!   references to it. Error, no crate exemption.
//! * **shared-mutable-static** — a `static` whose type is interior-mutable
//!   (`Mutex`, `RwLock`, atomics, `OnceLock`, …) is ambient shared state.
//!   Only crates listed under `[concurrency] interior-mutable-allowed` in
//!   `audit.toml` (by default `udi-obs`, whose global sink registry is the
//!   sanctioned singleton) may declare them. Error elsewhere.
//! * **lock-across-crate-call** — a lock guard (`.lock()`,
//!   `.borrow_mut()`, empty-argument `.read()`/`.write()`) held across a
//!   call into *another workspace crate* is a deadlock and contention
//!   hazard: the callee may take its own locks in an order this crate
//!   cannot see. Error; restructure so the guard is dropped (or the data
//!   cloned out) before crossing the crate boundary.

use std::ops::Range;

use crate::classify::CodeKind;
use crate::graph::CallGraph;
use crate::lexer::{Token, TokenKind};
use crate::lints::{
    allow_covers, test_regions, AllowDirective, Diagnostic, LOCK_ACROSS_CRATE_CALL,
    SHARED_MUTABLE_STATIC, STATIC_MUT,
};
use crate::parser::is_comment;
use crate::Workspace;

/// Types whose presence in a static's type makes it shared-mutable.
const INTERIOR_MUTABLE_TYPES: &[&str] = &[
    "Mutex",
    "RwLock",
    "RefCell",
    "Cell",
    "UnsafeCell",
    "OnceCell",
    "OnceLock",
    "LazyCell",
    "LazyLock",
];

/// Methods whose return value is treated as a lock guard. `read`/`write`
/// only count with an empty argument list (to avoid `io::Read::read(&mut
/// buf)` false positives).
const LOCK_METHODS: &[&str] = &["lock", "borrow_mut", "read", "write"];

/// Run the pass.
pub fn run(
    ws: &Workspace,
    graph: &CallGraph,
    allowed_crates: &[String],
    directives: &mut [Vec<AllowDirective>],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // --- static-mut + shared-mutable-static: token scan per lib file. ---
    for (fi, file) in ws.files.iter().enumerate() {
        if file.class.kind != CodeKind::Lib {
            continue;
        }
        let tokens = &file.tokens;
        let regions = test_regions(tokens);
        let in_test = |i: usize| regions.iter().any(|r| r.contains(&i));
        let crate_ok = allowed_crates.iter().any(|c| c == &file.class.crate_name);
        for (i, tok) in tokens.iter().enumerate() {
            if tok.kind != TokenKind::Ident || tok.text != "static" || in_test(i) {
                continue;
            }
            let mut j = i + 1;
            while tokens.get(j).is_some_and(is_comment) {
                j += 1;
            }
            let Some(next) = tokens.get(j) else { continue };
            if next.kind == TokenKind::Ident && next.text == "mut" {
                let allowed = directives
                    .get_mut(fi)
                    .is_some_and(|ds| allow_covers(ds, STATIC_MUT, tok.line));
                if !allowed {
                    let mut d = Diagnostic::error(
                        &file.rel,
                        tok.line,
                        tok.col,
                        STATIC_MUT,
                        "`static mut` is unsound under concurrent access".to_owned(),
                    );
                    d.notes
                        .push("use an atomic, a `Mutex`, or a `OnceLock` instead".to_owned());
                    diags.push(d);
                }
                continue;
            }
            if next.kind != TokenKind::Ident || crate_ok {
                continue;
            }
            // Scan the declared type (between `:` and `=`/`;` at depth 0)
            // for interior-mutable type names.
            let mut depth = 0i32;
            let mut seen_colon = false;
            let mut hit: Option<&Token> = None;
            for t in &tokens[j + 1..] {
                match (t.kind, t.text.as_str()) {
                    (TokenKind::Punct, "<" | "(" | "[") => depth += 1,
                    (TokenKind::Punct, ">" | ")" | "]") => depth -= 1,
                    (TokenKind::Punct, ":") if depth == 0 => seen_colon = true,
                    (TokenKind::Punct, "=" | ";") if depth <= 0 => break,
                    (TokenKind::Ident, name)
                        if seen_colon
                            && (INTERIOR_MUTABLE_TYPES.contains(&name)
                                || name.starts_with("Atomic")) =>
                    {
                        hit = Some(t);
                        break;
                    }
                    _ => {}
                }
            }
            let Some(ty) = hit else { continue };
            let allowed = directives
                .get_mut(fi)
                .is_some_and(|ds| allow_covers(ds, SHARED_MUTABLE_STATIC, tok.line));
            if allowed {
                continue;
            }
            let mut d = Diagnostic::error(
                &file.rel,
                tok.line,
                tok.col,
                SHARED_MUTABLE_STATIC,
                format!(
                    "interior-mutable static (`{}`) outside the sanctioned crates",
                    ty.text
                ),
            );
            d.notes.push(format!(
                "only {:?} may hold ambient shared state; pass state explicitly or move it there",
                allowed_crates
            ));
            diags.push(d);
        }
    }

    // --- lock-across-crate-call: per fn, via the call graph. ---
    for (f, node) in graph.fns.iter().enumerate() {
        if node.in_test || node.kind != CodeKind::Lib {
            continue;
        }
        let Some(body) = node.body.clone() else {
            continue;
        };
        let Some(file) = ws.files.get(node.file) else {
            continue;
        };
        let tokens = &file.tokens;
        for acq in lock_acquisitions(tokens, body.clone()) {
            let Some(live) = guard_liveness(tokens, body.clone(), &acq) else {
                continue;
            };
            let crossing = graph
                .calls
                .get(f)
                .map(Vec::as_slice)
                .unwrap_or(&[])
                .iter()
                .find(|cs| {
                    // Only structurally-resolved calls: the method-name
                    // over-approximation would flag `guard.len()` as a call
                    // into whatever crate happens to define a `len`.
                    cs.certain
                        && live.contains(&cs.tok)
                        && graph
                            .fns
                            .get(cs.callee)
                            .is_some_and(|callee| callee.crate_name != node.crate_name)
                });
            let Some(cs) = crossing else { continue };
            let lock_tok = &tokens[acq.method];
            let allowed = directives
                .get_mut(node.file)
                .is_some_and(|ds| allow_covers(ds, LOCK_ACROSS_CRATE_CALL, lock_tok.line));
            if allowed {
                continue;
            }
            let call_tok = &tokens[cs.tok];
            let mut d = Diagnostic::error(
                &file.rel,
                lock_tok.line,
                lock_tok.col,
                LOCK_ACROSS_CRATE_CALL,
                format!(
                    "lock guard from `.{}()` held across a call into another crate",
                    lock_tok.text
                ),
            );
            d.notes.push(format!(
                "calls `{}` at line {} while the guard is live",
                graph.display(cs.callee),
                call_tok.line
            ));
            d.notes.push(
                "drop the guard (or clone the needed data out) before crossing the crate boundary"
                    .to_owned(),
            );
            diags.push(d);
        }
    }
    diags
}

/// One detected lock acquisition.
struct Acquisition {
    /// Token index of the method name (`lock`, `read`, …).
    method: usize,
    /// Name the guard is `let`-bound to, if any. `None` ⇒ temporary.
    bound: Option<String>,
}

/// Find `.lock()` / `.borrow_mut()` / empty-arg `.read()` / `.write()`
/// inside `body`.
fn lock_acquisitions(tokens: &[Token], body: Range<usize>) -> Vec<Acquisition> {
    let mut out = Vec::new();
    let sig_next = |i: usize| {
        tokens[i + 1..]
            .iter()
            .enumerate()
            .find(|(_, t)| !is_comment(t))
            .map(|(k, t)| (i + 1 + k, t))
    };
    for i in body.clone() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident || !LOCK_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        // Must be a method call: preceded by `.`, followed by `()`.
        let prev = tokens[body.start..i].iter().rev().find(|t| !is_comment(t));
        if !prev.is_some_and(|p| p.kind == TokenKind::Punct && p.text == ".") {
            continue;
        }
        let Some((oi, open)) = sig_next(i) else {
            continue;
        };
        if open.kind != TokenKind::Punct || open.text != "(" {
            continue;
        }
        let Some((_, close)) = sig_next(oi) else {
            continue;
        };
        if close.kind != TokenKind::Punct || close.text != ")" {
            continue; // non-empty args: not a guard-returning call we track
        }
        // Walk back for a `let` on the same statement to find the binding.
        let mut bound = None;
        let mut stmt = i;
        for k in (body.start..i).rev() {
            let b = &tokens[k];
            if b.kind == TokenKind::Punct && matches!(b.text.as_str(), ";" | "{" | "}") {
                break;
            }
            if b.kind == TokenKind::Ident && b.text == "let" {
                stmt = k;
                let mut n = k + 1;
                while tokens.get(n).is_some_and(|t| {
                    is_comment(t) || (t.kind == TokenKind::Ident && t.text == "mut")
                }) {
                    n += 1;
                }
                if let Some(name) = tokens.get(n) {
                    if name.kind == TokenKind::Ident && name.text != "_" {
                        bound = Some(name.text.clone());
                    }
                }
                break;
            }
        }
        // `let _ = …` drops the guard immediately: not an acquisition.
        if stmt != i && bound.is_none() {
            continue;
        }
        out.push(Acquisition { method: i, bound });
    }
    out
}

/// Token range over which the guard from `acq` is live.
///
/// Let-bound guards live to the end of the enclosing block, or to an
/// explicit `drop(name)`. Temporaries live to the end of the statement
/// (the next `;` at the statement's depth).
fn guard_liveness(tokens: &[Token], body: Range<usize>, acq: &Acquisition) -> Option<Range<usize>> {
    let start = acq.method;
    let mut depth = 0i32;
    match &acq.bound {
        Some(name) => {
            for i in start..body.end {
                match (tokens[i].kind, tokens[i].text.as_str()) {
                    (TokenKind::Punct, "{") => depth += 1,
                    (TokenKind::Punct, "}") => {
                        depth -= 1;
                        if depth < 0 {
                            return Some(start..i); // enclosing block ends
                        }
                    }
                    (TokenKind::Ident, "drop") if depth >= 0 => {
                        let named = tokens
                            .get(i + 1)
                            .is_some_and(|t| t.text == "(")
                            .then(|| tokens.get(i + 2))
                            .flatten()
                            .is_some_and(|t| &t.text == name);
                        if named {
                            return Some(start..i);
                        }
                    }
                    _ => {}
                }
            }
            Some(start..body.end)
        }
        None => {
            for (i, tok) in tokens.iter().enumerate().take(body.end).skip(start) {
                match (tok.kind, tok.text.as_str()) {
                    (TokenKind::Punct, "{" | "(" | "[") => depth += 1,
                    (TokenKind::Punct, "}" | ")" | "]") => {
                        depth -= 1;
                        if depth < 0 {
                            return Some(start..i);
                        }
                    }
                    (TokenKind::Punct, ";") if depth <= 0 => return Some(start..i),
                    _ => {}
                }
            }
            Some(start..body.end)
        }
    }
}

//! Concurrency lints for the parallel serving layer.
//!
//! Two findings, both scoped to lib code outside test regions:
//!
//! * **static-mut** — `static mut` is never acceptable; it is UB-prone
//!   under any concurrent access and Rust 2024 deprecates taking
//!   references to it. Error, no crate exemption.
//! * **shared-mutable-static** — a `static` whose type is interior-mutable
//!   (`Mutex`, `RwLock`, atomics, `OnceLock`, …) is ambient shared state.
//!   Only crates listed under `[concurrency] interior-mutable-allowed` in
//!   `audit.toml` (by default `udi-obs`, whose global sink registry is the
//!   sanctioned singleton) may declare them. Error elsewhere.
//!
//! Guard-discipline checking lives in [`crate::passes::lock_order`]: an
//! acquisition-order cycle analysis over per-function CFGs, not a
//! guard-held-across-call heuristic.

use crate::classify::CodeKind;
use crate::lexer::{Token, TokenKind};
use crate::lints::{
    allow_covers, test_regions, AllowDirective, Diagnostic, SHARED_MUTABLE_STATIC, STATIC_MUT,
};
use crate::parser::is_comment;
use crate::Workspace;

/// Types whose presence in a static's type makes it shared-mutable.
const INTERIOR_MUTABLE_TYPES: &[&str] = &[
    "Mutex",
    "RwLock",
    "RefCell",
    "Cell",
    "UnsafeCell",
    "OnceCell",
    "OnceLock",
    "LazyCell",
    "LazyLock",
];

/// Run the pass.
pub fn run(
    ws: &Workspace,
    allowed_crates: &[String],
    directives: &mut [Vec<AllowDirective>],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // static-mut + shared-mutable-static: token scan per lib file.
    for (fi, file) in ws.files.iter().enumerate() {
        if file.class.kind != CodeKind::Lib {
            continue;
        }
        let tokens = &file.tokens;
        let regions = test_regions(tokens);
        let in_test = |i: usize| regions.iter().any(|r| r.contains(&i));
        let crate_ok = allowed_crates.iter().any(|c| c == &file.class.crate_name);
        for (i, tok) in tokens.iter().enumerate() {
            if tok.kind != TokenKind::Ident || tok.text != "static" || in_test(i) {
                continue;
            }
            let mut j = i + 1;
            while tokens.get(j).is_some_and(is_comment) {
                j += 1;
            }
            let Some(next) = tokens.get(j) else { continue };
            if next.kind == TokenKind::Ident && next.text == "mut" {
                let allowed = directives
                    .get_mut(fi)
                    .is_some_and(|ds| allow_covers(ds, STATIC_MUT, tok.line));
                if !allowed {
                    let mut d = Diagnostic::error(
                        &file.rel,
                        tok.line,
                        tok.col,
                        STATIC_MUT,
                        "`static mut` is unsound under concurrent access".to_owned(),
                    );
                    d.notes
                        .push("use an atomic, a `Mutex`, or a `OnceLock` instead".to_owned());
                    diags.push(d);
                }
                continue;
            }
            if next.kind != TokenKind::Ident || crate_ok {
                continue;
            }
            // Scan the declared type (between `:` and `=`/`;` at depth 0)
            // for interior-mutable type names.
            let mut depth = 0i32;
            let mut seen_colon = false;
            let mut hit: Option<&Token> = None;
            for t in tokens.get(j + 1..).unwrap_or(&[]) {
                match (t.kind, t.text.as_str()) {
                    (TokenKind::Punct, "<" | "(" | "[") => depth += 1,
                    (TokenKind::Punct, ">" | ")" | "]") => depth -= 1,
                    (TokenKind::Punct, ":") if depth == 0 => seen_colon = true,
                    (TokenKind::Punct, "=" | ";") if depth <= 0 => break,
                    (TokenKind::Ident, name)
                        if seen_colon
                            && (INTERIOR_MUTABLE_TYPES.contains(&name)
                                || name.starts_with("Atomic")) =>
                    {
                        hit = Some(t);
                        break;
                    }
                    _ => {}
                }
            }
            let Some(ty) = hit else { continue };
            let allowed = directives
                .get_mut(fi)
                .is_some_and(|ds| allow_covers(ds, SHARED_MUTABLE_STATIC, tok.line));
            if allowed {
                continue;
            }
            let mut d = Diagnostic::error(
                &file.rel,
                tok.line,
                tok.col,
                SHARED_MUTABLE_STATIC,
                format!(
                    "interior-mutable static (`{}`) outside the sanctioned crates",
                    ty.text
                ),
            );
            d.notes.push(format!(
                "only {:?} may hold ambient shared state; pass state explicitly or move it there",
                allowed_crates
            ));
            diags.push(d);
        }
    }
    diags
}

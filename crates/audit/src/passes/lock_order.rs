//! Lock-order deadlock detection over per-function CFGs and the certain
//! call graph.
//!
//! Not a guard-across-call heuristic: only actual acquisition-order
//! inversions are reported, via a three-stage analysis:
//!
//! 1. **Lock identities.** Every `.lock()` / `.borrow_mut()` /
//!    empty-argument `.read()` / `.write()` is resolved to a lock
//!    identity from its receiver: `self.field` becomes
//!    `crate::Type.field`, a static or `udi_x::PATH` receiver becomes a
//!    crate-qualified path, and a plain local/param receiver gets a
//!    function-scoped identity (which participates intra-procedurally
//!    only — a local name says nothing about which mutex another
//!    function means).
//! 2. **CFG-accurate held ranges.** A `let`-bound guard generates a
//!    "held" fact at its statement block, killed at `drop(name)` and at
//!    the end of its lexical scope; [`crate::dataflow::forward_may`]
//!    propagates facts along real control flow, so a guard taken in one
//!    `if` arm is never "held" in the sibling arm. Temporaries are held
//!    to the end of their statement.
//! 3. **Order edges.** Acquiring M while holding L adds edge `L → M`;
//!    calling (certainly) a function whose transitive-acquire set
//!    contains M does the same, with the full call chain kept for the
//!    report.
//! 4. **Cycles.** Any strongly-connected component of the order graph
//!    (including a self-loop — re-acquiring a held lock) is a deadlock
//!    risk, reported once with per-edge evidence.
//!
//! Ratchet key: the cycle's sorted lock set joined with `<->`.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::cfg::{Cfg, StmtKind};
use crate::classify::CodeKind;
use crate::config::Config;
use crate::dataflow::{forward_may, BitSet};
use crate::graph::scc::{reconstruct_cycle, sccs};
use crate::graph::{crate_of_alias, CallGraph, FnNode};
use crate::lexer::{Token, TokenKind};
use crate::lints::{allow_covers, AllowDirective, Diagnostic, LOCK_ORDER_CYCLE};
use crate::parser::is_comment;
use crate::ratchet::Ratchet;
use crate::Workspace;

/// Methods whose return value is treated as a lock guard. `read`/`write`
/// only count with an empty argument list (to avoid `io::Read::read(&mut
/// buf)` false positives).
pub(crate) const LOCK_METHODS: &[&str] = &["lock", "borrow_mut", "read", "write"];

/// One lock acquisition inside a function body.
struct Acq {
    /// Interned lock id.
    lock: usize,
    /// Token index of the method name.
    tok: usize,
    line: u32,
    col: u32,
    /// CFG block of the containing statement.
    block: usize,
    /// Guard binding (`let g = …`); `None` for temporaries.
    bound: Option<String>,
    /// `let _ = …` — guard dropped on the spot.
    discard: bool,
}

/// How a function comes to acquire a lock (for chain rendering).
#[derive(Clone, Copy)]
enum Prov {
    /// Acquired directly at this site.
    Direct { line: u32, col: u32 },
    /// Acquired by calling `callee`.
    Via { callee: usize },
}

/// One acquisition-order edge with its evidence.
struct Edge {
    fnid: usize,
    line: u32,
    col: u32,
    /// Interprocedural: the (certain) callee whose transitive set holds
    /// the acquired lock.
    via: Option<usize>,
}

/// Run the pass. `cfgs` is indexed like `graph.fns`.
pub fn run(
    ws: &Workspace,
    cfg: &Config,
    graph: &CallGraph,
    cfgs: &[Option<Cfg>],
    ratchet: &Ratchet,
    ratchet_path: Option<&str>,
    directives: &mut [Vec<AllowDirective>],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let n = graph.fns.len();

    // Interned lock identities. `global[l]` — whether identity `l` is
    // meaningful across functions.
    let mut lock_ids: Vec<String> = Vec::new();
    let mut lock_global: Vec<bool> = Vec::new();
    let mut intern: BTreeMap<String, usize> = BTreeMap::new();
    let intern_lock = |id: String,
                       global: bool,
                       lock_ids: &mut Vec<String>,
                       lock_global: &mut Vec<bool>,
                       intern: &mut BTreeMap<String, usize>| {
        *intern.entry(id.clone()).or_insert_with(|| {
            lock_ids.push(id);
            lock_global.push(global);
            lock_ids.len() - 1
        })
    };

    // Pass A: per-fn acquisitions.
    let mut acqs: Vec<Vec<Acq>> = (0..n).map(|_| Vec::new()).collect();
    for (f, node) in graph.fns.iter().enumerate() {
        if node.in_test
            || node.kind != CodeKind::Lib
            || cfg.lock_order_exempt.iter().any(|c| c == &node.crate_name)
        {
            continue;
        }
        let (Some(body), Some(file), Some(fcfg)) = (
            node.body.clone(),
            ws.files.get(node.file),
            cfgs.get(f).and_then(|c| c.as_ref()),
        ) else {
            continue;
        };
        for i in body.clone() {
            let Some(t) = file.tokens.get(i) else {
                continue;
            };
            if t.kind != TokenKind::Ident || !LOCK_METHODS.contains(&t.text.as_str()) {
                continue;
            }
            if !is_guard_call(&file.tokens, body.clone(), i) {
                continue;
            }
            let Some((id, global)) = receiver_identity(&file.tokens, body.start, i, node) else {
                continue;
            };
            let lock = intern_lock(id, global, &mut lock_ids, &mut lock_global, &mut intern);
            let block = fcfg.block_of_token(i).unwrap_or(crate::cfg::ENTRY);
            let (bound, discard) = match fcfg.blocks.get(block).and_then(|b| b.stmt.as_ref()) {
                Some(s) => match &s.kind {
                    StmtKind::Let { name, discard } => (name.clone(), *discard),
                    _ => (None, false),
                },
                None => (None, false),
            };
            if let Some(list) = acqs.get_mut(f) {
                list.push(Acq {
                    lock,
                    tok: i,
                    line: t.line,
                    col: t.col,
                    block,
                    bound,
                    discard,
                });
            }
        }
    }

    // Pass B: transitive global acquisitions over certain edges.
    let mut ta: Vec<BTreeMap<usize, Prov>> = vec![BTreeMap::new(); n];
    for (f, list) in acqs.iter().enumerate() {
        for a in list {
            if lock_global.get(a.lock).copied().unwrap_or(false) {
                if let Some(map) = ta.get_mut(f) {
                    map.entry(a.lock).or_insert(Prov::Direct {
                        line: a.line,
                        col: a.col,
                    });
                }
            }
        }
    }
    loop {
        let mut updates: Vec<(usize, usize, Prov)> = Vec::new();
        for f in 0..n {
            if graph.fns.get(f).is_none_or(|nd| nd.in_test) {
                continue;
            }
            for cs in graph.calls.get(f).map(Vec::as_slice).unwrap_or(&[]) {
                if !cs.certain || graph.fns.get(cs.callee).is_none_or(|c| c.in_test) {
                    continue;
                }
                for &lock in ta.get(cs.callee).into_iter().flat_map(BTreeMap::keys) {
                    if !ta.get(f).is_some_and(|m| m.contains_key(&lock)) {
                        updates.push((f, lock, Prov::Via { callee: cs.callee }));
                    }
                }
            }
        }
        if updates.is_empty() {
            break;
        }
        let mut changed = false;
        for (f, lock, prov) in updates {
            let Some(map) = ta.get_mut(f) else { continue };
            if let std::collections::btree_map::Entry::Vacant(e) = map.entry(lock) {
                e.insert(prov);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Pass C: order edges, evidence kept for the first sighting.
    let mut edges: BTreeMap<(usize, usize), Edge> = BTreeMap::new();
    for (f, node) in graph.fns.iter().enumerate() {
        if acqs.get(f).is_none_or(Vec::is_empty) {
            continue;
        }
        if node.in_test
            || node.kind != CodeKind::Lib
            || cfg.lock_order_exempt.iter().any(|c| c == &node.crate_name)
        {
            continue;
        }
        let (Some(body), Some(file), Some(fcfg)) = (
            node.body.clone(),
            ws.files.get(node.file),
            cfgs.get(f).and_then(|c| c.as_ref()),
        ) else {
            continue;
        };
        // Facts: let-bound, non-discard acquisitions.
        let facts: Vec<usize> = acqs
            .get(f)
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .enumerate()
            .filter(|(_, a)| a.bound.is_some() && !a.discard)
            .map(|(k, _)| k)
            .collect();
        let nb = fcfg.blocks.len();
        let mut gen = vec![BitSet::new(facts.len()); nb];
        let mut kill = vec![BitSet::new(facts.len()); nb];
        for (bit, &k) in facts.iter().enumerate() {
            let Some(a) = acqs.get(f).and_then(|l| l.get(k)) else {
                continue;
            };
            if let Some(gs) = gen.get_mut(a.block) {
                gs.insert(bit);
            }
            let scope = scope_end(&file.tokens, body.clone(), a.tok);
            for (b, blk) in fcfg.blocks.iter().enumerate() {
                let Some(s) = &blk.stmt else { continue };
                let dead = s.span.start >= scope
                    || a.bound
                        .as_ref()
                        .is_some_and(|name| drops_name(&file.tokens, s.span.clone(), name));
                if dead {
                    if let Some(ks) = kill.get_mut(b) {
                        ks.insert(bit);
                    }
                }
            }
        }
        let flow = forward_may(fcfg, facts.len(), &gen, &kill);

        // Events per block, in token order.
        enum Ev {
            Acq(usize),
            Call(usize, usize, u32, u32), // (callee, tok, line, col)
        }
        let mut events: BTreeMap<usize, Vec<(usize, Ev)>> = BTreeMap::new();
        for (k, a) in acqs
            .get(f)
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .enumerate()
        {
            events.entry(a.block).or_default().push((a.tok, Ev::Acq(k)));
        }
        for cs in graph.calls.get(f).map(Vec::as_slice).unwrap_or(&[]) {
            if !cs.certain || graph.fns.get(cs.callee).is_none_or(|c| c.in_test) {
                continue;
            }
            if ta.get(cs.callee).is_none_or(BTreeMap::is_empty) {
                continue;
            }
            let Some(b) = fcfg.block_of_token(cs.tok) else {
                continue;
            };
            let (line, col) = file
                .tokens
                .get(cs.tok)
                .map(|t| (t.line, t.col))
                .unwrap_or((0, 0));
            events
                .entry(b)
                .or_default()
                .push((cs.tok, Ev::Call(cs.callee, cs.tok, line, col)));
        }

        for (b, evs) in events.iter_mut() {
            evs.sort_by_key(|(tok, _)| *tok);
            // Held at block entry, from the dataflow facts.
            let mut held: BTreeSet<usize> = flow
                .input
                .get(*b)
                .map(|s| {
                    s.iter()
                        .filter_map(|bit| {
                            let k = facts.get(bit).copied()?;
                            Some(acqs.get(f)?.get(k)?.lock)
                        })
                        .collect()
                })
                .unwrap_or_default();
            for (_, ev) in evs.iter() {
                match ev {
                    Ev::Acq(k) => {
                        let Some(a) = acqs.get(f).and_then(|l| l.get(*k)) else {
                            continue;
                        };
                        for &l in held.iter() {
                            edges.entry((l, a.lock)).or_insert(Edge {
                                fnid: f,
                                line: a.line,
                                col: a.col,
                                via: None,
                            });
                        }
                        if !a.discard {
                            held.insert(a.lock);
                        }
                    }
                    Ev::Call(callee, call_tok, line, col) => {
                        // The callee's own acquisition is not "while
                        // holding" its own lock: skip calls whose token
                        // coincides with an acquisition (`self.lock()`).
                        if acqs
                            .get(f)
                            .is_some_and(|l| l.iter().any(|a| a.tok == *call_tok))
                        {
                            continue;
                        }
                        for &l in held.iter() {
                            for &m in ta.get(*callee).into_iter().flat_map(BTreeMap::keys) {
                                edges.entry((l, m)).or_insert(Edge {
                                    fnid: f,
                                    line: *line,
                                    col: *col,
                                    via: Some(*callee),
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    // Pass D: cycles = SCCs of the order graph (plus self-loops).
    let nlocks = lock_ids.len();
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nlocks];
    for &(l, m) in edges.keys() {
        if let Some(out) = adj.get_mut(l) {
            out.insert(m);
        }
    }
    let comps = sccs(nlocks, &adj);
    let mut found_keys: BTreeSet<String> = BTreeSet::new();
    for comp in comps {
        let is_cycle = comp.len() > 1
            || comp
                .iter()
                .any(|&l| adj.get(l).is_some_and(|out| out.contains(&l)));
        if !is_cycle {
            continue;
        }
        let Some(cycle) = reconstruct_cycle(&comp, &adj) else {
            continue;
        };
        let mut names: Vec<&str> = comp
            .iter()
            .map(|&l| lock_ids.get(l).map(String::as_str).unwrap_or("?"))
            .collect();
        names.sort_unstable();
        let key = names.join("<->");
        found_keys.insert(key.clone());

        let path_text = cycle
            .iter()
            .map(|&l| lock_ids.get(l).map(String::as_str).unwrap_or("?"))
            .collect::<Vec<_>>()
            .join(" → ");
        let mut notes = Vec::new();
        let mut anchor: Option<(&str, u32, u32, usize)> = None;
        let lock_name = |l: usize| lock_ids.get(l).map(String::as_str).unwrap_or("?");
        for w in cycle.windows(2) {
            let &[from, to] = w else { continue };
            let Some(e) = edges.get(&(from, to)) else {
                continue;
            };
            let rel = graph
                .fns
                .get(e.fnid)
                .and_then(|nd| ws.files.get(nd.file))
                .map(|fl| fl.rel.as_str())
                .unwrap_or("?");
            if anchor.is_none() {
                anchor = Some((rel, e.line, e.col, e.fnid));
            }
            match e.via {
                None => notes.push(format!(
                    "`{}` acquires `{}` at {rel}:{}:{} while holding `{}`",
                    graph.display(e.fnid),
                    lock_name(to),
                    e.line,
                    e.col,
                    lock_name(from),
                )),
                Some(callee) => {
                    let (chain, site) = render_chain(graph, &ta, callee, to);
                    let chain_text = std::iter::once(graph.display(e.fnid))
                        .chain(chain.iter().map(|&g| graph.display(g)))
                        .collect::<Vec<_>>()
                        .join(" → ");
                    notes.push(format!(
                        "while holding `{}`, {rel}:{} calls into `{}` which acquires `{}`{}",
                        lock_name(from),
                        e.line,
                        graph.display(callee),
                        lock_name(to),
                        site.map(|(l, c)| format!(" (site {l}:{c})"))
                            .unwrap_or_default(),
                    ));
                    notes.push(format!("call chain: {chain_text}"));
                }
            }
        }
        let Some((rel, line, col, fnid)) = anchor else {
            continue;
        };
        let file_idx = graph.fns.get(fnid).map(|nd| nd.file).unwrap_or(usize::MAX);
        let allowed = directives
            .get_mut(file_idx)
            .is_some_and(|ds| allow_covers(ds, LOCK_ORDER_CYCLE, line));
        if allowed {
            continue;
        }
        let mut d = Diagnostic::error(
            rel,
            line,
            col,
            LOCK_ORDER_CYCLE,
            format!("lock-order cycle: {path_text}"),
        );
        d.notes = notes;
        d.notes.push(
            "pick one global acquisition order for these locks (or narrow a guard's scope)"
                .to_owned(),
        );
        if ratchet.line_of(LOCK_ORDER_CYCLE, &key).is_some() {
            d.severity = crate::lints::Severity::Warning;
            d.message.push_str(" (ratcheted)");
        }
        diags.push(d);
    }

    // Stale ratchet entries for this lint.
    if let Some(rp) = ratchet_path {
        for (key, line) in ratchet.entries_for(LOCK_ORDER_CYCLE) {
            if !found_keys.contains(key) {
                let mut d = Diagnostic::error(
                    rp,
                    line,
                    1,
                    LOCK_ORDER_CYCLE,
                    format!("stale ratchet entry: lock-order cycle `{key}` no longer exists"),
                );
                d.notes
                    .push("delete the line — the ratchet only shrinks".to_owned());
                diags.push(d);
            }
        }
    }
    diags
}

/// `.method()` with an empty argument list, preceded by `.`.
pub(crate) fn is_guard_call(tokens: &[Token], body: Range<usize>, i: usize) -> bool {
    let prev = tokens
        .get(body.start..i)
        .unwrap_or(&[])
        .iter()
        .rev()
        .find(|t| !is_comment(t));
    if !prev.is_some_and(|p| p.kind == TokenKind::Punct && p.text == ".") {
        return false;
    }
    let mut it = tokens
        .get(i + 1..)
        .unwrap_or(&[])
        .iter()
        .filter(|t| !is_comment(t));
    let open = it.next();
    let close = it.next();
    open.is_some_and(|t| t.text == "(") && close.is_some_and(|t| t.text == ")")
}

/// Resolve the receiver chain of the lock call at token `i` to a lock
/// identity. Returns `(identity, global)`; `None` for complex receivers
/// (`foo().lock()`, `(x).lock()`, …).
fn receiver_identity(
    tokens: &[Token],
    body_start: usize,
    i: usize,
    node: &FnNode,
) -> Option<(String, bool)> {
    // Walk back over `ident (sep ident)*` where sep is `.` or `::`.
    let sig_prev = |from: usize| -> Option<usize> {
        (body_start..from)
            .rev()
            .find(|&k| tokens.get(k).is_some_and(|t| !is_comment(t)))
    };
    let mut segs: Vec<(String, String)> = Vec::new(); // (ident, sep before it or "")
    let mut k = sig_prev(i)?; // the `.` before the method
    loop {
        let id = sig_prev(k)?;
        let t = tokens.get(id)?;
        if !matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent) {
            return None; // `)`, `]`, literal… — complex receiver
        }
        let sep = tokens.get(k)?.text.clone();
        segs.push((t.text.clone(), sep));
        match sig_prev(id) {
            Some(p)
                if tokens
                    .get(p)
                    .is_some_and(|t| matches!(t.text.as_str(), "." | "::")) =>
            {
                k = p
            }
            _ => {
                segs.last_mut()?.1 = String::new();
                break;
            }
        }
    }
    segs.reverse();
    let first = segs.first()?.0.clone();
    let tail = |segs: &[(String, String)], mut id: String| {
        for (seg, sep) in segs.get(1..).unwrap_or(&[]) {
            id.push_str(if sep == "::" { "::" } else { "." });
            id.push_str(seg);
        }
        id
    };
    if first == "self" {
        let ty = node.self_ty.as_deref()?;
        let id = tail(&segs, format!("{}::{}", node.crate_name, ty));
        Some((id, true))
    } else if let Some(c) = crate_of_alias(&first, &node.crate_name) {
        Some((tail(&segs, c), true))
    } else if first.chars().next().is_some_and(char::is_uppercase) {
        let id = tail(&segs, format!("{}::{}", node.crate_name, first));
        Some((id, true))
    } else {
        // Local/param receiver: function-scoped, intra-procedural only.
        let id = tail(&segs, format!("{}::{}", node.id_path, first));
        Some((id, false))
    }
}

/// Token index where the lexical block enclosing `from` closes.
pub(crate) fn scope_end(tokens: &[Token], body: Range<usize>, from: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in tokens
        .iter()
        .enumerate()
        .take(body.end.min(tokens.len()))
        .skip(from)
    {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    body.end
}

/// Whether a statement span contains `drop(name)`.
pub(crate) fn drops_name(tokens: &[Token], span: Range<usize>, name: &str) -> bool {
    let sig: Vec<&Token> = tokens
        .get(span.start..span.end.min(tokens.len()))
        .unwrap_or(&[])
        .iter()
        .filter(|t| !is_comment(t))
        .collect();
    sig.windows(4).any(|w| {
        matches!(w, [a, b, c, d]
            if a.text == "drop" && b.text == "(" && c.text == *name && d.text == ")")
    })
}

/// Shortest provenance chain from `f` to the function that directly
/// acquires `lock`; returns the intermediate fns (starting at `f`) and
/// the acquisition site.
fn render_chain(
    graph: &CallGraph,
    ta: &[BTreeMap<usize, Prov>],
    f: usize,
    lock: usize,
) -> (Vec<usize>, Option<(u32, u32)>) {
    let mut chain = vec![f];
    let mut cur = f;
    for _ in 0..graph.fns.len() {
        match ta.get(cur).and_then(|m| m.get(&lock)) {
            Some(Prov::Direct { line, col }) => return (chain, Some((*line, *col))),
            Some(Prov::Via { callee }) => {
                cur = *callee;
                chain.push(cur);
            }
            None => break,
        }
    }
    (chain, None)
}

//! Lock-order deadlock detection over per-function CFGs and the certain
//! call graph.
//!
//! Replaces the v2 `lock-across-crate-call` heuristic (which flagged any
//! guard held across a crate boundary, path-insensitively) with an
//! actual acquisition-order analysis:
//!
//! 1. **Lock identities.** Every `.lock()` / `.borrow_mut()` /
//!    empty-argument `.read()` / `.write()` is resolved to a lock
//!    identity from its receiver: `self.field` becomes
//!    `crate::Type.field`, a static or `udi_x::PATH` receiver becomes a
//!    crate-qualified path, and a plain local/param receiver gets a
//!    function-scoped identity (which participates intra-procedurally
//!    only — a local name says nothing about which mutex another
//!    function means).
//! 2. **CFG-accurate held ranges.** A `let`-bound guard generates a
//!    "held" fact at its statement block, killed at `drop(name)` and at
//!    the end of its lexical scope; [`crate::dataflow::forward_may`]
//!    propagates facts along real control flow, so a guard taken in one
//!    `if` arm is never "held" in the sibling arm. Temporaries are held
//!    to the end of their statement.
//! 3. **Order edges.** Acquiring M while holding L adds edge `L → M`;
//!    calling (certainly) a function whose transitive-acquire set
//!    contains M does the same, with the full call chain kept for the
//!    report.
//! 4. **Cycles.** Any strongly-connected component of the order graph
//!    (including a self-loop — re-acquiring a held lock) is a deadlock
//!    risk, reported once with per-edge evidence.
//!
//! Ratchet key: the cycle's sorted lock set joined with `<->`.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::ops::Range;

use crate::cfg::{Cfg, StmtKind};
use crate::classify::CodeKind;
use crate::config::Config;
use crate::dataflow::{forward_may, BitSet};
use crate::graph::{crate_of_alias, CallGraph, FnNode};
use crate::lexer::{Token, TokenKind};
use crate::lints::{allow_covers, AllowDirective, Diagnostic, LOCK_ORDER_CYCLE};
use crate::parser::is_comment;
use crate::ratchet::Ratchet;
use crate::Workspace;

/// Methods whose return value is treated as a lock guard. `read`/`write`
/// only count with an empty argument list (to avoid `io::Read::read(&mut
/// buf)` false positives).
const LOCK_METHODS: &[&str] = &["lock", "borrow_mut", "read", "write"];

/// One lock acquisition inside a function body.
struct Acq {
    /// Interned lock id.
    lock: usize,
    /// Token index of the method name.
    tok: usize,
    line: u32,
    col: u32,
    /// CFG block of the containing statement.
    block: usize,
    /// Guard binding (`let g = …`); `None` for temporaries.
    bound: Option<String>,
    /// `let _ = …` — guard dropped on the spot.
    discard: bool,
}

/// How a function comes to acquire a lock (for chain rendering).
#[derive(Clone, Copy)]
enum Prov {
    /// Acquired directly at this site.
    Direct { line: u32, col: u32 },
    /// Acquired by calling `callee`.
    Via { callee: usize },
}

/// One acquisition-order edge with its evidence.
struct Edge {
    fnid: usize,
    line: u32,
    col: u32,
    /// Interprocedural: the (certain) callee whose transitive set holds
    /// the acquired lock.
    via: Option<usize>,
}

/// Run the pass. `cfgs` is indexed like `graph.fns`.
pub fn run(
    ws: &Workspace,
    cfg: &Config,
    graph: &CallGraph,
    cfgs: &[Option<Cfg>],
    ratchet: &Ratchet,
    ratchet_path: Option<&str>,
    directives: &mut [Vec<AllowDirective>],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let n = graph.fns.len();

    // Interned lock identities. `global[l]` — whether identity `l` is
    // meaningful across functions.
    let mut lock_ids: Vec<String> = Vec::new();
    let mut lock_global: Vec<bool> = Vec::new();
    let mut intern: BTreeMap<String, usize> = BTreeMap::new();
    let intern_lock = |id: String,
                       global: bool,
                       lock_ids: &mut Vec<String>,
                       lock_global: &mut Vec<bool>,
                       intern: &mut BTreeMap<String, usize>| {
        *intern.entry(id.clone()).or_insert_with(|| {
            lock_ids.push(id);
            lock_global.push(global);
            lock_ids.len() - 1
        })
    };

    // Pass A: per-fn acquisitions.
    let mut acqs: Vec<Vec<Acq>> = (0..n).map(|_| Vec::new()).collect();
    for (f, node) in graph.fns.iter().enumerate() {
        if node.in_test
            || node.kind != CodeKind::Lib
            || cfg.lock_order_exempt.iter().any(|c| c == &node.crate_name)
        {
            continue;
        }
        let (Some(body), Some(file), Some(fcfg)) = (
            node.body.clone(),
            ws.files.get(node.file),
            cfgs.get(f).and_then(|c| c.as_ref()),
        ) else {
            continue;
        };
        for i in body.clone() {
            let Some(t) = file.tokens.get(i) else {
                continue;
            };
            if t.kind != TokenKind::Ident || !LOCK_METHODS.contains(&t.text.as_str()) {
                continue;
            }
            if !is_guard_call(&file.tokens, body.clone(), i) {
                continue;
            }
            let Some((id, global)) = receiver_identity(&file.tokens, body.start, i, node) else {
                continue;
            };
            let lock = intern_lock(id, global, &mut lock_ids, &mut lock_global, &mut intern);
            let block = fcfg.block_of_token(i).unwrap_or(crate::cfg::ENTRY);
            let (bound, discard) = match fcfg.blocks.get(block).and_then(|b| b.stmt.as_ref()) {
                Some(s) => match &s.kind {
                    StmtKind::Let { name, discard } => (name.clone(), *discard),
                    _ => (None, false),
                },
                None => (None, false),
            };
            acqs[f].push(Acq {
                lock,
                tok: i,
                line: t.line,
                col: t.col,
                block,
                bound,
                discard,
            });
        }
    }

    // Pass B: transitive global acquisitions over certain edges.
    let mut ta: Vec<BTreeMap<usize, Prov>> = vec![BTreeMap::new(); n];
    for (f, list) in acqs.iter().enumerate() {
        for a in list {
            if lock_global[a.lock] {
                ta[f].entry(a.lock).or_insert(Prov::Direct {
                    line: a.line,
                    col: a.col,
                });
            }
        }
    }
    loop {
        let mut updates: Vec<(usize, usize, Prov)> = Vec::new();
        for f in 0..n {
            if graph.fns[f].in_test {
                continue;
            }
            for cs in graph.calls.get(f).map(Vec::as_slice).unwrap_or(&[]) {
                if !cs.certain || graph.fns.get(cs.callee).is_none_or(|c| c.in_test) {
                    continue;
                }
                for &lock in ta[cs.callee].keys() {
                    if !ta[f].contains_key(&lock) {
                        updates.push((f, lock, Prov::Via { callee: cs.callee }));
                    }
                }
            }
        }
        if updates.is_empty() {
            break;
        }
        let mut changed = false;
        for (f, lock, prov) in updates {
            if let std::collections::btree_map::Entry::Vacant(e) = ta[f].entry(lock) {
                e.insert(prov);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Pass C: order edges, evidence kept for the first sighting.
    let mut edges: BTreeMap<(usize, usize), Edge> = BTreeMap::new();
    for (f, node) in graph.fns.iter().enumerate() {
        if acqs[f].is_empty() {
            continue;
        }
        if node.in_test
            || node.kind != CodeKind::Lib
            || cfg.lock_order_exempt.iter().any(|c| c == &node.crate_name)
        {
            continue;
        }
        let (Some(body), Some(file), Some(fcfg)) = (
            node.body.clone(),
            ws.files.get(node.file),
            cfgs.get(f).and_then(|c| c.as_ref()),
        ) else {
            continue;
        };
        // Facts: let-bound, non-discard acquisitions.
        let facts: Vec<usize> = acqs[f]
            .iter()
            .enumerate()
            .filter(|(_, a)| a.bound.is_some() && !a.discard)
            .map(|(k, _)| k)
            .collect();
        let nb = fcfg.blocks.len();
        let mut gen = vec![BitSet::new(facts.len()); nb];
        let mut kill = vec![BitSet::new(facts.len()); nb];
        for (bit, &k) in facts.iter().enumerate() {
            let a = &acqs[f][k];
            gen[a.block].insert(bit);
            let scope = scope_end(&file.tokens, body.clone(), a.tok);
            for (b, blk) in fcfg.blocks.iter().enumerate() {
                let Some(s) = &blk.stmt else { continue };
                if s.span.start >= scope {
                    kill[b].insert(bit);
                } else if let Some(name) = &a.bound {
                    if drops_name(&file.tokens, s.span.clone(), name) {
                        kill[b].insert(bit);
                    }
                }
            }
        }
        let flow = forward_may(fcfg, facts.len(), &gen, &kill);

        // Events per block, in token order.
        enum Ev {
            Acq(usize),
            Call(usize, usize, u32, u32), // (callee, tok, line, col)
        }
        let mut events: BTreeMap<usize, Vec<(usize, Ev)>> = BTreeMap::new();
        for (k, a) in acqs[f].iter().enumerate() {
            events.entry(a.block).or_default().push((a.tok, Ev::Acq(k)));
        }
        for cs in graph.calls.get(f).map(Vec::as_slice).unwrap_or(&[]) {
            if !cs.certain || graph.fns.get(cs.callee).is_none_or(|c| c.in_test) {
                continue;
            }
            if ta[cs.callee].is_empty() {
                continue;
            }
            let Some(b) = fcfg.block_of_token(cs.tok) else {
                continue;
            };
            let (line, col) = file
                .tokens
                .get(cs.tok)
                .map(|t| (t.line, t.col))
                .unwrap_or((0, 0));
            events
                .entry(b)
                .or_default()
                .push((cs.tok, Ev::Call(cs.callee, cs.tok, line, col)));
        }

        for (b, evs) in events.iter_mut() {
            evs.sort_by_key(|(tok, _)| *tok);
            // Held at block entry, from the dataflow facts.
            let mut held: BTreeSet<usize> = flow
                .input
                .get(*b)
                .map(|s| s.iter().map(|bit| acqs[f][facts[bit]].lock).collect())
                .unwrap_or_default();
            for (_, ev) in evs.iter() {
                match ev {
                    Ev::Acq(k) => {
                        let a = &acqs[f][*k];
                        for &l in held.iter() {
                            edges.entry((l, a.lock)).or_insert(Edge {
                                fnid: f,
                                line: a.line,
                                col: a.col,
                                via: None,
                            });
                        }
                        if !a.discard {
                            held.insert(a.lock);
                        }
                    }
                    Ev::Call(callee, call_tok, line, col) => {
                        // The callee's own acquisition is not "while
                        // holding" its own lock: skip calls whose token
                        // coincides with an acquisition (`self.lock()`).
                        if acqs[f].iter().any(|a| a.tok == *call_tok) {
                            continue;
                        }
                        for &l in held.iter() {
                            for &m in ta[*callee].keys() {
                                edges.entry((l, m)).or_insert(Edge {
                                    fnid: f,
                                    line: *line,
                                    col: *col,
                                    via: Some(*callee),
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    // Pass D: cycles = SCCs of the order graph (plus self-loops).
    let nlocks = lock_ids.len();
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nlocks];
    for &(l, m) in edges.keys() {
        adj[l].insert(m);
    }
    let comps = sccs(nlocks, &adj);
    let mut found_keys: BTreeSet<String> = BTreeSet::new();
    for comp in comps {
        let is_cycle = comp.len() > 1 || comp.iter().any(|&l| adj[l].contains(&l));
        if !is_cycle {
            continue;
        }
        let Some(cycle) = reconstruct_cycle(&comp, &adj) else {
            continue;
        };
        let mut names: Vec<&str> = comp.iter().map(|&l| lock_ids[l].as_str()).collect();
        names.sort_unstable();
        let key = names.join("<->");
        found_keys.insert(key.clone());

        let path_text = cycle
            .iter()
            .map(|&l| lock_ids[l].as_str())
            .collect::<Vec<_>>()
            .join(" → ");
        let mut notes = Vec::new();
        let mut anchor: Option<(&str, u32, u32, usize)> = None;
        for w in cycle.windows(2) {
            let Some(e) = edges.get(&(w[0], w[1])) else {
                continue;
            };
            let rel = graph
                .fns
                .get(e.fnid)
                .and_then(|nd| ws.files.get(nd.file))
                .map(|fl| fl.rel.as_str())
                .unwrap_or("?");
            if anchor.is_none() {
                anchor = Some((rel, e.line, e.col, e.fnid));
            }
            match e.via {
                None => notes.push(format!(
                    "`{}` acquires `{}` at {rel}:{}:{} while holding `{}`",
                    graph.display(e.fnid),
                    lock_ids[w[1]],
                    e.line,
                    e.col,
                    lock_ids[w[0]],
                )),
                Some(callee) => {
                    let (chain, site) = render_chain(graph, &ta, callee, w[1]);
                    let chain_text = std::iter::once(graph.display(e.fnid))
                        .chain(chain.iter().map(|&g| graph.display(g)))
                        .collect::<Vec<_>>()
                        .join(" → ");
                    notes.push(format!(
                        "while holding `{}`, {rel}:{} calls into `{}` which acquires `{}`{}",
                        lock_ids[w[0]],
                        e.line,
                        graph.display(callee),
                        lock_ids[w[1]],
                        site.map(|(l, c)| format!(" (site {l}:{c})"))
                            .unwrap_or_default(),
                    ));
                    notes.push(format!("call chain: {chain_text}"));
                }
            }
        }
        let Some((rel, line, col, fnid)) = anchor else {
            continue;
        };
        let file_idx = graph.fns.get(fnid).map(|nd| nd.file).unwrap_or(usize::MAX);
        let allowed = directives
            .get_mut(file_idx)
            .is_some_and(|ds| allow_covers(ds, LOCK_ORDER_CYCLE, line));
        if allowed {
            continue;
        }
        let mut d = Diagnostic::error(
            rel,
            line,
            col,
            LOCK_ORDER_CYCLE,
            format!("lock-order cycle: {path_text}"),
        );
        d.notes = notes;
        d.notes.push(
            "pick one global acquisition order for these locks (or narrow a guard's scope)"
                .to_owned(),
        );
        if ratchet.line_of(LOCK_ORDER_CYCLE, &key).is_some() {
            d.severity = crate::lints::Severity::Warning;
            d.message.push_str(" (ratcheted)");
        }
        diags.push(d);
    }

    // Stale ratchet entries for this lint.
    if let Some(rp) = ratchet_path {
        for (key, line) in ratchet.entries_for(LOCK_ORDER_CYCLE) {
            if !found_keys.contains(key) {
                let mut d = Diagnostic::error(
                    rp,
                    line,
                    1,
                    LOCK_ORDER_CYCLE,
                    format!("stale ratchet entry: lock-order cycle `{key}` no longer exists"),
                );
                d.notes
                    .push("delete the line — the ratchet only shrinks".to_owned());
                diags.push(d);
            }
        }
    }
    diags
}

/// `.method()` with an empty argument list, preceded by `.`.
fn is_guard_call(tokens: &[Token], body: Range<usize>, i: usize) -> bool {
    let prev = tokens[body.start..i].iter().rev().find(|t| !is_comment(t));
    if !prev.is_some_and(|p| p.kind == TokenKind::Punct && p.text == ".") {
        return false;
    }
    let mut it = tokens[i + 1..].iter().filter(|t| !is_comment(t));
    let open = it.next();
    let close = it.next();
    open.is_some_and(|t| t.text == "(") && close.is_some_and(|t| t.text == ")")
}

/// Resolve the receiver chain of the lock call at token `i` to a lock
/// identity. Returns `(identity, global)`; `None` for complex receivers
/// (`foo().lock()`, `(x).lock()`, …).
fn receiver_identity(
    tokens: &[Token],
    body_start: usize,
    i: usize,
    node: &FnNode,
) -> Option<(String, bool)> {
    // Walk back over `ident (sep ident)*` where sep is `.` or `::`.
    let sig_prev = |from: usize| -> Option<usize> {
        (body_start..from).rev().find(|&k| !is_comment(&tokens[k]))
    };
    let mut segs: Vec<(String, String)> = Vec::new(); // (ident, sep before it or "")
    let mut k = sig_prev(i)?; // the `.` before the method
    loop {
        let id = sig_prev(k)?;
        let t = &tokens[id];
        if !matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent) {
            return None; // `)`, `]`, literal… — complex receiver
        }
        let sep = tokens[k].text.clone();
        segs.push((t.text.clone(), sep));
        match sig_prev(id) {
            Some(p) if matches!(tokens[p].text.as_str(), "." | "::") => k = p,
            _ => {
                segs.last_mut()?.1 = String::new();
                break;
            }
        }
    }
    segs.reverse();
    let first = segs.first()?.0.clone();
    let tail = |segs: &[(String, String)], mut id: String| {
        for (seg, sep) in &segs[1..] {
            id.push_str(if sep == "::" { "::" } else { "." });
            id.push_str(seg);
        }
        id
    };
    if first == "self" {
        let ty = node.self_ty.as_deref()?;
        let id = tail(&segs, format!("{}::{}", node.crate_name, ty));
        Some((id, true))
    } else if let Some(c) = crate_of_alias(&first, &node.crate_name) {
        Some((tail(&segs, c), true))
    } else if first.chars().next().is_some_and(char::is_uppercase) {
        let id = tail(&segs, format!("{}::{}", node.crate_name, first));
        Some((id, true))
    } else {
        // Local/param receiver: function-scoped, intra-procedural only.
        let id = tail(&segs, format!("{}::{}", node.id_path, first));
        Some((id, false))
    }
}

/// Token index where the lexical block enclosing `from` closes.
fn scope_end(tokens: &[Token], body: Range<usize>, from: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in tokens
        .iter()
        .enumerate()
        .take(body.end.min(tokens.len()))
        .skip(from)
    {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    body.end
}

/// Whether a statement span contains `drop(name)`.
fn drops_name(tokens: &[Token], span: Range<usize>, name: &str) -> bool {
    let sig: Vec<&Token> = tokens
        .get(span.start..span.end.min(tokens.len()))
        .unwrap_or(&[])
        .iter()
        .filter(|t| !is_comment(t))
        .collect();
    sig.windows(4)
        .any(|w| w[0].text == "drop" && w[1].text == "(" && w[2].text == *name && w[3].text == ")")
}

/// Shortest provenance chain from `f` to the function that directly
/// acquires `lock`; returns the intermediate fns (starting at `f`) and
/// the acquisition site.
fn render_chain(
    graph: &CallGraph,
    ta: &[BTreeMap<usize, Prov>],
    f: usize,
    lock: usize,
) -> (Vec<usize>, Option<(u32, u32)>) {
    let mut chain = vec![f];
    let mut cur = f;
    for _ in 0..graph.fns.len() {
        match ta.get(cur).and_then(|m| m.get(&lock)) {
            Some(Prov::Direct { line, col }) => return (chain, Some((*line, *col))),
            Some(Prov::Via { callee }) => {
                cur = *callee;
                chain.push(cur);
            }
            None => break,
        }
    }
    (chain, None)
}

/// Strongly-connected components (Kosaraju, deterministic orders).
fn sccs(n: usize, adj: &[BTreeSet<usize>]) -> Vec<Vec<usize>> {
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for start in 0..n {
        if seen[start] {
            continue;
        }
        // Iterative post-order DFS.
        let mut stack = vec![(
            start,
            adj[start].iter().copied().collect::<Vec<_>>(),
            0usize,
        )];
        seen[start] = true;
        while let Some((v, nexts, mut i)) = stack.pop() {
            let mut descended = false;
            while i < nexts.len() {
                let w = nexts[i];
                i += 1;
                if !seen[w] {
                    seen[w] = true;
                    stack.push((v, nexts.clone(), i));
                    stack.push((w, adj[w].iter().copied().collect(), 0));
                    descended = true;
                    break;
                }
            }
            if !descended {
                order.push(v);
            }
        }
    }
    let mut radj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for (v, outs) in adj.iter().enumerate() {
        for &w in outs {
            radj[w].insert(v);
        }
    }
    let mut comp = vec![usize::MAX; n];
    let mut comps: Vec<Vec<usize>> = Vec::new();
    for &start in order.iter().rev() {
        if comp[start] != usize::MAX {
            continue;
        }
        let c = comps.len();
        let mut members = Vec::new();
        let mut queue = VecDeque::from([start]);
        comp[start] = c;
        while let Some(v) = queue.pop_front() {
            members.push(v);
            for &w in &radj[v] {
                if comp[w] == usize::MAX {
                    comp[w] = c;
                    queue.push_back(w);
                }
            }
        }
        members.sort_unstable();
        comps.push(members);
    }
    comps.sort();
    comps
}

/// A concrete cycle through the component's smallest lock id, closed
/// (first element repeated at the end).
fn reconstruct_cycle(comp: &[usize], adj: &[BTreeSet<usize>]) -> Option<Vec<usize>> {
    let inset: BTreeSet<usize> = comp.iter().copied().collect();
    let m = *comp.first()?;
    if adj[m].contains(&m) {
        return Some(vec![m, m]);
    }
    // BFS from each successor of m back to m, inside the component.
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &s in adj[m].iter().filter(|s| inset.contains(s)) {
        if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(s) {
            e.insert(m);
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        if v == m {
            break;
        }
        for &w in adj[v].iter().filter(|w| inset.contains(w)) {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(w) {
                e.insert(v);
                queue.push_back(w);
            }
        }
    }
    parent.get(&m)?;
    let mut path = vec![m];
    let mut cur = m;
    for _ in 0..=comp.len() {
        let &p = parent.get(&cur)?;
        path.push(p);
        cur = p;
        if p == m {
            break;
        }
    }
    path.reverse();
    Some(path)
}

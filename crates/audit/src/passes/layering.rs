//! Crate-layering enforcement.
//!
//! `audit.toml` declares a layer number per crate; a crate may depend only
//! on strictly lower layers. Dependencies are collected from two sources —
//! `[dependencies]` tables in each crate's `Cargo.toml` and resolved `use`
//! paths in lib/bin code — so a layering violation is caught whether it is
//! declared, merely imported, or both.
//!
//! Three findings:
//! * **back-edge** — `from` depends on `to` but `layer(to) >= layer(from)`
//!   (error),
//! * **undeclared crate** — an edge touches a crate missing from
//!   `[layers]` (error: the contract must stay total),
//! * the pass is disabled entirely when `[layers]` is empty.

use std::collections::BTreeSet;

use crate::config::Config;
use crate::graph::DepEdge;
use crate::lints::{Diagnostic, CRATE_LAYERING};

/// Run the pass over the union of manifest and use-path edges.
pub fn run(cfg: &Config, edges: &[DepEdge]) -> Vec<Diagnostic> {
    if cfg.layers.is_empty() {
        return Vec::new();
    }
    let mut diags = Vec::new();
    // Dedup by (from, to): Cargo.toml sites come first in `edges`, so the
    // declared site wins over a use-path sighting of the same edge.
    let mut seen: BTreeSet<(&str, &str)> = BTreeSet::new();
    for e in edges {
        if !seen.insert((e.from.as_str(), e.to.as_str())) {
            continue;
        }
        let from_layer = cfg.layers.get(&e.from);
        let to_layer = cfg.layers.get(&e.to);
        match (from_layer, to_layer) {
            (Some(&lf), Some(&lt)) => {
                if lt >= lf {
                    let mut d = Diagnostic::error(
                        &e.path,
                        e.line,
                        1,
                        CRATE_LAYERING,
                        format!(
                            "layering back-edge: `{}` (layer {lf}) depends on `{}` (layer {lt})",
                            e.from, e.to
                        ),
                    );
                    d.notes.push(
                        "a crate may depend only on strictly lower layers; see audit.toml [layers]"
                            .to_owned(),
                    );
                    diags.push(d);
                }
            }
            (missing_from, _) => {
                let who = if missing_from.is_none() {
                    &e.from
                } else {
                    &e.to
                };
                let mut d = Diagnostic::error(
                    &e.path,
                    e.line,
                    1,
                    CRATE_LAYERING,
                    format!("crate `{who}` has no layer declared in audit.toml"),
                );
                d.notes.push(format!(
                    "edge `{}` → `{}` cannot be checked; add `{who} = <layer>` under [layers]",
                    e.from, e.to
                ));
                diags.push(d);
            }
        }
    }
    diags
}

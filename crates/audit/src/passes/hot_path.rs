//! Hot-path certificates: a transitive proof that the serving layer's
//! readers never block.
//!
//! `audit.toml [effects]` declares per-budget entry points (`lock-free`,
//! `io-free`, `spawn-free`, `channel-free`, `poison-free`). For each
//! entry this pass checks the interprocedural effect summary computed by
//! [`crate::effects`] — per-fn local effect sites folded bottom-up over
//! the SCC-condensed call graph — against the union of the budgets the
//! entry appears in. Like the determinism certificate, the walk uses
//! **all** call edges (uncertain method-name edges included): a
//! certificate must over-approximate.
//!
//! On failure the report carries the shortest call chain from the entry
//! to the first function with an offending *local* site, plus the site
//! itself — the same `note:` shape `determinism-cert` renders. Sites
//! sanctioned by a reasoned file-local `allow(hot-path-cert, …)` are
//! trusted; crates in `exempt-crates` (the obs layer, whose sink
//! registry locks by design) contribute no sites at all.
//!
//! Ratchet key: the entry point's id-path. An entry that matches no
//! workspace fn is itself an error — a certificate over nothing is not
//! a certificate.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::cfg::Cfg;
use crate::classify::CodeKind;
use crate::config::Config;
use crate::effects::{local_effects, solve, Effect, EffectSet, EffectSite};
use crate::graph::CallGraph;
use crate::lints::{allow_covers, AllowDirective, Diagnostic, Severity, HOT_PATH_CERT};
use crate::ratchet::Ratchet;
use crate::Workspace;

/// The budget name an effect violates, for the message.
fn budget_word(e: Effect) -> &'static str {
    match e {
        Effect::Locks => "lock-free",
        Effect::BlocksIo => "io-free",
        Effect::Spawns => "spawn-free",
        Effect::Channels => "channel-free",
        Effect::PanicsViaPoison => "poison-free",
    }
}

/// Human phrase for what the entry can reach.
fn describe(e: Effect) -> &'static str {
    match e {
        Effect::Locks => "a lock acquisition",
        Effect::BlocksIo => "blocking I/O",
        Effect::Spawns => "a thread spawn",
        Effect::Channels => "a channel construction",
        Effect::PanicsViaPoison => "a panic under a held lock guard (mutex poison)",
    }
}

/// Run the pass. Disabled (empty result) when no `[effects]` budget
/// names any entry point.
pub fn run(
    ws: &Workspace,
    cfg: &Config,
    graph: &CallGraph,
    cfgs: &[Option<Cfg>],
    ratchet: &Ratchet,
    ratchet_path: Option<&str>,
    directives: &mut [Vec<AllowDirective>],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // entry id-path → union of banned effects across the budgets.
    let mut budgets: BTreeMap<&str, EffectSet> = BTreeMap::new();
    let lists: [(&[String], Effect); 5] = [
        (&cfg.effects_lock_free, Effect::Locks),
        (&cfg.effects_io_free, Effect::BlocksIo),
        (&cfg.effects_spawn_free, Effect::Spawns),
        (&cfg.effects_channel_free, Effect::Channels),
        (&cfg.effects_poison_free, Effect::PanicsViaPoison),
    ];
    for (list, effect) in lists {
        for entry in list {
            budgets.entry(entry.as_str()).or_default().insert(effect);
        }
    }
    if budgets.is_empty() {
        return diags;
    }
    let n = graph.fns.len();
    let cfg_path = cfg.source.as_deref().unwrap_or("audit.toml");

    // Local effect sites per fn (lib, non-test, non-exempt crates), with
    // allow-sanctioned sites removed up front so they shape neither the
    // summaries nor the witness chains.
    let mut sites: Vec<Vec<EffectSite>> = (0..n).map(|_| Vec::new()).collect();
    for (f, node) in graph.fns.iter().enumerate() {
        if node.in_test
            || node.kind != CodeKind::Lib
            || cfg.effects_exempt.iter().any(|c| c == &node.crate_name)
        {
            continue;
        }
        let (Some(body), Some(file)) = (node.body.clone(), ws.files.get(node.file)) else {
            continue;
        };
        let fcfg = cfgs.get(f).and_then(|c| c.as_ref());
        for site in local_effects(&file.tokens, body, fcfg) {
            let sanctioned = directives
                .get_mut(node.file)
                .is_some_and(|ds| allow_covers(ds, HOT_PATH_CERT, site.line));
            if !sanctioned {
                if let Some(list) = sites.get_mut(f) {
                    list.push(site);
                }
            }
        }
    }
    let local: Vec<EffectSet> = sites
        .iter()
        .map(|ss| {
            let mut fx = EffectSet::EMPTY;
            for s in ss {
                fx.insert(s.effect);
            }
            fx
        })
        .collect();

    // Forward adjacency over all edges, test callees excluded.
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for (f, calls) in graph.calls.iter().enumerate() {
        if graph.fns.get(f).is_none_or(|nd| nd.in_test) {
            continue;
        }
        for cs in calls {
            if graph.fns.get(cs.callee).is_some_and(|c| !c.in_test) {
                if let Some(out) = adj.get_mut(f) {
                    out.insert(cs.callee);
                }
            }
        }
    }
    let summary = solve(n, &adj, &local);

    let mut found_keys: BTreeSet<String> = BTreeSet::new();
    for (entry, banned) in &budgets {
        let roots: Vec<usize> = graph
            .fns
            .iter()
            .enumerate()
            .filter(|(_, nd)| !nd.in_test && nd.id_path == *entry)
            .map(|(f, _)| f)
            .collect();
        if roots.is_empty() {
            diags.push(Diagnostic::error(
                cfg_path,
                1,
                1,
                HOT_PATH_CERT,
                format!("hot-path entry point `{entry}` matches no workspace fn"),
            ));
            continue;
        }
        for root in roots {
            let violated = summary
                .get(root)
                .map(|s| s.intersect(*banned))
                .unwrap_or(EffectSet::EMPTY);
            if violated.is_empty() {
                continue;
            }
            let Some(node) = graph.fns.get(root) else {
                continue;
            };
            let rel = ws
                .files
                .get(node.file)
                .map(|fl| fl.rel.as_str())
                .unwrap_or("?");
            let allowed = directives
                .get_mut(node.file)
                .is_some_and(|ds| allow_covers(ds, HOT_PATH_CERT, node.line));
            if allowed {
                continue;
            }
            for effect in violated.iter() {
                let Some((chain, site)) = witness(&adj, &sites, root, effect) else {
                    continue;
                };
                let chain_text = chain
                    .iter()
                    .map(|&g| graph.display(g))
                    .collect::<Vec<_>>()
                    .join(" → ");
                let site_rel = chain
                    .last()
                    .and_then(|&g| graph.fns.get(g))
                    .and_then(|nd| ws.files.get(nd.file))
                    .map(|fl| fl.rel.as_str())
                    .unwrap_or("?");
                let mut d = Diagnostic::error(
                    rel,
                    node.line,
                    node.col,
                    HOT_PATH_CERT,
                    format!(
                        "declared {} entry `{entry}` can reach {}",
                        budget_word(effect),
                        describe(effect)
                    ),
                );
                if chain.len() > 1 {
                    d.notes.push(format!("call chain: {chain_text}"));
                }
                d.notes.push(format!(
                    "site: {} at {site_rel}:{}:{}",
                    site.what, site.line, site.col
                ));
                d.notes.push(
                    "move the effect off the read path (snapshot/precompute), or carry a \
                     reasoned file-local allow at the site"
                        .to_owned(),
                );
                if ratchet.line_of(HOT_PATH_CERT, entry).is_some() {
                    d.severity = Severity::Warning;
                    d.message.push_str(" (ratcheted)");
                }
                found_keys.insert((*entry).to_owned());
                diags.push(d);
            }
        }
    }

    if let Some(rp) = ratchet_path {
        for (key, line) in ratchet.entries_for(HOT_PATH_CERT) {
            if !found_keys.contains(key) {
                let mut d = Diagnostic::error(
                    rp,
                    line,
                    1,
                    HOT_PATH_CERT,
                    format!("stale ratchet entry: hot-path entry `{key}` now certifies clean"),
                );
                d.notes
                    .push("delete the line — the ratchet only shrinks".to_owned());
                diags.push(d);
            }
        }
    }
    diags
}

/// BFS from `root` to the nearest fn with a local site of `effect`;
/// returns the call chain (root first) and that site.
fn witness<'a>(
    adj: &[BTreeSet<usize>],
    sites: &'a [Vec<EffectSite>],
    root: usize,
    effect: Effect,
) -> Option<(Vec<usize>, &'a EffectSite)> {
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue = VecDeque::from([root]);
    let mut seen = BTreeSet::from([root]);
    let mut hit: Option<(usize, &EffectSite)> = None;
    while let Some(v) = queue.pop_front() {
        if let Some(s) = sites
            .get(v)
            .and_then(|ss| ss.iter().find(|s| s.effect == effect))
        {
            hit = Some((v, s));
            break;
        }
        for &w in adj.get(v).into_iter().flatten() {
            if seen.insert(w) {
                parent.insert(w, v);
                queue.push_back(w);
            }
        }
    }
    let (hit, site) = hit?;
    let mut chain = vec![hit];
    let mut cur = hit;
    while let Some(&p) = parent.get(&cur) {
        chain.push(p);
        cur = p;
    }
    chain.reverse();
    Some((chain, site))
}

//! Transitive panic-reachability: no `pub` lib fn of a panic-free crate
//! may reach `unwrap`/`expect`/`panic!` (and optionally indexing) through
//! the workspace call graph.
//!
//! The local `no-panic-in-lib` lint keeps covering leaf bodies inside the
//! panic-free crates themselves; this pass adds what that lint cannot see:
//! a panic *in another crate* (or another function) that a public entry
//! point can run into. A site covered by a reasoned
//! `allow(no-panic-in-lib, …)` or `allow(panic-reachability, …)` directive
//! is sanctioned and does not count as a source.
//!
//! Diagnostics carry the full call chain, shortest-first, so the fix site
//! is always visible:
//!
//! ```text
//! error[udi-audit::panic-reachability]: `udi-core::UdiSystem::setup` can reach a panic
//!   --> crates/core/src/system.rs:41:12
//!   note: call chain: udi-core::UdiSystem::setup → udi-similarity::normalize
//!   note: panics at crates/similarity/src/normalize.rs:47:27 (`expect`)
//! ```

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::classify::CodeKind;
use crate::config::{Config, IndexMode};
use crate::graph::{CallGraph, PanicKind, PanicSite};
use crate::lints::{
    allow_covers, AllowDirective, Diagnostic, Severity, NO_PANIC_IN_LIB, PANIC_REACHABILITY,
};
use crate::Workspace;

/// Run the pass. `directives` is indexed per workspace file.
pub fn run(
    ws: &Workspace,
    cfg: &Config,
    graph: &CallGraph,
    directives: &mut [Vec<AllowDirective>],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // 1. Per-fn effective panic sources, split hard/soft. A site whose
    //    line carries a no-panic-in-lib or panic-reachability allow is
    //    sanctioned.
    let n = graph.fns.len();
    let mut hard: Vec<Vec<&PanicSite>> = vec![Vec::new(); n];
    let mut soft: Vec<Vec<&PanicSite>> = vec![Vec::new(); n];
    for (f, sites) in graph.sites.iter().enumerate() {
        let Some(node) = graph.fns.get(f) else {
            continue;
        };
        if node.in_test {
            continue;
        }
        for site in sites {
            let sanctioned = directives.get_mut(node.file).is_some_and(|ds| {
                // Presence of either allow sanctions the site; only the
                // reachability allow is marked used here (the local lint
                // owns its own bookkeeping).
                let reach = allow_covers(ds, PANIC_REACHABILITY, site.line);
                let local = ds
                    .iter()
                    .any(|d| d.lint == NO_PANIC_IN_LIB && d.target_line == site.line);
                reach || local
            });
            if sanctioned {
                continue;
            }
            match site.kind {
                PanicKind::UnwrapLike | PanicKind::Macro => {
                    if let Some(list) = hard.get_mut(f) {
                        list.push(site);
                    }
                }
                PanicKind::Index => {
                    if cfg.index_sites != IndexMode::Off {
                        if let Some(list) = soft.get_mut(f) {
                            list.push(site);
                        }
                    }
                }
            }
        }
    }

    // 2. Forward adjacency, excluding edges into test fns.
    let adj: Vec<Vec<usize>> = (0..n)
        .map(|f| {
            graph
                .edges(f)
                .into_iter()
                .filter(|&c| graph.fns.get(c).is_some_and(|n| !n.in_test))
                .collect()
        })
        .collect();
    // Reverse reachability from source fns: which fns can reach a source?
    let reach_set = |has_site: &dyn Fn(usize) -> bool| -> BTreeSet<usize> {
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (f, callees) in adj.iter().enumerate() {
            for &c in callees {
                if let Some(back) = rev.get_mut(c) {
                    back.push(f);
                }
            }
        }
        let mut seen: BTreeSet<usize> = (0..n).filter(|&f| has_site(f)).collect();
        let mut queue: VecDeque<usize> = seen.iter().copied().collect();
        while let Some(f) = queue.pop_front() {
            for &p in rev.get(f).map(Vec::as_slice).unwrap_or(&[]) {
                if seen.insert(p) {
                    queue.push_back(p);
                }
            }
        }
        seen
    };
    let hard_reach = reach_set(&|f| hard.get(f).is_some_and(|l| !l.is_empty()));
    let soft_reach = if cfg.index_sites == IndexMode::Off {
        BTreeSet::new()
    } else {
        reach_set(&|f| soft.get(f).is_some_and(|l| !l.is_empty()))
    };

    // 3. Roots: pub lib fns of the configured crates.
    let roots: Vec<usize> = (0..n)
        .filter(|&f| {
            graph.fns.get(f).is_some_and(|node| {
                node.is_pub
                    && node.kind == CodeKind::Lib
                    && !node.in_test
                    && node.body.is_some()
                    && cfg.reach_crates.iter().any(|c| c == &node.crate_name)
            })
        })
        .collect();

    for &root in &roots {
        let Some(node) = graph.fns.get(root) else {
            continue;
        };
        for (reach, sites, severity) in [
            (&hard_reach, &hard, Severity::Error),
            (&soft_reach, &soft, Severity::Warning),
        ] {
            if !reach.contains(&root) {
                continue;
            }
            // Allow on the root fn's own line suppresses the finding.
            let allowed = directives
                .get_mut(node.file)
                .is_some_and(|ds| allow_covers(ds, PANIC_REACHABILITY, node.line));
            if allowed {
                continue;
            }
            let Some((chain, site)) = shortest_chain(&adj, root, sites) else {
                continue;
            };
            let site_fn = chain.last().copied().unwrap_or(root);
            let site_path = graph
                .fns
                .get(site_fn)
                .and_then(|s| ws.files.get(s.file))
                .map(|f| f.rel.as_str())
                .unwrap_or("?");
            let chain_text = chain
                .iter()
                .map(|&f| graph.display(f))
                .collect::<Vec<_>>()
                .join(" → ");
            let sev_for_mode =
                if severity == Severity::Warning && cfg.index_sites == IndexMode::Error {
                    Severity::Error
                } else {
                    severity
                };
            let what = if site.kind == PanicKind::Index {
                "a panicking index".to_owned()
            } else {
                format!("`{}`", site.what)
            };
            let mut d = Diagnostic::error(
                &ws.files
                    .get(node.file)
                    .map(|f| f.rel.clone())
                    .unwrap_or_default(),
                node.line,
                node.col,
                PANIC_REACHABILITY,
                format!("pub fn `{}` can reach a panic", graph.display(root)),
            );
            d.severity = sev_for_mode;
            d.notes.push(format!("call chain: {chain_text}"));
            d.notes.push(format!(
                "panics at {site_path}:{}:{} ({what})",
                site.line, site.col
            ));
            diags.push(d);
        }
    }
    diags
}

/// BFS from `root` to the nearest fn with a site; returns the fn chain
/// (root first) and the site.
fn shortest_chain<'a>(
    adj: &[Vec<usize>],
    root: usize,
    sites: &'a [Vec<&'a PanicSite>],
) -> Option<(Vec<usize>, &'a PanicSite)> {
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue = VecDeque::from([root]);
    let mut seen = BTreeSet::from([root]);
    while let Some(f) = queue.pop_front() {
        if let Some(site) = sites.get(f).and_then(|s| s.first()) {
            let mut chain = vec![f];
            let mut cur = f;
            while cur != root {
                let Some(&p) = parent.get(&cur) else { break };
                chain.push(p);
                cur = p;
            }
            chain.reverse();
            return Some((chain, site));
        }
        for &c in adj.get(f).map(Vec::as_slice).unwrap_or(&[]) {
            if seen.insert(c) {
                parent.insert(c, f);
                queue.push_back(c);
            }
        }
    }
    None
}

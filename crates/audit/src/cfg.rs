//! Per-function control-flow graphs over the parser's opaque body token
//! ranges.
//!
//! The item [`crate::parser`] stops at function bodies: a body is a
//! brace-balanced token range. This module parses that range into a
//! statement list and a CFG — one basic block per statement, plus empty
//! entry/exit/join blocks — recovering exactly the control structure the
//! dataflow passes need:
//!
//! * sequential fallthrough between statements,
//! * `if`/`if let`/`else` branching with a join block,
//! * `match` arms (pattern + guard as a condition block, then the arm
//!   body) joining after the match,
//! * `loop`/`while`/`for` back-edges, with `break`/`continue` resolved
//!   against the innermost loop,
//! * `return` as an edge to the exit block, and `?` as an *additional*
//!   edge to exit from any statement containing one.
//!
//! Like the lexer and parser, the builder **never fails**: malformed or
//! truncated input degrades into opaque expression statements, never a
//! panic. The layout is deterministic — blocks are numbered in parse
//! order, successors in creation order, and no hashing is involved — so
//! two builds of the same token range produce identical graphs (a
//! property the proptests freeze).
//!
//! See `DESIGN.md` §12 for how the lock-order and error-discard passes
//! consume these graphs.

use std::ops::Range;

use crate::lexer::{Token, TokenKind};
use crate::parser::is_comment;

/// Block id of the synthetic entry block (no statement, no predecessors).
pub const ENTRY: usize = 0;
/// Block id of the synthetic exit block (`return`/`?`/fallthrough target).
pub const EXIT: usize = 1;

/// What kind of statement a block holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// `let` statement. `name` is the bound identifier for simple
    /// bindings (`let g = …`, `let mut g = …`); `None` for pattern
    /// bindings. `discard` is true exactly for `let _ = …`.
    Let {
        /// Simple bound name, if the pattern is a bare identifier.
        name: Option<String>,
        /// `let _ = …` — the value is dropped on the spot.
        discard: bool,
    },
    /// Expression statement. `semi` is true when it was terminated by
    /// `;` (a discarded value), false for a tail expression.
    Expr {
        /// Terminated by a semicolon.
        semi: bool,
    },
    /// `return …;` — the block's only successor is [`EXIT`].
    Return,
    /// `break …;` — jumps to the innermost loop's join block.
    Break,
    /// `continue;` — jumps back to the innermost loop's head.
    Continue,
    /// Condition/scrutinee of an `if`/`while`/`for`/`match`, or a match
    /// arm's pattern (+ guard). Successors are the branch targets.
    Cond,
    /// Head of a bare `loop`.
    LoopHead,
    /// A nested item definition (`fn`, `struct`, `const`, …) — opaque to
    /// the dataflow passes.
    Item,
}

/// One statement, with its token span in the *file* token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// Statement kind.
    pub kind: StmtKind,
    /// Token-index range in the defining file (comments included where
    /// they interleave; consumers filter).
    pub span: Range<usize>,
    /// 1-based line of the first significant token.
    pub line: u32,
    /// 1-based column of the first significant token.
    pub col: u32,
    /// The span contains a `?` operator — the block has an extra edge to
    /// [`EXIT`].
    pub has_question: bool,
}

/// One basic block: at most one statement plus its successor edges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Block {
    /// The statement, or `None` for entry/exit/join blocks.
    pub stmt: Option<Stmt>,
    /// Successor block ids, in creation order, deduplicated.
    pub succs: Vec<usize>,
}

/// A per-function control-flow graph. Block [`ENTRY`] starts the
/// function, block [`EXIT`] is the unique sink for fallthrough, `return`,
/// and `?` propagation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cfg {
    /// All blocks; indices are block ids.
    pub blocks: Vec<Block>,
}

impl Cfg {
    /// Iterate `(block id, statement)` for every statement-bearing block.
    pub fn stmts(&self) -> impl Iterator<Item = (usize, &Stmt)> {
        self.blocks
            .iter()
            .enumerate()
            .filter_map(|(b, blk)| blk.stmt.as_ref().map(|s| (b, s)))
    }

    /// The block whose statement span contains file token index `tok`,
    /// if any (condition spans included).
    pub fn block_of_token(&self, tok: usize) -> Option<usize> {
        self.stmts()
            .find(|(_, s)| s.span.contains(&tok))
            .map(|(b, _)| b)
    }

    /// Predecessor lists (computed, deterministic).
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (b, blk) in self.blocks.iter().enumerate() {
            for &s in &blk.succs {
                if let Some(p) = preds.get_mut(s) {
                    p.push(b);
                }
            }
        }
        preds
    }

    /// Structural invariants the proptests assert: every successor id is
    /// in bounds, entry/exit exist and are statement-free.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.blocks.len() < 2 {
            return Err("missing entry/exit blocks".to_owned());
        }
        for who in [ENTRY, EXIT] {
            if self.blocks.get(who).is_some_and(|b| b.stmt.is_some()) {
                return Err(format!("block {who} must be statement-free"));
            }
        }
        if self.blocks.get(EXIT).is_some_and(|b| !b.succs.is_empty()) {
            return Err("exit block must have no successors".to_owned());
        }
        for (b, blk) in self.blocks.iter().enumerate() {
            for &s in &blk.succs {
                if s >= self.blocks.len() {
                    return Err(format!("block {b} has out-of-range successor {s}"));
                }
            }
            let mut seen = blk.succs.clone();
            seen.sort_unstable();
            seen.dedup();
            if seen.len() != blk.succs.len() {
                return Err(format!("block {b} has duplicate successors"));
            }
        }
        Ok(())
    }
}

/// Nesting depth beyond which the builder stops recursing and treats a
/// region as one opaque statement (guards the stack against pathological
/// `{{{{…}}}}` proptest inputs).
const MAX_DEPTH: u32 = 64;

/// Build the CFG of one function body. `body` is the token-index range of
/// the `{ … }` (braces included), as produced by the parser — but any
/// range over any token stream is accepted and degrades gracefully.
pub fn build_cfg(tokens: &[Token], body: Range<usize>) -> Cfg {
    let lo = body.start.min(tokens.len());
    let hi = body.end.min(tokens.len());
    // Significant-token indices of the body.
    let mut sig: Vec<usize> = (lo..hi)
        .filter(|&i| tokens.get(i).is_some_and(|t| !is_comment(t)))
        .collect();
    // Strip the enclosing braces when present and matching.
    let first_open = sig
        .first()
        .and_then(|&i| tokens.get(i))
        .is_some_and(|t| t.text == "{");
    let last_close = sig
        .last()
        .and_then(|&i| tokens.get(i))
        .is_some_and(|t| t.text == "}");
    if sig.len() >= 2 && first_open && last_close {
        sig.remove(0);
        sig.pop();
    }
    let mut b = Builder {
        toks: tokens,
        sig,
        blocks: vec![Block::default(), Block::default()],
    };
    let (entry, exit) = b.seq(0, b.sig.len(), &mut Vec::new(), 0);
    b.link(ENTRY, entry);
    if let Some(exit) = exit {
        b.link(exit, EXIT);
    }
    Cfg { blocks: b.blocks }
}

/// Innermost-loop context for `break`/`continue` resolution.
struct LoopCtx {
    head: usize,
    join: usize,
}

struct Builder<'t> {
    toks: &'t [Token],
    /// Significant token indices of the body interior, in order. All
    /// parsing positions below are *slots* into this vector.
    sig: Vec<usize>,
    blocks: Vec<Block>,
}

impl<'t> Builder<'t> {
    fn text(&self, slot: usize) -> &str {
        self.sig
            .get(slot)
            .and_then(|&i| self.toks.get(i))
            .map(|t| t.text.as_str())
            .unwrap_or("")
    }

    fn is_ident(&self, slot: usize) -> bool {
        self.sig
            .get(slot)
            .and_then(|&i| self.toks.get(i))
            .is_some_and(|t| matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent))
    }

    fn new_block(&mut self, stmt: Option<Stmt>) -> usize {
        self.blocks.push(Block {
            stmt,
            succs: Vec::new(),
        });
        self.blocks.len() - 1
    }

    fn link(&mut self, from: usize, to: usize) {
        if let Some(b) = self.blocks.get_mut(from) {
            if !b.succs.contains(&to) {
                b.succs.push(to);
            }
        }
    }

    /// File-token span + anchor for slots `lo..hi`.
    fn stmt_at(&self, kind: StmtKind, lo: usize, hi: usize) -> Stmt {
        let first = self.sig.get(lo).copied().unwrap_or(0);
        let last = self
            .sig
            .get(hi.saturating_sub(1).max(lo))
            .copied()
            .unwrap_or(first);
        let (line, col) = self
            .toks
            .get(first)
            .map(|t| (t.line, t.col))
            .unwrap_or((1, 1));
        let has_question = (lo..hi).any(|s| {
            self.sig
                .get(s)
                .and_then(|&i| self.toks.get(i))
                .is_some_and(|t| t.kind == TokenKind::Punct && t.text == "?")
        });
        Stmt {
            kind,
            span: first..last + 1,
            line,
            col,
            has_question,
        }
    }

    /// Statement block + its standard edges (`?` ⇒ extra edge to EXIT).
    fn stmt_block(&mut self, kind: StmtKind, lo: usize, hi: usize) -> usize {
        let stmt = self.stmt_at(kind, lo, hi);
        let q = stmt.has_question;
        let b = self.new_block(Some(stmt));
        if q {
            self.link(b, EXIT);
        }
        b
    }

    /// Scan from `slot` (exclusive bound `hi`) for `stop` at bracket depth
    /// zero. `braces` controls whether `{`/`}` count toward depth. Returns
    /// the slot of the stop token, or `hi`.
    fn find_at_depth(&self, slot: usize, hi: usize, stop: &[&str], braces: bool) -> usize {
        let mut depth = 0i64;
        let mut s = slot;
        while s < hi {
            let t = self.text(s);
            let opens = matches!(t, "(" | "[") || (braces && t == "{");
            let closes = matches!(t, ")" | "]") || (braces && t == "}");
            // Stop tokens match at depth zero, *before* an opener raises
            // the depth (so a `{` stop is found) and *after* a closer
            // would end the current nesting.
            if depth == 0 && !closes && stop.contains(&t) {
                return s;
            }
            if opens {
                depth += 1;
            } else if closes {
                depth -= 1;
                if depth < 0 {
                    return s; // unbalanced close — statement cannot continue
                }
                if depth == 0 && stop.contains(&t) {
                    return s;
                }
            }
            s += 1;
        }
        hi
    }

    /// Slot of the `}` matching the `{` at `open` (or `hi` if unbalanced).
    fn matching_brace(&self, open: usize, hi: usize) -> usize {
        let mut depth = 0i64;
        let mut s = open;
        while s < hi {
            match self.text(s) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return s;
                    }
                }
                _ => {}
            }
            s += 1;
        }
        hi
    }

    /// Parse slots `lo..hi` as a statement sequence. Returns the entry
    /// block id and the fallthrough block id (`None` when control cannot
    /// fall out of the sequence).
    fn seq(
        &mut self,
        lo: usize,
        hi: usize,
        loops: &mut Vec<LoopCtx>,
        depth: u32,
    ) -> (usize, Option<usize>) {
        let entry = self.new_block(None);
        let mut cur = Some(entry);
        let mut s = lo;
        while s < hi.min(self.sig.len()) {
            if self.text(s) == ";" {
                s += 1;
                continue;
            }
            let (stmt_entry, stmt_exit, next) = self.statement(s, hi, loops, depth);
            debug_assert!(next > s, "statement parser must consume tokens");
            match cur {
                Some(c) => self.link(c, stmt_entry),
                None => {
                    // Dead code after return/break — still parsed (its
                    // statements exist for span mapping), never linked.
                }
            }
            cur = stmt_exit;
            s = next.max(s + 1);
        }
        (entry, cur)
    }

    /// Parse one statement starting at slot `s`. Returns
    /// `(entry block, fallthrough block, next slot)`.
    fn statement(
        &mut self,
        s: usize,
        hi: usize,
        loops: &mut Vec<LoopCtx>,
        depth: u32,
    ) -> (usize, Option<usize>, usize) {
        if depth >= MAX_DEPTH {
            // Too deep: consume the rest of the region opaquely.
            let b = self.stmt_block(StmtKind::Expr { semi: false }, s, hi);
            return (b, Some(b), hi);
        }
        let kw = if self.is_ident(s) { self.text(s) } else { "" };
        match kw {
            "let" => {
                let end = self.find_at_depth(s, hi, &[";"], true);
                let mut n = s + 1;
                while self.text(n) == "mut" {
                    n += 1;
                }
                let (name, discard) = if self.text(n) == "_" {
                    (None, true)
                } else if self.is_ident(n) && !matches!(self.text(n + 1), "::" | "{" | "(") {
                    (Some(self.text(n).to_owned()), false)
                } else {
                    (None, false)
                };
                let upto = (end + 1).min(hi);
                let b = self.stmt_block(StmtKind::Let { name, discard }, s, upto);
                // `let … else { return … }` and `let x = return …` both
                // put a `return` inside the span: add the exit edge.
                if (s..upto).any(|k| self.text(k) == "return") {
                    self.link(b, EXIT);
                }
                (b, Some(b), upto)
            }
            "return" => {
                let end = self.find_at_depth(s, hi, &[";"], true);
                let b = self.stmt_block(StmtKind::Return, s, (end + 1).min(hi));
                self.link(b, EXIT);
                (b, None, (end + 1).min(hi))
            }
            "break" | "continue" => {
                let end = self.find_at_depth(s, hi, &[";"], true);
                let is_break = kw == "break";
                let kind = if is_break {
                    StmtKind::Break
                } else {
                    StmtKind::Continue
                };
                let b = self.stmt_block(kind, s, (end + 1).min(hi));
                let target = loops.last().map(|c| if is_break { c.join } else { c.head });
                self.link(b, target.unwrap_or(EXIT));
                (b, None, (end + 1).min(hi))
            }
            "if" => self.if_stmt(s, hi, loops, depth),
            "match" => self.match_stmt(s, hi, loops, depth),
            "loop" | "while" | "for" => self.loop_stmt(s, hi, loops, depth),
            "unsafe" if self.text(s + 1) == "{" => {
                let close = self.matching_brace(s + 1, hi);
                let (e, x) = self.seq(s + 2, close, loops, depth + 1);
                (e, x, (close + 1).min(hi))
            }
            "fn" | "struct" | "enum" | "union" | "trait" | "impl" | "mod" | "use" | "const"
            | "static" | "type" | "unsafe" => {
                // A nested item: opaque. Ends at `;` or its matching brace,
                // whichever the item uses first.
                let semi = self.find_at_depth(s, hi, &[";"], false);
                let brace = self.find_at_depth(s, hi, &["{"], false);
                let end = if brace < semi {
                    self.matching_brace(brace, hi)
                } else {
                    semi
                };
                let upto = (end + 1).min(hi);
                let b = self.stmt_block(StmtKind::Item, s, upto);
                (b, Some(b), upto)
            }
            _ if self.text(s) == "{" => {
                let close = self.matching_brace(s, hi);
                let (e, x) = self.seq(s + 1, close, loops, depth + 1);
                (e, x, (close + 1).min(hi))
            }
            _ if self.text(s) == "}" => {
                // Unbalanced close in malformed input: consume it opaquely.
                let b = self.stmt_block(StmtKind::Expr { semi: false }, s, s + 1);
                (b, Some(b), s + 1)
            }
            _ => {
                let end = self.find_at_depth(s, hi, &[";"], true);
                let semi = end < hi && self.text(end) == ";";
                let upto = if semi { end + 1 } else { end.max(s + 1) }.min(hi.max(s + 1));
                let b = self.stmt_block(StmtKind::Expr { semi }, s, upto);
                if (s..upto).any(|k| self.text(k) == "return") {
                    self.link(b, EXIT);
                }
                (b, Some(b), upto)
            }
        }
    }

    /// `if cond { A } else if … { B } else { C }` — returns
    /// `(cond block, join block, next slot)`.
    fn if_stmt(
        &mut self,
        s: usize,
        hi: usize,
        loops: &mut Vec<LoopCtx>,
        depth: u32,
    ) -> (usize, Option<usize>, usize) {
        let open = self.find_at_depth(s + 1, hi, &["{"], false);
        if open >= hi {
            // No block found: malformed — opaque expression to the end.
            let b = self.stmt_block(StmtKind::Expr { semi: false }, s, hi);
            return (b, Some(b), hi);
        }
        let cond = self.stmt_block(StmtKind::Cond, s, open);
        let close = self.matching_brace(open, hi);
        let (then_e, then_x) = self.seq(open + 1, close, loops, depth + 1);
        self.link(cond, then_e);
        let join = self.new_block(None);
        if let Some(x) = then_x {
            self.link(x, join);
        }
        let mut next = (close + 1).min(hi);
        if self.text(next) == "else" {
            if self.text(next + 1) == "{" {
                let eclose = self.matching_brace(next + 1, hi);
                let (else_e, else_x) = self.seq(next + 2, eclose, loops, depth + 1);
                self.link(cond, else_e);
                if let Some(x) = else_x {
                    self.link(x, join);
                }
                next = (eclose + 1).min(hi);
            } else if self.text(next + 1) == "if" {
                let (else_e, else_x, n) = self.if_stmt(next + 1, hi, loops, depth + 1);
                self.link(cond, else_e);
                if let Some(x) = else_x {
                    self.link(x, join);
                }
                next = n;
            } else {
                // `else <garbage>` — treat as no else.
                self.link(cond, join);
            }
        } else {
            // No else: condition may fall through directly.
            self.link(cond, join);
        }
        (cond, Some(join), next)
    }

    /// `match scrut { pat (if guard)? => body, … }`.
    fn match_stmt(
        &mut self,
        s: usize,
        hi: usize,
        loops: &mut Vec<LoopCtx>,
        depth: u32,
    ) -> (usize, Option<usize>, usize) {
        let open = self.find_at_depth(s + 1, hi, &["{"], false);
        if open >= hi {
            let b = self.stmt_block(StmtKind::Expr { semi: false }, s, hi);
            return (b, Some(b), hi);
        }
        let scrut = self.stmt_block(StmtKind::Cond, s, open);
        let close = self.matching_brace(open, hi);
        let join = self.new_block(None);
        let mut a = open + 1;
        let mut any_arm = false;
        while a < close {
            if self.text(a) == "," {
                a += 1;
                continue;
            }
            // Pattern (+ guard) up to `=>`.
            let arrow = self.find_at_depth(a, close, &["=>"], true);
            if arrow >= close {
                break; // no arrow: garbage tail — stop arm parsing
            }
            let head = self.stmt_block(StmtKind::Cond, a, arrow);
            self.link(scrut, head);
            any_arm = true;
            let body_s = arrow + 1;
            let (arm_e, arm_x, next) = if self.text(body_s) == "{" {
                let bclose = self.matching_brace(body_s, close);
                let (e, x) = self.seq(body_s + 1, bclose, loops, depth + 1);
                (e, x, (bclose + 1).min(close))
            } else {
                // Expression arm up to `,` at depth zero (or end of arms).
                let end = self.find_at_depth(body_s, close, &[","], true);
                let (e, x) = self.seq(body_s, end, loops, depth + 1);
                (e, x, (end + 1).min(close))
            };
            self.link(head, arm_e);
            if let Some(x) = arm_x {
                self.link(x, join);
            }
            debug_assert!(next > a);
            a = next.max(a + 1);
        }
        if !any_arm {
            // Empty match (`match x {}`) never falls through in Rust, but
            // lint-grade: treat as straight-through so nothing downstream
            // becomes unreachable by accident.
            self.link(scrut, join);
        }
        (scrut, Some(join), (close + 1).min(hi))
    }

    /// `loop { … }`, `while cond { … }`, `for pat in iter { … }`.
    fn loop_stmt(
        &mut self,
        s: usize,
        hi: usize,
        loops: &mut Vec<LoopCtx>,
        depth: u32,
    ) -> (usize, Option<usize>, usize) {
        let is_bare_loop = self.text(s) == "loop";
        let open = if is_bare_loop {
            if self.text(s + 1) == "{" {
                s + 1
            } else {
                hi
            }
        } else {
            self.find_at_depth(s + 1, hi, &["{"], false)
        };
        if open >= hi {
            let b = self.stmt_block(StmtKind::Expr { semi: false }, s, hi);
            return (b, Some(b), hi);
        }
        let kind = if is_bare_loop {
            StmtKind::LoopHead
        } else {
            StmtKind::Cond
        };
        let head = self.stmt_block(kind, s, open.max(s + 1));
        let close = self.matching_brace(open, hi);
        let join = self.new_block(None);
        loops.push(LoopCtx { head, join });
        let (body_e, body_x) = self.seq(open + 1, close, loops, depth + 1);
        loops.pop();
        self.link(head, body_e);
        if let Some(x) = body_x {
            self.link(x, head); // back edge
        }
        if !is_bare_loop {
            self.link(head, join); // condition can be false on entry
        }
        (head, Some(join), (close + 1).min(hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn cfg_of(body_src: &str) -> Cfg {
        let tokens = lex(body_src);
        let cfg = build_cfg(&tokens, 0..tokens.len());
        cfg.check_invariants().expect("invariants");
        cfg
    }

    fn kinds(cfg: &Cfg) -> Vec<&StmtKind> {
        cfg.stmts().map(|(_, s)| &s.kind).collect()
    }

    #[test]
    fn straight_line_statements_chain() {
        let cfg = cfg_of("{ let a = 1; f(a); a }");
        assert_eq!(
            kinds(&cfg),
            vec![
                &StmtKind::Let {
                    name: Some("a".into()),
                    discard: false
                },
                &StmtKind::Expr { semi: true },
                &StmtKind::Expr { semi: false },
            ]
        );
        // entry → seq-entry → let → f(a) → a → exit, all linear.
        let preds = cfg.preds();
        for (b, blk) in cfg.blocks.iter().enumerate() {
            if b != ENTRY && b != EXIT && blk.stmt.is_some() {
                assert_eq!(blk.succs.len(), 1, "block {b} not linear");
                assert_eq!(preds[b].len(), 1);
            }
        }
    }

    #[test]
    fn let_discard_is_flagged() {
        let cfg = cfg_of("{ let _ = fallible(); let _keep = other(); }");
        let ks = kinds(&cfg);
        assert_eq!(
            ks[0],
            &StmtKind::Let {
                name: None,
                discard: true
            }
        );
        assert_eq!(
            ks[1],
            &StmtKind::Let {
                name: Some("_keep".into()),
                discard: false
            }
        );
    }

    #[test]
    fn if_else_branches_and_join() {
        let cfg = cfg_of("{ if c { a(); } else { b(); } tail(); }");
        let cond = cfg
            .stmts()
            .find(|(_, s)| s.kind == StmtKind::Cond)
            .map(|(b, _)| b)
            .expect("cond block");
        assert_eq!(cfg.blocks[cond].succs.len(), 2, "then + else entries");
        // Both arms reach the tail statement through the join.
        let tail = cfg
            .stmts()
            .filter(|(_, s)| matches!(s.kind, StmtKind::Expr { .. }))
            .map(|(b, _)| b)
            .max()
            .expect("tail");
        let preds = cfg.preds();
        assert!(!preds[tail].is_empty());
    }

    #[test]
    fn if_without_else_falls_through() {
        let cfg = cfg_of("{ if c { a(); } tail(); }");
        let cond = cfg
            .stmts()
            .find(|(_, s)| s.kind == StmtKind::Cond)
            .map(|(b, _)| b)
            .expect("cond");
        // then-entry and join.
        assert_eq!(cfg.blocks[cond].succs.len(), 2);
    }

    #[test]
    fn return_edges_to_exit_only() {
        let cfg = cfg_of("{ if c { return 1; } work(); }");
        let ret = cfg
            .stmts()
            .find(|(_, s)| s.kind == StmtKind::Return)
            .map(|(b, _)| b)
            .expect("return");
        assert_eq!(cfg.blocks[ret].succs, vec![EXIT]);
    }

    #[test]
    fn question_mark_adds_exit_edge() {
        let cfg = cfg_of("{ let v = fallible()?; use_it(v); }");
        let (b, s) = cfg.stmts().next().expect("let stmt");
        assert!(s.has_question);
        assert!(cfg.blocks[b].succs.contains(&EXIT));
        assert_eq!(cfg.blocks[b].succs.len(), 2, "exit + fallthrough");
    }

    #[test]
    fn loop_back_edge_and_break() {
        let cfg = cfg_of("{ loop { step(); if done { break; } } after(); }");
        let head = cfg
            .stmts()
            .find(|(_, s)| s.kind == StmtKind::LoopHead)
            .map(|(b, _)| b)
            .expect("loop head");
        let brk = cfg
            .stmts()
            .find(|(_, s)| s.kind == StmtKind::Break)
            .map(|(b, _)| b)
            .expect("break");
        let preds = cfg.preds();
        // The body's end flows back to the head.
        assert!(preds[head].len() >= 2, "entry edge + back edge");
        // break jumps to the loop's join, never to the head.
        assert_eq!(cfg.blocks[brk].succs.len(), 1);
        assert_ne!(cfg.blocks[brk].succs[0], head);
    }

    #[test]
    fn while_condition_can_skip_body() {
        let cfg = cfg_of("{ while c { body(); } after(); }");
        let head = cfg
            .stmts()
            .find(|(_, s)| s.kind == StmtKind::Cond)
            .map(|(b, _)| b)
            .expect("while head");
        assert_eq!(cfg.blocks[head].succs.len(), 2, "body entry + join");
    }

    #[test]
    fn match_arms_join() {
        let cfg = cfg_of("{ match x { A => a(), B { y } if y > 0 => { b(); } _ => c(), } t(); }");
        let conds: Vec<usize> = cfg
            .stmts()
            .filter(|(_, s)| s.kind == StmtKind::Cond)
            .map(|(b, _)| b)
            .collect();
        // Scrutinee + three arm heads.
        assert_eq!(conds.len(), 4, "{:?}", cfg);
        let scrut = conds[0];
        assert_eq!(cfg.blocks[scrut].succs.len(), 3);
    }

    #[test]
    fn nested_items_are_opaque() {
        let cfg = cfg_of("{ fn helper() { inner(); } const N: u32 = 3; helper(); }");
        let ks = kinds(&cfg);
        assert_eq!(
            ks,
            vec![
                &StmtKind::Item,
                &StmtKind::Item,
                &StmtKind::Expr { semi: true }
            ]
        );
    }

    #[test]
    fn malformed_input_never_panics() {
        for src in [
            "",
            "{",
            "}",
            "{{{",
            "}}}",
            "{ if }",
            "{ if { }",
            "{ match x {",
            "{ let ",
            "{ else }",
            "{ loop }",
            "{ break; }",
            "{ ; ; ; }",
            "{ a.b(",
            "{ match x { A => } }",
            "{ while { } }",
            "{ for in { } }",
        ] {
            let tokens = lex(src);
            let cfg = build_cfg(&tokens, 0..tokens.len());
            cfg.check_invariants()
                .unwrap_or_else(|e| panic!("{src}: {e}"));
            // Arbitrary sub-ranges, too.
            let cfg2 = build_cfg(&tokens, 0..tokens.len().saturating_sub(1));
            cfg2.check_invariants().expect("sub-range invariants");
        }
    }

    #[test]
    fn deterministic_layout() {
        let src = "{ if a { while b { c()?; } } else { match d { _ => e(), } } f(); }";
        let tokens = lex(src);
        let one = build_cfg(&tokens, 0..tokens.len());
        let two = build_cfg(&tokens, 0..tokens.len());
        assert_eq!(one, two);
    }

    #[test]
    fn deep_nesting_degrades_gracefully() {
        let mut src = String::from("{");
        for _ in 0..200 {
            src.push_str("if c {");
        }
        src.push_str("x();");
        for _ in 0..200 {
            src.push('}');
        }
        src.push('}');
        let tokens = lex(&src);
        let cfg = build_cfg(&tokens, 0..tokens.len());
        cfg.check_invariants().expect("invariants at depth cap");
    }
}

//! Fixture tests for the audit engine: known-bad snippets must fire the
//! expected lint at the expected line and column, and known-good snippets —
//! including the adversarial ones (raw strings containing `unwrap()`, block
//! comments containing `panic!`, test modules) — must stay silent.

use udi_audit::lints::{
    DETERMINISTIC_ITERATION, FLOAT_EQ, MALFORMED_ALLOW, NO_PANIC_IN_LIB, NO_RAW_TIME, NO_STRAY_IO,
    UNUSED_ALLOW,
};
use udi_audit::{all_lints, audit_source, CodeKind, Diagnostic, FileClass};

fn lib_of(crate_name: &str) -> FileClass {
    FileClass {
        crate_name: crate_name.into(),
        kind: CodeKind::Lib,
    }
}

fn audit(crate_name: &str, src: &str) -> Vec<Diagnostic> {
    audit_source("fixture.rs", &lib_of(crate_name), src, &all_lints())
}

fn audit_kind(crate_name: &str, kind: CodeKind, src: &str) -> Vec<Diagnostic> {
    let class = FileClass {
        crate_name: crate_name.into(),
        kind,
    };
    audit_source("fixture.rs", &class, src, &all_lints())
}

/// `(lint, line, col)` triples for compact assertions.
fn coords(diags: &[Diagnostic]) -> Vec<(&'static str, u32, u32)> {
    diags.iter().map(|d| (d.lint, d.line, d.col)).collect()
}

// ---------------------------------------------------------------- known bad

#[test]
fn unwrap_fires_at_exact_position() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    assert_eq!(coords(&audit("udi-core", src)), [(NO_PANIC_IN_LIB, 2, 7)]);
}

#[test]
fn expect_and_panic_macros_fire() {
    let src = "\
pub fn f(x: Option<u32>) -> u32 {
    let y = x.expect(\"boom\");
    if y > 9 {
        panic!(\"too big\");
    }
    unreachable!()
}
";
    assert_eq!(
        coords(&audit("udi-schema", src)),
        [
            (NO_PANIC_IN_LIB, 2, 15),
            (NO_PANIC_IN_LIB, 4, 9),
            (NO_PANIC_IN_LIB, 6, 5),
        ]
    );
}

#[test]
fn todo_and_unimplemented_fire() {
    let src = "pub fn f() {\n    todo!()\n}\npub fn g() {\n    unimplemented!()\n}\n";
    assert_eq!(
        coords(&audit("udi-maxent", src)),
        [(NO_PANIC_IN_LIB, 2, 5), (NO_PANIC_IN_LIB, 5, 5)]
    );
}

#[test]
fn hashmap_type_and_constructor_fire_in_deterministic_crates() {
    let src = "\
use std::collections::HashMap;
pub fn f() -> HashMap<u32, u32> {
    HashMap::new()
}
";
    // The `use` line is exempt (importing is not iterating); the type
    // position and the constructor both fire.
    assert_eq!(
        coords(&audit("udi-core", src)),
        [
            (DETERMINISTIC_ITERATION, 2, 15),
            (DETERMINISTIC_ITERATION, 3, 5),
        ]
    );
}

#[test]
fn hashset_fires_too() {
    let src = "use std::collections::HashSet;\npub fn f(s: &HashSet<u8>) -> bool {\n    s.is_empty()\n}\n";
    assert_eq!(
        coords(&audit("udi-schema", src)),
        [(DETERMINISTIC_ITERATION, 2, 14)]
    );
}

#[test]
fn hashmap_is_fine_outside_deterministic_crates() {
    let src = "use std::collections::HashMap;\npub fn f() -> HashMap<u32, u32> {\n    HashMap::new()\n}\n";
    assert_eq!(audit("udi-query", src), []);
}

#[test]
fn float_equality_fires_on_float_operands() {
    let src = "pub fn f(p: f64) -> bool {\n    p == 0.0\n}\n";
    assert_eq!(coords(&audit("udi-core", src)), [(FLOAT_EQ, 2, 7)]);
    let src_ne = "pub fn f(p: f64) -> bool {\n    0.5 != p\n}\n";
    assert_eq!(coords(&audit("udi-eval", src_ne)), [(FLOAT_EQ, 2, 9)]);
}

#[test]
fn integer_equality_is_fine() {
    let src = "pub fn f(n: usize) -> bool {\n    n == 0 && n != 3\n}\n";
    assert_eq!(audit("udi-core", src), []);
}

#[test]
fn raw_time_fires_outside_obs() {
    let src = "use std::time::Instant;\npub fn f() {\n    let _t = Instant::now();\n}\n";
    assert_eq!(
        coords(&audit("udi-core", src)),
        [(NO_RAW_TIME, 1, 16), (NO_RAW_TIME, 3, 14)]
    );
    let sys = "pub fn f() -> std::time::SystemTime {\n    std::time::SystemTime::now()\n}\n";
    assert_eq!(
        coords(&audit("udi-store", sys)),
        [(NO_RAW_TIME, 1, 26), (NO_RAW_TIME, 2, 16)]
    );
}

#[test]
fn raw_time_is_allowed_in_obs() {
    let src = "use std::time::Instant;\npub fn f() {\n    let _t = Instant::now();\n}\n";
    assert_eq!(audit("udi-obs", src), []);
}

#[test]
fn stray_io_fires_in_lib_code() {
    let src =
        "pub fn f() {\n    println!(\"debug\");\n    eprintln!(\"oops\");\n    dbg!(1 + 1);\n}\n";
    assert_eq!(
        coords(&audit("udi-core", src)),
        [
            (NO_STRAY_IO, 2, 5),
            (NO_STRAY_IO, 3, 5),
            (NO_STRAY_IO, 4, 5),
        ]
    );
}

// --------------------------------------------------------------- known good

#[test]
fn test_code_bin_code_and_bench_code_are_exempt() {
    let src = "fn main() {\n    let x: Option<u32> = None;\n    x.unwrap();\n    println!(\"{:?}\", std::time::Instant::now());\n}\n";
    for kind in [
        CodeKind::Bin,
        CodeKind::Test,
        CodeKind::Bench,
        CodeKind::Example,
    ] {
        assert_eq!(audit_kind("udi-core", kind, src), [], "{kind:?}");
    }
}

#[test]
fn cfg_test_modules_inside_lib_files_are_exempt() {
    let src = "\
pub fn safe() -> u32 {
    42
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn t() {
        let m: HashMap<u32, u32> = HashMap::new();
        assert!(m.is_empty());
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
";
    assert_eq!(audit("udi-core", src), []);
}

#[test]
fn panicky_text_inside_strings_and_comments_is_invisible() {
    let src = "\
// This comment says unwrap() and panic! and HashMap.
/* block comment: x.unwrap() /* nested: panic!() */ still fine */
pub fn f() -> &'static str {
    \"call .unwrap() and panic!()\"
}
pub fn g() -> &'static str {
    r#\"raw string with x.unwrap() and HashMap::new() and == 0.0\"#
}
";
    assert_eq!(audit("udi-core", src), []);
}

#[test]
fn unwrap_or_variants_are_not_unwrap() {
    let src = "\
pub fn f(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}
pub fn g(x: Option<u32>) -> u32 {
    x.unwrap_or_else(|| 1)
}
pub fn h(x: Option<u32>) -> u32 {
    x.unwrap_or_default()
}
";
    assert_eq!(audit("udi-core", src), []);
}

#[test]
fn lifetime_quotes_do_not_break_the_lexer() {
    // A lifetime immediately before code that would be hidden if the `'a`
    // were mis-lexed as an unterminated char literal.
    let src = "pub fn f<'a>(x: &'a Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    assert_eq!(coords(&audit("udi-core", src)), [(NO_PANIC_IN_LIB, 2, 7)]);
}

// ------------------------------------------------------------ escape hatch

#[test]
fn trailing_allow_suppresses_own_line() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // udi-audit: allow(no-panic-in-lib, \"fixture\")\n}\n";
    assert_eq!(audit("udi-core", src), []);
}

#[test]
fn standalone_allow_covers_next_code_line() {
    let src = "\
pub fn f(x: Option<u32>) -> u32 {
    // udi-audit: allow(no-panic-in-lib, \"fixture\")
    x.unwrap()
}
";
    assert_eq!(audit("udi-core", src), []);
}

#[test]
fn allow_does_not_leak_past_its_target_line() {
    let src = "\
pub fn f(x: Option<u32>, y: Option<u32>) -> u32 {
    // udi-audit: allow(no-panic-in-lib, \"fixture\")
    let a = x.unwrap();
    a + y.unwrap()
}
";
    assert_eq!(coords(&audit("udi-core", src)), [(NO_PANIC_IN_LIB, 4, 11)]);
}

#[test]
fn allow_without_reason_is_malformed() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // udi-audit: allow(no-panic-in-lib)\n}\n";
    let diags = audit("udi-core", src);
    // The directive is rejected (malformed) and therefore does NOT
    // suppress the violation it sits on.
    let lints: Vec<&str> = diags.iter().map(|d| d.lint).collect();
    assert!(lints.contains(&MALFORMED_ALLOW), "{lints:?}");
    assert!(lints.contains(&NO_PANIC_IN_LIB), "{lints:?}");
}

#[test]
fn allow_of_unknown_lint_is_malformed() {
    let src = "pub fn f() {} // udi-audit: allow(no-such-lint, \"why\")\n";
    let diags = audit("udi-core", src);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].lint, MALFORMED_ALLOW);
}

#[test]
fn allow_that_suppresses_nothing_is_flagged_unused() {
    let src = "\
pub fn f() -> u32 {
    // udi-audit: allow(no-panic-in-lib, \"stale: the unwrap below was removed\")
    42
}
";
    let diags = audit("udi-core", src);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].lint, UNUSED_ALLOW);
    assert_eq!(diags[0].line, 2);
}

#[test]
fn doc_comments_mentioning_directives_are_not_directives() {
    let src = "\
/// Escape hatch syntax: `// udi-audit: allow(float-eq, \"reason\")`.
pub fn documented() -> u32 {
    7
}
";
    assert_eq!(audit("udi-core", src), []);
}

#[test]
fn diagnostics_render_rustc_style() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let diags = audit("udi-core", src);
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("error[udi-audit::no-panic-in-lib]:"),
        "{rendered}"
    );
    assert!(rendered.contains("fixture.rs:2:7"), "{rendered}");
}

// ------------------------------------------------------- whole-tree gating

#[test]
fn disabled_lints_are_skipped() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let mut enabled = all_lints();
    enabled.remove(NO_PANIC_IN_LIB);
    assert_eq!(
        audit_source("fixture.rs", &lib_of("udi-core"), src, &enabled),
        []
    );
}

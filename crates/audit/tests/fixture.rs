//! The deliberate-violation fixture workspace under `testdata/violations`
//! must yield exactly its expected diagnostic set — one finding per
//! workspace pass, the suppressed root absent, severities as configured.
//!
//! Keep in sync with `testdata/violations/crates/beta/src/lib.rs`.

use std::path::Path;

use udi_audit::lints::{
    Severity, CRATE_LAYERING, DEAD_EXPORT, DETERMINISM_CERT, ERROR_DISCARD, HOT_PATH_CERT,
    LOCK_ORDER_CYCLE, PANIC_REACHABILITY, SHARED_MUTABLE_STATIC, STATIC_MUT, UNUSED_ALLOW,
};
use udi_audit::{all_lints, audit_workspace, AuditReport};

fn fixture_report() -> AuditReport {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("testdata/violations");
    audit_workspace(&root, &all_lints()).expect("fixture audit runs")
}

#[test]
fn fixture_yields_exactly_the_expected_diagnostics() {
    let report = fixture_report();
    let got: Vec<(&str, &str, u32, Severity)> = report
        .diagnostics
        .iter()
        .map(|d| (d.path.as_str(), d.lint, d.line, d.severity))
        .collect();
    let alpha = "crates/alpha/src/lib.rs";
    let beta = "crates/beta/src/lib.rs";
    let expected: Vec<(&str, &str, u32, Severity)> = vec![
        ("audit.ratchet", DEAD_EXPORT, 3, Severity::Error), // stale entry (helper is live)
        (
            "crates/alpha/Cargo.toml",
            CRATE_LAYERING,
            7,
            Severity::Error,
        ), // back-edge
        (alpha, HOT_PATH_CERT, 20, Severity::Error),        // hot_tally: unwrap under guard
        ("crates/beta/Cargo.toml", CRATE_LAYERING, 8, Severity::Error), // undeclared gamma
        (beta, STATIC_MUT, 5, Severity::Error),
        (beta, SHARED_MUTABLE_STATIC, 7, Severity::Error),
        (beta, PANIC_REACHABILITY, 15, Severity::Error), // entry
        (beta, PANIC_REACHABILITY, 24, Severity::Warning), // idx (warn mode)
        (beta, LOCK_ORDER_CYCLE, 31, Severity::Error),   // take_ab/take_ba inversion
        (beta, DETERMINISM_CERT, 52, Severity::Error),   // certified → seed → HashMap
        (beta, ERROR_DISCARD, 68, Severity::Error),      // discards: let _ =
        (beta, ERROR_DISCARD, 73, Severity::Warning),    // discards_old (ratcheted)
        (beta, DEAD_EXPORT, 82, Severity::Error),        // never_used
        (beta, DEAD_EXPORT, 85, Severity::Warning),      // old_debt (ratcheted)
        (beta, UNUSED_ALLOW, 87, Severity::Error),       // stale allow
        (beta, HOT_PATH_CERT, 92, Severity::Error),      // hot_read → lock_helper
        (beta, HOT_PATH_CERT, 102, Severity::Error),     // hot_plan → io_helper
        (beta, HOT_PATH_CERT, 115, Severity::Warning),   // hot_merge spawn (ratcheted)
        (beta, HOT_PATH_CERT, 125, Severity::Error),     // hot_stream channel
    ];
    assert_eq!(
        got,
        expected,
        "full rendering:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| format!("{d}\n"))
            .collect::<String>()
    );
    assert_eq!(report.errors().count(), 15);
    assert_eq!(report.warnings().count(), 4);
    assert!(!report.is_clean());
}

#[test]
fn hot_path_cert_names_budget_chain_and_site() {
    let report = fixture_report();
    let certs: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.lint == HOT_PATH_CERT)
        .collect();
    assert_eq!(certs.len(), 5, "{certs:?}");

    // Lock violation goes through a helper, so the chain note rides along.
    let lock = certs
        .iter()
        .find(|d| d.message.contains("lock-free"))
        .expect("lock diagnostic");
    assert_eq!(
        lock.message,
        "declared lock-free entry `udi-beta::hot_read` can reach a lock acquisition"
    );
    assert_eq!(
        lock.notes[0],
        "call chain: udi-beta::hot_read → udi-beta::lock_helper"
    );
    assert!(
        lock.notes[1]
            .starts_with("site: `.lock()` guard acquisition at crates/beta/src/lib.rs:97:"),
        "{:?}",
        lock.notes
    );

    // The poison violation sits in the root itself — no chain note, and
    // the site names the guard variable.
    let poison = certs
        .iter()
        .find(|d| d.message.contains("poison-free"))
        .expect("poison diagnostic");
    assert_eq!(
        poison.message,
        "declared poison-free entry `udi-alpha::hot_tally` can reach a panic under a held lock \
         guard (mutex poison)"
    );
    assert!(
        poison.notes[0].starts_with("site: `.unwrap()` while guard `g` is held (poisons the lock)"),
        "{:?}",
        poison.notes
    );

    // `safe_tally` drops its guard before the unwrap: declared poison-free
    // and certifies clean. The spawn inside beta's #[cfg(test)] mod must
    // not fail `hot_stream`'s spawn-free budget either: its only finding
    // is the channel construction.
    assert!(
        !certs.iter().any(|d| d.message.contains("safe_tally")),
        "path-sensitive guard kill ignored: {certs:?}"
    );
    let stream: Vec<_> = certs
        .iter()
        .filter(|d| d.message.contains("hot_stream"))
        .collect();
    assert_eq!(stream.len(), 1, "{stream:?}");
    assert!(stream[0].message.contains("channel-free"), "{stream:?}");

    // The ratcheted spawn entry downgrades to a warning.
    let merge = certs
        .iter()
        .find(|d| d.message.contains("hot_merge"))
        .expect("spawn diagnostic");
    assert_eq!(merge.severity, Severity::Warning);
    assert!(merge.message.ends_with("(ratcheted)"), "{}", merge.message);
}

#[test]
fn reachability_diagnostic_carries_the_full_call_chain() {
    let report = fixture_report();
    let entry = report
        .diagnostics
        .iter()
        .find(|d| d.lint == PANIC_REACHABILITY && d.severity == Severity::Error)
        .expect("entry diagnostic");
    assert_eq!(
        entry.notes[0],
        "call chain: udi-beta::entry → udi-beta::mid → udi-alpha::risky"
    );
    assert_eq!(
        entry.notes[1],
        "panics at crates/alpha/src/lib.rs:11:13 (`unwrap`)"
    );
}

#[test]
fn lock_order_cycle_reports_both_edges_with_provenance() {
    // A → B is a direct second acquisition inside `take_ab`; B → A goes
    // through `helper_ba`, so its note must carry the call chain.
    let report = fixture_report();
    let cycle = report
        .diagnostics
        .iter()
        .find(|d| d.lint == LOCK_ORDER_CYCLE)
        .expect("cycle diagnostic");
    assert_eq!(
        cycle.message,
        "lock-order cycle: udi-beta::A → udi-beta::B → udi-beta::A"
    );
    assert_eq!(
        cycle.notes[0],
        "`udi-beta::take_ab` acquires `udi-beta::B` at crates/beta/src/lib.rs:31:16 \
         while holding `udi-beta::A`"
    );
    assert!(
        cycle.notes[1].contains("calls into `udi-beta::helper_ba`"),
        "{:?}",
        cycle.notes
    );
    assert_eq!(
        cycle.notes[2],
        "call chain: udi-beta::take_ba → udi-beta::helper_ba"
    );
}

#[test]
fn determinism_failure_names_chain_and_site() {
    let report = fixture_report();
    let cert = report
        .diagnostics
        .iter()
        .find(|d| d.lint == DETERMINISM_CERT)
        .expect("determinism diagnostic");
    assert_eq!(
        cert.message,
        "declared deterministic entry `udi-beta::certified` can reach hash-ordered iteration"
    );
    assert_eq!(
        cert.notes[0],
        "call chain: udi-beta::certified → udi-beta::seed"
    );
    assert_eq!(
        cert.notes[1],
        "site: `HashMap` at crates/beta/src/lib.rs:57:30 (hash-ordered iteration)"
    );
}

#[test]
fn error_discard_distinguishes_let_from_bare_statement() {
    let report = fixture_report();
    let discards: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.lint == ERROR_DISCARD)
        .collect();
    assert_eq!(discards.len(), 2);
    assert_eq!(
        discards[0].message,
        "`let _ =` discards the `Result` of `udi-beta::fallible`"
    );
    assert_eq!(
        discards[1].message,
        "bare statement drops the `Result` of `udi-beta::fallible` (ratcheted)"
    );
    assert_eq!(discards[1].severity, Severity::Warning);
}

#[test]
fn allowed_root_is_suppressed() {
    // `suppressed_root` reaches the same unwrap as `entry` but carries a
    // reasoned allow(panic-reachability) — it must not appear at all, and
    // the directive must not be flagged unused. Likewise the two
    // shared-mutable-static allows on the lock-order scaffolding statics.
    let report = fixture_report();
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.message.contains("suppressed_root")),
        "suppressed root leaked into diagnostics"
    );
    let unused: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.lint == UNUSED_ALLOW)
        .collect();
    assert_eq!(
        unused.len(),
        1,
        "only the deliberate stale allow: {unused:?}"
    );
    assert_eq!(unused[0].line, 87);
}

#[test]
fn json_rendering_is_parseable_shape() {
    let report = fixture_report();
    let json = report.to_json();
    assert!(json.starts_with("{\"files_scanned\":2,"), "{json}");
    assert!(json.contains("\"errors\":15"), "{json}");
    assert!(json.contains("\"warnings\":4"), "{json}");
    assert!(json.contains("\"lint\":\"panic-reachability\""), "{json}");
    // Per-lint counts ride in the summary for CI dashboards.
    assert!(json.contains("\"by_lint\":{"), "{json}");
    assert!(json.contains("\"lock-order-cycle\":1"), "{json}");
    assert!(json.contains("\"determinism-cert\":1"), "{json}");
    assert!(json.contains("\"error-discard\":2"), "{json}");
    assert!(json.contains("\"hot-path-cert\":5"), "{json}");
    // Notes with special characters survive escaping (the → arrow is
    // plain UTF-8; quotes and backslashes are escaped).
    assert!(json.contains("call chain: udi-beta::entry"), "{json}");
    assert_eq!(json.matches("\"severity\":\"warning\"").count(), 4);
}

#[test]
fn fixture_lexes_each_file_once() {
    let report = fixture_report();
    assert_eq!(report.files_scanned, 2);
    assert_eq!(report.lex_count, report.files_scanned);
}

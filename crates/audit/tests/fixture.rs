//! The deliberate-violation fixture workspace under `testdata/violations`
//! must yield exactly its expected diagnostic set — one finding per
//! workspace pass, the suppressed root absent, severities as configured.
//!
//! Keep in sync with `testdata/violations/crates/beta/src/lib.rs`.

use std::path::Path;

use udi_audit::lints::{
    Severity, CRATE_LAYERING, DEAD_EXPORT, LOCK_ACROSS_CRATE_CALL, PANIC_REACHABILITY,
    SHARED_MUTABLE_STATIC, STATIC_MUT, UNUSED_ALLOW,
};
use udi_audit::{all_lints, audit_workspace, AuditReport};

fn fixture_report() -> AuditReport {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("testdata/violations");
    audit_workspace(&root, &all_lints()).expect("fixture audit runs")
}

#[test]
fn fixture_yields_exactly_the_expected_diagnostics() {
    let report = fixture_report();
    let got: Vec<(&str, &str, u32, Severity)> = report
        .diagnostics
        .iter()
        .map(|d| (d.path.as_str(), d.lint, d.line, d.severity))
        .collect();
    let expected: Vec<(&str, &str, u32, Severity)> = vec![
        ("audit.ratchet", DEAD_EXPORT, 3, Severity::Error), // stale entry
        (
            "crates/alpha/Cargo.toml",
            CRATE_LAYERING,
            7,
            Severity::Error,
        ), // back-edge
        ("crates/beta/Cargo.toml", CRATE_LAYERING, 8, Severity::Error), // undeclared gamma
        ("crates/beta/src/lib.rs", STATIC_MUT, 5, Severity::Error),
        (
            "crates/beta/src/lib.rs",
            SHARED_MUTABLE_STATIC,
            7,
            Severity::Error,
        ),
        (
            "crates/beta/src/lib.rs",
            PANIC_REACHABILITY,
            10,
            Severity::Error,
        ), // entry
        (
            "crates/beta/src/lib.rs",
            PANIC_REACHABILITY,
            19,
            Severity::Warning,
        ), // idx (warn mode)
        (
            "crates/beta/src/lib.rs",
            LOCK_ACROSS_CRATE_CALL,
            25,
            Severity::Error,
        ), // flush
        ("crates/beta/src/lib.rs", DEAD_EXPORT, 36, Severity::Error), // never_used
        ("crates/beta/src/lib.rs", DEAD_EXPORT, 39, Severity::Warning), // old_debt (ratcheted)
        ("crates/beta/src/lib.rs", UNUSED_ALLOW, 41, Severity::Error), // stale allow
    ];
    assert_eq!(
        got,
        expected,
        "full rendering:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| format!("{d}\n"))
            .collect::<String>()
    );
    assert_eq!(report.errors().count(), 9);
    assert_eq!(report.warnings().count(), 2);
    assert!(!report.is_clean());
}

#[test]
fn reachability_diagnostic_carries_the_full_call_chain() {
    let report = fixture_report();
    let entry = report
        .diagnostics
        .iter()
        .find(|d| d.lint == PANIC_REACHABILITY && d.severity == Severity::Error)
        .expect("entry diagnostic");
    assert_eq!(
        entry.notes[0],
        "call chain: udi-beta::entry → udi-beta::mid → udi-alpha::risky"
    );
    assert_eq!(
        entry.notes[1],
        "panics at crates/alpha/src/lib.rs:11:13 (`unwrap`)"
    );
}

#[test]
fn allowed_root_is_suppressed() {
    // `suppressed_root` reaches the same unwrap as `entry` but carries a
    // reasoned allow(panic-reachability) — it must not appear at all, and
    // the directive must not be flagged unused.
    let report = fixture_report();
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.message.contains("suppressed_root")),
        "suppressed root leaked into diagnostics"
    );
    let unused: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.lint == UNUSED_ALLOW)
        .collect();
    assert_eq!(
        unused.len(),
        1,
        "only the deliberate stale allow: {unused:?}"
    );
    assert_eq!(unused[0].line, 41);
}

#[test]
fn json_rendering_is_parseable_shape() {
    let report = fixture_report();
    let json = report.to_json();
    assert!(json.starts_with("{\"files_scanned\":2,"), "{json}");
    assert!(json.contains("\"errors\":9"), "{json}");
    assert!(json.contains("\"warnings\":2"), "{json}");
    assert!(json.contains("\"lint\":\"panic-reachability\""), "{json}");
    // Notes with special characters survive escaping (the → arrow is
    // plain UTF-8; quotes and backslashes are escaped).
    assert!(json.contains("call chain: udi-beta::entry"), "{json}");
    assert_eq!(json.matches("\"severity\":\"warning\"").count(), 2);
}

#[test]
fn fixture_lexes_each_file_once() {
    let report = fixture_report();
    assert_eq!(report.files_scanned, 2);
    assert_eq!(report.lex_count, report.files_scanned);
}

//! Fixture crate `udi-beta` (layer 1): one deliberate violation per
//! workspace pass. Expected diagnostics are asserted exactly in
//! `crates/audit/tests/fixture.rs` — keep the two in sync when editing.

static mut COUNTER: u32 = 0;

static CACHE: std::sync::Mutex<u32> = std::sync::Mutex::new(0);

// udi-audit: allow(shared-mutable-static, "fixture: lock-order scaffolding")
pub static A: std::sync::Mutex<i32> = std::sync::Mutex::new(0);
// udi-audit: allow(shared-mutable-static, "fixture: lock-order scaffolding")
pub static B: std::sync::Mutex<i32> = std::sync::Mutex::new(0);

/// Reaches `udi-alpha::risky`'s unwrap through `mid` — error with chain.
pub fn entry() -> u32 {
    mid()
}

fn mid() -> u32 {
    udi_alpha::risky()
}

/// Indexing is a soft site; `index-sites = "warn"` makes this a warning.
pub fn idx(v: &[u8]) -> u8 {
    v[0]
}

/// Takes `A` then `B` — one direction of the deadlock cycle.
pub fn take_ab() {
    let a = A.lock();
    let _b = B.lock();
    drop(a);
}

/// Takes `B`, then acquires `A` through `helper_ba` — the inverted
/// order closes the cycle interprocedurally. The cross-crate call while
/// holding `B` is fine on its own (the v2 heuristic would have flagged
/// it); only the acquisition order matters now.
pub fn take_ba() {
    let b = B.lock();
    helper_ba();
    udi_alpha::helper();
    drop(b);
}

fn helper_ba() {
    let _a = A.lock();
}

/// Declared deterministic in audit.toml but reaches a `HashMap` through
/// `seed` — the certification fails with chain and site.
pub fn certified() -> usize {
    seed()
}

fn seed() -> usize {
    let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    m.len()
}

/// Fallible helper for the error-discard fixtures.
pub fn fallible() -> Result<(), ()> {
    Ok(())
}

/// `let _ =` discard — new debt, errors.
pub fn discards() {
    let _ = fallible();
}

/// Bare-statement discard, frozen in audit.ratchet — warning.
pub fn discards_old() {
    fallible();
}

// udi-audit: allow(panic-reachability, "fixture: acknowledged root")
pub fn suppressed_root() -> u32 {
    udi_alpha::risky()
}

/// Dead: nothing in the fixture names this, and it is not ratcheted.
pub fn never_used() {}

/// Dead but frozen in audit.ratchet — downgraded to a warning.
pub fn old_debt() {}

// udi-audit: allow(static-mut, "fixture: stale directive, suppresses nothing")
fn quiet() {}

/// Declared lock-free in audit.toml but takes the cache mutex through
/// `lock_helper` — hot-path-cert error with chain and site.
pub fn hot_read() -> u32 {
    lock_helper()
}

fn lock_helper() -> u32 {
    let _g = CACHE.lock();
    7
}

/// Declared io-free but touches the filesystem through `io_helper`.
pub fn hot_plan(p: &str) -> usize {
    io_helper(p)
}

fn io_helper(p: &str) -> usize {
    match std::fs::read_to_string(p) {
        Ok(s) => s.len(),
        Err(_) => 0,
    }
}

/// Declared spawn-free and frozen in audit.ratchet — the spawn is
/// reported as a ratcheted warning, not an error.
pub fn hot_merge() -> u32 {
    match std::thread::spawn(|| 3).join() {
        Ok(v) => v,
        Err(_) => 0,
    }
}

/// Declared channel-free (violated below) *and* spawn-free (clean): the
/// spawn in the `#[cfg(test)]` module of this file must not leak into
/// the certificate.
pub fn hot_stream() -> u32 {
    let (tx, rx) = std::sync::mpsc::channel();
    tx.send(9).ok();
    rx.recv().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn consumers() {
        // References keep the deliberate-violation fns live for the
        // dead-export pass (tests are legitimate consumers).
        let _ = (
            super::entry as fn() -> u32,
            super::idx as fn(&[u8]) -> u8,
            super::take_ab as fn(),
            super::take_ba as fn(),
            super::certified as fn() -> usize,
            super::discards as fn(),
            super::discards_old as fn(),
            super::suppressed_root as fn() -> u32,
            super::quiet as fn(),
        );
        let _ = (unsafe { super::COUNTER }, &super::CACHE);
        let _ = (
            super::hot_read as fn() -> u32,
            super::hot_plan as fn(&str) -> usize,
            super::hot_merge as fn() -> u32,
            super::hot_stream as fn() -> u32,
            udi_alpha::hot_tally as fn(&[u32]) -> u32,
            udi_alpha::safe_tally as fn(&[u32]) -> u32,
        );
    }

    #[test]
    fn test_spawn_is_out_of_certificate_scope() {
        // A spawn inside #[cfg(test)] must not fail `hot_stream`'s
        // spawn-free budget — test code is excluded from effect inference.
        let h = std::thread::spawn(super::hot_stream);
        let _ = h.join();
    }
}

//! Fixture crate `udi-beta` (layer 1): one deliberate violation per
//! workspace pass. Expected diagnostics are asserted exactly in
//! `crates/audit/tests/fixture.rs` — keep the two in sync when editing.

static mut COUNTER: u32 = 0;

static CACHE: std::sync::Mutex<u32> = std::sync::Mutex::new(0);

/// Reaches `udi-alpha::risky`'s unwrap through `mid` — error with chain.
pub fn entry() -> u32 {
    mid()
}

fn mid() -> u32 {
    udi_alpha::risky()
}

/// Indexing is a soft site; `index-sites = "warn"` makes this a warning.
pub fn idx(v: &[u8]) -> u8 {
    v[0]
}

/// Holds the guard across a structurally-resolved call into `udi-alpha`.
pub fn flush(buf: &std::sync::Mutex<Vec<u8>>) {
    let guard = buf.lock();
    udi_alpha::helper();
    drop(guard);
}

// udi-audit: allow(panic-reachability, "fixture: acknowledged root")
pub fn suppressed_root() -> u32 {
    udi_alpha::risky()
}

/// Dead: nothing in the fixture names this, and it is not ratcheted.
pub fn never_used() {}

/// Dead but frozen in audit.ratchet — downgraded to a warning.
pub fn old_debt() {}

// udi-audit: allow(static-mut, "fixture: stale directive, suppresses nothing")
fn quiet() {}

#[cfg(test)]
mod tests {
    #[test]
    fn consumers() {
        // References keep entry/idx/flush/suppressed_root/quiet live for
        // the dead-export pass (tests are legitimate consumers).
        let _ = (
            super::entry as fn() -> u32,
            super::idx as fn(&[u8]) -> u8,
            super::flush as fn(&std::sync::Mutex<Vec<u8>>),
            super::suppressed_root as fn() -> u32,
            super::quiet as fn(),
        );
        let _ = (unsafe { super::COUNTER }, &super::CACHE);
    }
}

//! Fixture crate `udi-alpha` (layer 0). Its own pub fns are *not* in the
//! panic-reachability root set — `risky` only matters because `udi-beta`
//! reaches it.

/// Clean helper, called by `udi-beta::flush`. Listed in the fixture
/// ratchet even though it is used — that entry must error as stale.
pub fn helper() {}

/// Panics; a reachability source for `udi-beta::entry`.
pub fn risky() -> u32 {
    Some(1).unwrap()
}

// udi-audit: allow(shared-mutable-static, "fixture: hot-path scaffolding")
static TALLY: std::sync::Mutex<u32> = std::sync::Mutex::new(0);

/// Declared poison-free in audit.toml but can panic while the guard is
/// live — the guard-range dataflow sees the held fact at the unwrap
/// (hot-path-cert error).
pub fn hot_tally(v: &[u32]) -> u32 {
    let g = TALLY.lock();
    let first = v.first().copied().unwrap();
    drop(g);
    first
}

/// Also declared poison-free, and genuinely so: `drop(g)` kills the
/// guard fact before the panic-capable call, so the certificate stays
/// clean — the analysis is path-sensitive, not token-counting.
pub fn safe_tally(v: &[u32]) -> u32 {
    let g = TALLY.lock();
    drop(g);
    v.first().copied().unwrap()
}

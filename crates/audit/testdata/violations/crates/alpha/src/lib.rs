//! Fixture crate `udi-alpha` (layer 0). Its own pub fns are *not* in the
//! panic-reachability root set — `risky` only matters because `udi-beta`
//! reaches it.

/// Clean helper, called by `udi-beta::flush`. Listed in the fixture
/// ratchet even though it is used — that entry must error as stale.
pub fn helper() {}

/// Panics; a reachability source for `udi-beta::entry`.
pub fn risky() -> u32 {
    Some(1).unwrap()
}

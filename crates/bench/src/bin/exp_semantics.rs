//! Extension experiment: by-table vs by-tuple answering semantics.
//!
//! The paper evaluates by-table semantics ("there is one single possible
//! mapping that is correct and it applies to all tuples in the source
//! table"); Dong, Halevy & Yu's uncertainty framework also defines
//! by-tuple semantics, where every source row selects its own mapping.
//! This experiment measures both on the ambiguity stress corpus, where
//! they actually diverge, and on a benchmark domain, where they should
//! nearly coincide.

use udi_bench::{ambiguous_people_concepts, banner, fmt_prf, seed, sources_for};
use udi_core::{UdiConfig, UdiSystem};
use udi_datagen::{generate, generate_with_concepts, Domain, GenConfig, GeneratedDomain};
use udi_eval::{generate_workload, score, GoldenIntegrator, Metrics};

fn run(label: &str, gen: &GeneratedDomain) {
    let udi = UdiSystem::setup(gen.catalog.clone(), UdiConfig::default()).expect("setup");
    let golden = GoldenIntegrator::new(&gen.catalog, &gen.truth);
    let queries = generate_workload(gen, 10, seed().wrapping_add(1));
    println!("\n-- {label} --");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>11}",
        "Semantics", "Precision", "Recall", "F-measure", "Δ answers"
    );
    let mut divergent = 0usize;
    let metrics = |by_tuple: bool| -> Metrics {
        let per_query: Vec<Metrics> = queries
            .iter()
            .map(|q| {
                let ans = if by_tuple {
                    udi.answer_by_tuple(q)
                } else {
                    udi.answer(q)
                };
                let rows = golden.golden_rows(q);
                score(ans.flat(), rows.iter())
            })
            .collect();
        Metrics::average(&per_query)
    };
    for q in &queries {
        let a = udi.answer(q).combined();
        let b = udi.answer_by_tuple(q).combined();
        let differs = a.len() != b.len()
            || a.iter().any(|x| {
                b.iter()
                    .find(|y| y.values == x.values)
                    .is_none_or(|y| (y.probability - x.probability).abs() > 1e-9)
            });
        if differs {
            divergent += 1;
        }
    }
    println!("{:<10} {}", "by-table", fmt_prf(metrics(false)));
    println!(
        "{:<10} {}       {divergent}/{} queries diverge",
        "by-tuple",
        fmt_prf(metrics(true)),
        queries.len()
    );
}

fn main() {
    banner("Extension: by-table vs by-tuple answering semantics");
    let bib = generate(
        Domain::Bib,
        &GenConfig {
            n_sources: Some(sources_for(Domain::Bib).min(160)),
            seed: seed(),
            ..GenConfig::default()
        },
    );
    run("Bib benchmark corpus", &bib);

    let amb = generate_with_concepts(
        Domain::People,
        ambiguous_people_concepts(),
        &GenConfig {
            n_sources: Some(49),
            seed: seed(),
            ..GenConfig::default()
        },
    );
    run("Example 2.1 ambiguity corpus", &amb);

    println!(
        "\nExpected shape: identical flat metrics (both semantics return the \
         same possible tuples); probabilities diverge only where one answer \
         tuple is producible by several rows of a source — common under \
         genuine ambiguity, rare otherwise."
    );
    println!("peak RSS: {}", udi_obs::fmt_rss(udi_obs::peak_rss_bytes()));
}

//! Diagnostic tool: print the default attribute similarity for name pairs.
//!
//! Usage: `simprobe a b` for one pair, or no arguments to dump the pairwise
//! matrix of every attribute-name variant of every domain, annotated with
//! its Algorithm 1 classification under the paper's thresholds
//! (τ = 0.85, ε = 0.02).

use udi_datagen::Domain;
use udi_similarity::{AttributeSimilarity, Similarity};

fn class(w: f64) -> &'static str {
    if w >= 0.87 {
        "CERTAIN"
    } else if w >= 0.83 {
        "uncertain"
    } else {
        "-"
    }
}

fn main() {
    let sim = AttributeSimilarity::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() == 2 {
        let w = sim.similarity(&args[0], &args[1]);
        println!("s({:?}, {:?}) = {w:.4}  [{}]", args[0], args[1], class(w));
        return;
    }
    for d in Domain::all() {
        println!("== {} ==", d.name());
        let names: Vec<(&str, &str)> = d
            .concepts()
            .iter()
            .flat_map(|c| {
                let key = c.key;
                c.variants.iter().map(move |v| (key, *v))
            })
            .collect();
        for (i, &(ka, a)) in names.iter().enumerate() {
            for &(kb, b) in &names[i + 1..] {
                if a == b {
                    continue;
                }
                let w = sim.similarity(a, b);
                if w >= 0.80 {
                    let marker = if ka == kb {
                        "same-concept"
                    } else {
                        "CROSS-CONCEPT"
                    };
                    println!("  {w:.4} [{:>9}] {a:?} ~ {b:?}  ({marker})", class(w));
                }
            }
        }
    }
}

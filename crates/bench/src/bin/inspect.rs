//! Diagnostic tool: print the generated p-med-schema, consolidated
//! clusters, and per-query metrics for one domain.
//!
//! Usage: `inspect [movie|car|people|course|bib]` (default: people), with
//! the usual `UDI_SCALE` / `UDI_SEED` environment overrides.

use udi_baselines::Udi;
use udi_bench::{banner, seed, sources_for};
use udi_datagen::Domain;
use udi_eval::harness::prepare;
use udi_eval::score;

fn main() {
    let domain = match std::env::args().nth(1).as_deref() {
        Some("movie") => Domain::Movie,
        Some("car") => Domain::Car,
        Some("course") => Domain::Course,
        Some("bib") => Domain::Bib,
        _ => Domain::People,
    };
    banner(&format!("Inspect: {} domain", domain.name()));
    let d = prepare(domain, Some(sources_for(domain)), seed()).expect("setup");
    let vocab = d.udi.schema_set().vocab();

    println!(
        "\n## p-med-schema ({} possible schemas)",
        d.udi.pmed().len()
    );
    for (m, p) in d.udi.pmed().schemas() {
        println!("  Pr={p:.3}  {}", m.display(vocab));
    }

    println!("\n## consolidated schema (exposed)");
    for (rep, members) in d.udi.exposed_schema() {
        println!("  {rep:<18} = {{{}}}", members.join(", "));
    }

    println!("\n## per-query metrics vs true golden standard");
    let golden = d.golden_rows();
    for (q, g) in d.queries.iter().zip(&golden) {
        let ans = Udi(&d.udi).0.answer(q);
        let m = score(ans.flat(), g.iter());
        println!(
            "  P={:.2} R={:.2} |golden|={:<4} |answers|={:<4}  {}",
            m.precision,
            m.recall,
            g.len(),
            ans.len(),
            q
        );
        if m.precision < 0.9 {
            // Show a few wrong answers with their provenance.
            let mut shown = 0;
            for (sid, tuples) in ans.by_source() {
                for t in tuples {
                    if !g.contains(&t.values) && shown < 3 {
                        let vals: Vec<String> = t.values.iter().map(ToString::to_string).collect();
                        let table = d.gen.catalog.source(*sid).unwrap();
                        println!(
                            "      wrong (p={:.3}) from {} {:?}: ({})",
                            t.probability,
                            table.name(),
                            table.attributes(),
                            vals.join(", ")
                        );
                        shown += 1;
                    }
                }
                if shown >= 3 {
                    break;
                }
            }
        }
    }
}

//! Figure 5 — "Performance of query answering of the UDI system and
//! approaches that generate deterministic mediated schemas" (`SingleMed`,
//! `UnionAll`). "We did not plot the measures for UnionAll in the Bib domain
//! as this approach ran out of memory in system setup."

use udi_baselines::{Integrator, SingleMed, Udi, UnionAll};
use udi_bench::{banner, fmt_prf, prepare_traced, seed, sources_for, BenchObs};
use udi_core::UdiConfig;
use udi_datagen::Domain;

fn main() {
    banner("Figure 5: UDI vs deterministic mediated schemas (P / R / F)");
    let obs = BenchObs::from_args();
    for domain in Domain::all() {
        let d = prepare_traced(&obs, domain, Some(sources_for(domain)), seed()).expect("setup");
        let golden = d.approximate_golden_rows();
        println!("\n-- {} --", domain.name());
        println!(
            "{:<11} {:>9} {:>9} {:>9}",
            "Approach", "Precision", "Recall", "F-measure"
        );

        let m = d.evaluate(&Udi(&d.udi), &golden);
        println!("{:<11} {}", "UDI", fmt_prf(m));

        match SingleMed::setup(d.gen.catalog.clone(), UdiConfig::default()) {
            Ok(sm) => {
                let m = d.evaluate(&sm, &golden);
                println!("{:<11} {}", sm.name(), fmt_prf(m));
            }
            Err(e) => println!("{:<11} setup failed: {e}", "SingleMed"),
        }

        // UnionAll is run with a memory/time-equivalent budget: a cap on
        // explicit mappings per p-mapping plus a bounded solver. Exceeding
        // the cap is the setup failure (OOM) the paper reports for Bib;
        // 2008-era hardware had ~2 GB to hold the mapping tables in.
        let mut ua_config = UdiConfig::default();
        ua_config.params.mapping_cap = 20_000;
        ua_config.params.maxent.max_iterations = 2_000;
        ua_config.params.maxent.acceptable_residual = 1e-2;
        match UnionAll::setup(d.gen.catalog.clone(), ua_config) {
            Ok(ua) => {
                let m = d.evaluate(&ua, &golden);
                println!("{:<11} {}", ua.name(), fmt_prf(m));
            }
            Err(e) => println!("{:<11} out of memory analogue: {e}", "UnionAll"),
        }
    }
    println!();
    println!(
        "Paper reference (shape): SingleMed precision ≈ UDI, recall lower on \
         ambiguous-attribute queries; UnionAll high precision, much lower \
         recall, and a state explosion on Bib."
    );
    obs.finish();
}

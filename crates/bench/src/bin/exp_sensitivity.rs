//! §7.1's robustness claim: "Our experiments showed similar results even
//! when the above constants were varied by 20%."
//!
//! Sweeps each setup parameter (τ, ε, θ, correspondence threshold) ±20%
//! around its default, one at a time, on the Bib domain, and reports the
//! Table 2-style F-measure against the true golden standard. The expected
//! shape is a flat row: quality should not be threshold-knife-edged.

use udi_bench::{banner, fmt_prf, seed, sources_for};
use udi_core::{UdiConfig, UdiSystem};
use udi_datagen::{generate, Domain, GenConfig};
use udi_eval::{generate_workload, score, GoldenIntegrator, Metrics};

fn evaluate(config: UdiConfig, gen: &udi_datagen::GeneratedDomain) -> Result<Metrics, String> {
    let udi = UdiSystem::setup(gen.catalog.clone(), config).map_err(|e| e.to_string())?;
    let golden = GoldenIntegrator::new(&gen.catalog, &gen.truth);
    let queries = generate_workload(gen, 10, seed().wrapping_add(1));
    let per_query: Vec<Metrics> = queries
        .iter()
        .map(|q| {
            let rows = golden.golden_rows(q);
            score(udi.answer(q).flat(), rows.iter())
        })
        .collect();
    Ok(Metrics::average(&per_query))
}

fn main() {
    banner("Extension: ±20% parameter sensitivity (Bib, true golden standard)");
    let domain = Domain::Bib;
    let gen = generate(
        domain,
        &GenConfig {
            n_sources: Some(sources_for(domain)),
            seed: seed(),
            ..GenConfig::default()
        },
    );

    println!(
        "{:<28} {:>9} {:>9} {:>9}",
        "Configuration", "Precision", "Recall", "F-measure"
    );
    let base = UdiConfig::default();
    match evaluate(base.clone(), &gen) {
        Ok(m) => println!("{:<28} {}", "defaults", fmt_prf(m)),
        Err(e) => println!("{:<28} setup failed: {e}", "defaults"),
    }

    type Knob = (&'static str, fn(&mut UdiConfig, f64), f64);
    let knobs: [Knob; 4] = [
        ("tau", |c, v| c.params.tau = v, base.params.tau),
        ("epsilon", |c, v| c.params.epsilon = v, base.params.epsilon),
        ("theta", |c, v| c.params.theta = v, base.params.theta),
        (
            "corr_threshold",
            |c, v| c.params.corr_threshold = v,
            base.params.corr_threshold,
        ),
    ];
    for (name, set, default) in knobs {
        for factor in [0.8, 1.2] {
            let mut config = UdiConfig::default();
            // Thresholds live on the [0, 1] similarity scale; +20% of 0.85
            // would leave it, so cap just below the scale's top.
            let v = (default * factor).min(0.99);
            set(&mut config, v);
            // Keep the pair floor consistent with a moved band.
            config.params.pair_floor =
                (config.params.tau - config.params.epsilon).min(config.params.pair_floor);
            // A drastically lowered tau floods the band with uncertain
            // edges; bound the schema enumeration so the sweep stays a
            // sweep rather than a 4096-schema build.
            config.params.max_uncertain_edges = 6;
            let label = format!("{name} = {v:.3} ({:+.0}%)", (factor - 1.0) * 100.0);
            match evaluate(config, &gen) {
                Ok(m) => println!("{label:<28} {}", fmt_prf(m)),
                Err(e) => println!("{label:<28} setup failed: {e}"),
            }
        }
    }
    println!(
        "\nPaper reference (shape): quality is stable under ±20% parameter \
         changes (§7.1)."
    );
    println!("peak RSS: {}", udi_obs::fmt_rss(udi_obs::peak_rss_bytes()));
}

//! Figure 6 — "R-P curves for the Movie domain. The experimental results
//! show that UDI ranks query answers better."
//!
//! Duplicates are eliminated and probabilities combined (disjunction), then
//! recall is varied by taking top-K ranked answers and the precision of each
//! prefix is reported (§7.4).

use udi_baselines::{Integrator, SingleMed, Udi};
use udi_bench::{banner, prepare_traced, seed, sources_for, BenchObs};
use udi_core::UdiConfig;
use udi_datagen::Domain;
use udi_eval::{precision_at_recall, rp_curve, GoldenIntegrator, RpPoint};
use udi_query::Query;
use udi_store::Row;

/// Pool the R-P curves of all workload queries: at each recall level,
/// average the interpolated precision over queries with non-empty goldens.
fn pooled_curve(
    answer: &dyn Integrator,
    queries: &[Query],
    goldens: &[Vec<Row>],
    levels: &[f64],
) -> Vec<RpPoint> {
    let curves: Vec<Vec<RpPoint>> = queries
        .iter()
        .zip(goldens)
        .filter(|(_, g)| !g.is_empty())
        .map(|(q, g)| rp_curve(&answer.answer(q).combined(), g))
        .collect();
    levels
        .iter()
        .map(|&r| {
            let p = curves
                .iter()
                .map(|c| precision_at_recall(c, r))
                .sum::<f64>()
                / curves.len().max(1) as f64;
            RpPoint {
                recall: r,
                precision: p,
            }
        })
        .collect()
}

fn main() {
    banner("Figure 6: R-P curves, Movie domain (UDI vs SingleMed)");
    let obs = BenchObs::from_args();
    let domain = Domain::Movie;
    let d = prepare_traced(&obs, domain, Some(sources_for(domain)), seed()).expect("setup");
    let g = GoldenIntegrator::new(&d.gen.catalog, &d.gen.truth);
    let goldens: Vec<Vec<Row>> = d.queries.iter().map(|q| g.golden_rows(q)).collect();
    let sm = SingleMed::setup(d.gen.catalog.clone(), UdiConfig::default()).expect("setup");

    let levels: Vec<f64> = (1..=10).map(|k| k as f64 / 10.0).collect();
    let udi_curve = pooled_curve(&Udi(&d.udi), &d.queries, &goldens, &levels);
    let sm_curve = pooled_curve(&sm, &d.queries, &goldens, &levels);

    println!("{:>7} {:>12} {:>12}", "Recall", "UDI P", "SingleMed P");
    for (u, s) in udi_curve.iter().zip(&sm_curve) {
        println!(
            "{:>7.1} {:>12.3} {:>12.3}",
            u.recall, u.precision, s.precision
        );
    }
    let auc = |c: &[RpPoint]| c.iter().map(|p| p.precision).sum::<f64>() / c.len() as f64;
    println!(
        "\nMean interpolated precision: UDI {:.3}, SingleMed {:.3}",
        auc(&udi_curve),
        auc(&sm_curve)
    );
    println!(
        "Paper reference (shape): at fixed recall UDI's precision dominates \
         SingleMed's; both curves decline as recall → 1."
    );
    obs.finish();
}

//! Query serving throughput over the prepared-plan layer (Car domain).
//!
//! The paper's setting is a serving one: setup happens once, then the
//! system answers a stream of queries. This experiment measures that
//! steady state — plans warm in the cache, execution fanned across 1..=8
//! threads — as queries/sec over the standard workload on the 817-source
//! Car corpus, and verifies the serving layer's two invariants along the
//! way:
//!
//! * **byte identity** — at every thread count, warm-plan answers carry
//!   exactly the same values and probability bit patterns as the
//!   sequential cold-cache baseline;
//! * **scaling** — 4 threads deliver ≥ 2.5× the single-thread throughput
//!   (asserted in full mode on machines with ≥ 4 cores).
//!
//! `--smoke` runs a small corpus at 1–2 threads with no scaling assertion
//! — the CI configuration, proving the binary and the identity check work
//! without paying for the full corpus.

use std::time::{Duration, Instant};

use udi_bench::{banner, seed, sources_for, BenchObs};
use udi_core::{UdiConfig, UdiSystem};
use udi_datagen::{generate, Domain, GenConfig};
use udi_eval::generate_workload;
use udi_query::AnswerSet;

/// Exact fingerprint of an answer set: source id, rendered values, raw
/// probability bits.
fn bits(set: &AnswerSet) -> Vec<(u32, String, u64)> {
    set.by_source()
        .iter()
        .flat_map(|(sid, ts)| {
            ts.iter()
                .map(|t| (sid.0, format!("{:?}", t.values), t.probability.to_bits()))
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(if smoke {
        "Query serving throughput — smoke mode"
    } else {
        "Query serving throughput at 1..=8 threads (Car domain)"
    });
    let obs = BenchObs::from_args();

    let n = if smoke { 40 } else { sources_for(Domain::Car) };
    let gen = generate(
        Domain::Car,
        &GenConfig {
            n_sources: Some(n),
            seed: seed(),
            ..GenConfig::default()
        },
    );
    println!("corpus: {n} Car sources; setting up once…");
    let t0 = Instant::now();
    let mut udi = match obs.sink() {
        Some(sink) => UdiSystem::setup_observed(gen.catalog.clone(), UdiConfig::default(), sink),
        None => UdiSystem::setup(gen.catalog.clone(), UdiConfig::default()),
    }
    .expect("setup");
    println!("setup in {:.1?}", t0.elapsed());

    let queries = generate_workload(&gen, 10, seed().wrapping_add(1));

    // Sequential cold-cache baseline: the first pass compiles every plan
    // (misses), and its answers are the reference bit patterns every other
    // configuration must reproduce.
    udi.set_threads(1);
    let baseline: Vec<Vec<(u32, String, u64)>> =
        queries.iter().map(|q| bits(&udi.answer(q))).collect();
    println!(
        "plans compiled: {} cached, {} answers on the workload",
        udi.plan_cache_len(),
        baseline.iter().map(Vec::len).sum::<usize>()
    );
    println!();

    let thread_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let min_measure = if smoke {
        Duration::from_millis(200)
    } else {
        Duration::from_secs(2)
    };

    println!(
        "{:>8} {:>8} {:>12} {:>9} {:>10}",
        "threads", "passes", "queries/s", "speedup", "answers"
    );
    let mut qps_at: Vec<(usize, f64)> = Vec::new();
    for &threads in thread_counts {
        udi.set_threads(threads);
        // Warm pass doubling as the identity check. Threaded passes go
        // through the explicit opt-in `answer_parallel` entry point — the
        // plain `answer` path is certified spawn-free by udi-audit.
        let mut identical = true;
        for (q, expect) in queries.iter().zip(&baseline) {
            let got = if threads > 1 {
                udi.answer_parallel(q)
            } else {
                udi.answer(q)
            };
            if &bits(&got) != expect {
                identical = false;
            }
        }
        // Timed passes over the warm cache.
        let t0 = Instant::now();
        let mut executed = 0u64;
        let mut passes = 0u64;
        while t0.elapsed() < min_measure || passes < 2 {
            for q in &queries {
                if threads > 1 {
                    std::hint::black_box(udi.answer_parallel(q));
                } else {
                    std::hint::black_box(udi.answer(q));
                }
                executed += 1;
            }
            passes += 1;
        }
        let qps = executed as f64 / t0.elapsed().as_secs_f64();
        let speedup = qps / qps_at.first().map(|&(_, q)| q).unwrap_or(qps);
        println!(
            "{:>8} {:>8} {:>12.1} {:>8.2}x {:>10}",
            threads,
            passes,
            qps,
            speedup,
            if identical { "identical" } else { "DIFFER" }
        );
        assert!(
            identical,
            "answers at {threads} threads diverged from the sequential baseline"
        );
        qps_at.push((threads, qps));
    }

    println!();
    if smoke {
        println!("Smoke mode: scaling not asserted (corpus too small to amortize).");
    } else {
        let base = qps_at[0].1;
        let at4 = qps_at
            .iter()
            .find(|&&(t, _)| t == 4)
            .map(|&(_, q)| q)
            .unwrap_or(base);
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        println!(
            "Headline: {:.2}x throughput at 4 threads vs 1 ({:.1} → {:.1} q/s), \
             answers byte-identical at every thread count.",
            at4 / base,
            base,
            at4
        );
        if cores >= 4 {
            assert!(
                at4 / base >= 2.5,
                "expected >=2.5x at 4 threads, got {:.2}x",
                at4 / base
            );
        } else {
            println!("(scaling assertion skipped: only {cores} cores available)");
        }
    }
    println!("peak RSS: {}", udi_obs::fmt_rss(udi_obs::peak_rss_bytes()));
    obs.finish();
}

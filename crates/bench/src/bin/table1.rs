//! Table 1 — "Number of tables in each domain and keywords that identify
//! the domain. Each domain contains 50 to 800 data sources."
//!
//! Prints the corpus statistics of the generated substitute alongside the
//! paper's source counts and keyword filters.

use udi_bench::{banner, seed, sources_for, BenchObs};
use udi_datagen::{generate, Domain, GenConfig};

fn main() {
    banner("Table 1: domain corpora");
    let obs = BenchObs::from_args();
    // Table 1 never runs the setup pipeline, so with --trace the only
    // events are the binary-local per-domain generation spans below.
    let recorder = obs.recorder();
    println!(
        "{:<8} {:>6} {:>8} {:>10} {:>10}  Keywords",
        "Domain", "#Src", "#Attrs", "#Frequent", "#Rows"
    );
    for domain in Domain::all() {
        let n = sources_for(domain);
        let mut span = recorder.span("bench.datagen");
        span.field("domain", domain.name());
        span.field("n_sources", n);
        let gen = generate(
            domain,
            &GenConfig {
                n_sources: Some(n),
                seed: seed(),
                ..GenConfig::default()
            },
        );
        span.field("n_rows", gen.catalog.total_rows() as u64);
        span.close();
        let frequent = gen.catalog.frequent_attributes(0.10).len();
        println!(
            "{:<8} {:>6} {:>8} {:>10} {:>10}  {}",
            domain.name(),
            gen.catalog.source_count(),
            gen.catalog.attribute_count(),
            frequent,
            gen.catalog.total_rows(),
            domain.keywords()
        );
    }
    println!();
    println!("Paper reference: Movie 161, Car 817, People 49, Course 647, Bib 649 sources.");
    obs.finish();
}

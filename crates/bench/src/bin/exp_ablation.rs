//! Extension experiment: ablations of UDI's three load-bearing design
//! choices.
//!
//! 1. **Maximum entropy vs uniform** p-mapping probabilities (§5.2 argues
//!    for the distribution "that does not introduce new information").
//! 2. **Consistency-based (Algorithm 2) vs uniform** mediated-schema
//!    probabilities.
//! 3. **Similarity measure**: the default normalized hybrid vs plain
//!    Jaro–Winkler (the paper's setup) vs Levenshtein vs trigram Jaccard.
//!
//! Each ablation runs the Bib domain (the one with real schema
//! uncertainty) and reports Table 2-style metrics against the true golden
//! standard.

use udi_bench::{ambiguous_people_concepts, banner, fmt_prf, seed, sources_for};
use udi_core::{MeasureKind, UdiConfig, UdiSystem};
use udi_datagen::{generate, generate_with_concepts, Domain, GenConfig};
use udi_eval::{
    generate_workload, precision_at_recall, rp_curve, score, GoldenIntegrator, Metrics,
};
use udi_maxent::CorrespondenceSet;
use udi_query::Query;
use udi_schema::{
    assign_probabilities, build_p_med_schema, build_similarity_graph, enumerate_mediated_schemas,
    weighted_correspondences, Mapping, MediatedSchema, PMapping, PMedSchema, SchemaSet,
    SimilarityMatrix, UdiParams,
};
use udi_similarity::AttributeSimilarity;

fn evaluate(udi: &UdiSystem, gen: &udi_datagen::GeneratedDomain, queries: &[Query]) -> Metrics {
    let golden = GoldenIntegrator::new(&gen.catalog, &gen.truth);
    let per_query: Vec<Metrics> = queries
        .iter()
        .map(|q| {
            let rows = golden.golden_rows(q);
            score(udi.answer(q).flat(), rows.iter())
        })
        .collect();
    Metrics::average(&per_query)
}

/// Ranking quality: mean interpolated precision over ten recall levels,
/// averaged across workload queries. Unlike flat precision/recall (which
/// only sees *which* tuples have nonzero probability), this metric is
/// sensitive to how probability mass is assigned — the thing the
/// max-entropy and Algorithm 2 choices actually control.
fn ranking_quality(udi: &UdiSystem, gen: &udi_datagen::GeneratedDomain, queries: &[Query]) -> f64 {
    let golden = GoldenIntegrator::new(&gen.catalog, &gen.truth);
    let levels: Vec<f64> = (1..=10).map(|k| k as f64 / 10.0).collect();
    let mut total = 0.0;
    let mut n = 0;
    for q in queries {
        let rows = golden.golden_rows(q);
        if rows.is_empty() {
            continue;
        }
        let curve = rp_curve(&udi.answer(q).combined(), &rows);
        total += levels
            .iter()
            .map(|&r| precision_at_recall(&curve, r))
            .sum::<f64>()
            / levels.len() as f64;
        n += 1;
    }
    total / n.max(1) as f64
}

/// Build a schema set mirroring the catalog.
fn schema_set(gen: &udi_datagen::GeneratedDomain) -> SchemaSet {
    let mut set = SchemaSet::default();
    for (_, t) in gen.catalog.iter_sources() {
        set.add_source(t.name(), t.attributes().iter().map(String::as_str));
    }
    set
}

/// Uniform-probability p-mapping: same candidate mappings as max-entropy,
/// equal probabilities.
fn uniform_pmapping(
    source: &udi_schema::SourceSchema,
    med: &MediatedSchema,
    matrix: &SimilarityMatrix<'_>,
    params: &UdiParams,
) -> PMapping {
    let raw = weighted_correspondences(source, med, matrix, params);
    let corrs = CorrespondenceSet::normalized(raw).expect("valid");
    let matchings = udi_maxent::enumerate_matchings(&corrs, params.mapping_cap).expect("under cap");
    let p = 1.0 / matchings.len() as f64;
    let list = corrs.correspondences();
    let mappings: Vec<(Mapping, f64)> = matchings
        .iter()
        .map(|m| {
            (
                Mapping::one_to_one(
                    m.iter()
                        .map(|&c| (source.attrs[list[c].source], list[c].target)),
                ),
                p,
            )
        })
        .collect();
    PMapping::new(mappings)
}

fn main() {
    banner("Extension: design-choice ablations (true golden standard)");
    // Ablations 1 & 2 run on the Example 2.1 ambiguity corpus — the regime
    // where probability assignment matters; the measure ablation (3) runs
    // on the Bib benchmark corpus.
    let gen = generate_with_concepts(
        Domain::People,
        ambiguous_people_concepts(),
        &GenConfig {
            n_sources: Some(49),
            seed: seed(),
            ..GenConfig::default()
        },
    );
    let queries = generate_workload(&gen, 12, seed().wrapping_add(1));
    let params = UdiParams::default();

    // Reference system.
    let reference = UdiSystem::setup(gen.catalog.clone(), UdiConfig::default()).expect("setup");
    println!("\n## 1. p-mapping probabilities");
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>9}",
        "Variant", "Precision", "Recall", "F-measure", "RankP"
    );
    println!(
        "{:<22} {} {:>9.3}",
        "max-entropy (UDI)",
        fmt_prf(evaluate(&reference, &gen, &queries)),
        ranking_quality(&reference, &gen, &queries)
    );

    // Ablation 1: uniform p-mappings over the same candidate sets.
    let set = schema_set(&gen);
    let sim = AttributeSimilarity::default();
    let matrix = SimilarityMatrix::new(set.vocab(), &sim);
    let pmed = build_p_med_schema(&set, &sim, &params).expect("p-med-schema");
    let pmappings: Vec<Vec<PMapping>> = set
        .sources()
        .iter()
        .map(|s| {
            pmed.schemas()
                .iter()
                .map(|(m, _)| uniform_pmapping(s, m, &matrix, &params))
                .collect()
        })
        .collect();
    let uniform_pm =
        UdiSystem::from_parts(gen.catalog.clone(), pmed.clone(), pmappings).expect("assemble");
    println!(
        "{:<22} {} {:>9.3}",
        "uniform",
        fmt_prf(evaluate(&uniform_pm, &gen, &queries)),
        ranking_quality(&uniform_pm, &gen, &queries)
    );

    // Ablation 2: uniform schema probabilities (skip Algorithm 2).
    println!("\n## 2. mediated-schema probabilities");
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>9}",
        "Variant", "Precision", "Recall", "F-measure", "RankP"
    );
    println!(
        "{:<22} {} {:>9.3}",
        "consistency (Alg. 2)",
        fmt_prf(evaluate(&reference, &gen, &queries)),
        ranking_quality(&reference, &gen, &queries)
    );
    let graph = build_similarity_graph(&set, &sim, &params);
    let schemas = enumerate_mediated_schemas(&graph, &params);
    let n = schemas.len();
    let uniform_weighted: Vec<(MediatedSchema, f64)> =
        schemas.into_iter().map(|m| (m, 1.0 / n as f64)).collect();
    // Sanity: Algorithm 2 would have produced different weights.
    let alg2 = assign_probabilities(
        uniform_weighted.iter().map(|(m, _)| m.clone()).collect(),
        &set,
    );
    assert!(alg2.len() <= n);
    let pmed_uniform = PMedSchema::new(uniform_weighted);
    let pmappings: Vec<Vec<PMapping>> = set
        .sources()
        .iter()
        .map(|s| {
            pmed_uniform
                .schemas()
                .iter()
                .map(|(m, _)| {
                    udi_schema::generate_pmapping(s, m, &matrix, &params).expect("p-mapping")
                })
                .collect()
        })
        .collect();
    let uniform_schema =
        UdiSystem::from_parts(gen.catalog.clone(), pmed_uniform, pmappings).expect("assemble");
    println!(
        "{:<22} {} {:>9.3}",
        "uniform",
        fmt_prf(evaluate(&uniform_schema, &gen, &queries)),
        ranking_quality(&uniform_schema, &gen, &queries)
    );

    // Ablation 3: similarity measures, on the Bib benchmark corpus.
    let domain = Domain::Bib;
    let gen = generate(
        domain,
        &GenConfig {
            n_sources: Some(sources_for(domain)),
            seed: seed(),
            ..GenConfig::default()
        },
    );
    let queries = generate_workload(&gen, 10, seed().wrapping_add(1));
    println!("\n## 3. similarity measure (Bib domain)");
    println!(
        "{:<22} {:>9} {:>9} {:>9}",
        "Measure", "Precision", "Recall", "F-measure"
    );
    for kind in [
        MeasureKind::Default,
        MeasureKind::JaroWinkler,
        MeasureKind::Levenshtein,
        MeasureKind::TrigramJaccard,
        MeasureKind::TokenHybrid,
    ] {
        let config = UdiConfig {
            measure: kind,
            ..UdiConfig::default()
        };
        match UdiSystem::setup(gen.catalog.clone(), config) {
            Ok(udi) => {
                println!(
                    "{:<22} {}",
                    format!("{kind:?}"),
                    fmt_prf(evaluate(&udi, &gen, &queries))
                )
            }
            Err(e) => println!("{:<22} setup failed: {e}", format!("{kind:?}")),
        }
    }
    println!(
        "\nExpected shape: max-entropy and Algorithm 2 each beat their uniform \
         ablations (they concentrate probability on consistent hypotheses); \
         measures differ mainly in recall (how many name variants they \
         unify). The probability ablations show up in RankP — flat P/R only \
         sees which tuples are possible, not how mass is assigned."
    );
    println!("peak RSS: {}", udi_obs::fmt_rss(udi_obs::peak_rss_bytes()));
}

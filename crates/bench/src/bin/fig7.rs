//! Figure 7 — "System setup time for the Car domain. When the number of
//! data sources was increased, the setup time increased linearly."
//!
//! Sweeps the source count of the Car domain and reports per-stage
//! wall-clock times: (1) importing source schemas, (2) creating the
//! p-med-schema, (3) creating p-mappings, (4) consolidation. Also reports
//! mean query-answering latency at each scale (§7.6: "UDI answered queries
//! in no more than 2 seconds" at 817 sources).

use std::time::Instant;

use udi_bench::{banner, seed, BenchObs};
use udi_core::{UdiConfig, UdiSystem};
use udi_datagen::{generate, Domain, GenConfig};
use udi_eval::generate_workload;

fn main() {
    banner("Figure 7: setup time vs #sources (Car domain)");
    let obs = BenchObs::from_args();
    let full = udi_bench::sources_for(Domain::Car);
    let mut counts: Vec<usize> = (1..=8).map(|i| i * 100).filter(|&n| n < full).collect();
    counts.push(full);

    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12} {:>10} {:>12} {:>9} {:>9}",
        "#Src",
        "import",
        "p-med-schema",
        "p-mappings",
        "consolidate",
        "total",
        "query(avg)",
        "solve-hit",
        "sim-miss"
    );
    for &n in &counts {
        let gen = generate(
            Domain::Car,
            &GenConfig {
                n_sources: Some(n),
                seed: seed(),
                ..GenConfig::default()
            },
        );
        let udi = match obs.sink() {
            Some(sink) => {
                UdiSystem::setup_observed(gen.catalog.clone(), UdiConfig::default(), sink)
            }
            None => UdiSystem::setup(gen.catalog.clone(), UdiConfig::default()),
        }
        .expect("setup");
        let t = udi.report().timings.expect("fresh setup measures timings");
        // Cache behavior of the setup refresh: the max-entropy solve-cache
        // hit rate shows how much of stage 3 collapses onto repeated
        // correspondence groups even on a cold engine; sim-miss counts the
        // pairwise similarity computations (each pinned for later
        // incremental refreshes).
        let cache = udi.report().cache;
        // Mean query latency over the standard workload.
        let queries = generate_workload(&gen, 10, seed().wrapping_add(1));
        let q0 = Instant::now();
        for q in &queries {
            let _ = udi.answer(q);
        }
        let q_avg = q0.elapsed() / queries.len() as u32;
        println!(
            "{:>6} {:>9.1?} {:>12.1?} {:>12.1?} {:>12.1?} {:>9.1?} {:>12.1?} {:>8.1}% {:>9}",
            n,
            t.import,
            t.med_schema,
            t.pmappings,
            t.consolidation,
            t.total(),
            q_avg,
            cache.solve_hit_rate() * 100.0,
            cache.sim_misses
        );
    }
    println!();
    println!(
        "Paper reference (shape): total setup grows linearly with #sources \
         (3.5 minutes at 817 sources on 2008 hardware; p-mapping generation, \
         i.e. entropy maximization, dominates); queries answer in ≤ 2 s."
    );
    obs.finish();
}

//! Figure 4 — "Performance of query answering of the UDI system and
//! alternative approaches. The UDI system obtained the highest F-measure in
//! all domains."
//!
//! Compares UDI with the three keyword variants, `Source`, and `TopMapping`
//! on every domain, against the approximate golden standard (as in §7.3,
//! which reuses the §7.2 methodology).

use udi_baselines::{
    Integrator, KeywordNaive, KeywordStrict, KeywordStruct, SourceDirect, TopMapping, Udi,
};
use udi_bench::{banner, fmt_prf, prepare_traced, seed, sources_for, BenchObs};
use udi_datagen::Domain;

fn main() {
    banner("Figure 4: UDI vs keyword search, Source, and TopMapping (P / R / F)");
    let obs = BenchObs::from_args();
    for domain in Domain::all() {
        let d = prepare_traced(&obs, domain, Some(sources_for(domain)), seed()).expect("setup");
        let golden = d.approximate_golden_rows();
        println!("\n-- {} --", domain.name());
        println!(
            "{:<14} {:>9} {:>9} {:>9}",
            "Approach", "Precision", "Recall", "F-measure"
        );

        let approaches: Vec<Box<dyn Integrator + '_>> = vec![
            Box::new(Udi(&d.udi)),
            Box::new(KeywordNaive::new(&d.gen.catalog)),
            Box::new(KeywordStruct::new(&d.gen.catalog)),
            Box::new(KeywordStrict::new(&d.gen.catalog)),
            Box::new(SourceDirect::new(&d.gen.catalog)),
            Box::new(TopMapping::new(&d.udi)),
        ];
        for a in &approaches {
            let m = d.evaluate(a.as_ref(), &golden);
            println!("{:<14} {}", a.name(), fmt_prf(m));
        }
    }
    println!();
    println!(
        "Paper reference (shape): UDI best F everywhere; keyword variants poor; \
         Source high precision / low recall; TopMapping erratic precision and \
         the lowest recall (0 correct answers in Bib)."
    );
    obs.finish();
}

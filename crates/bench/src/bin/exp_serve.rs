//! Closed-loop load generation against `udi-serve` (Car domain).
//!
//! Stands the multi-tenant query server up in-process, drives it over real
//! TCP with N closed-loop clients (one outstanding request each), and
//! reports sustained queries/sec plus client-observed p50/p95/p99 latency.
//! Three phases:
//!
//! 1. **Identity** — every answer path is exercised once over the wire and
//!    the response's `answers` fragment must be byte-identical to the
//!    library path rendered through the same serializer. The server adds
//!    transport, not semantics.
//! 2. **Steady state** — N clients hammer the warm plan cache for a fixed
//!    window; latencies are measured client-side (the serving path itself
//!    reads no clocks).
//! 3. **Refresh under load** — while the clients keep running, the main
//!    thread publishes `add_source` mutations. Readers must never block on
//!    a refresh: every in-flight response stays well-formed (`ok` or a
//!    load-shed), and the tenant's generation advances once per mutation.
//!
//! Results are persisted to `results/BENCH_qps.json` (override with
//! `--out PATH`). `--smoke` shrinks the corpus, client count, and measure
//! window to CI size. `--trace out.jsonl` records the tenant's setup trace.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use udi_bench::{banner, seed, sources_for, BenchObs};
use udi_core::{UdiConfig, UdiSystem};
use udi_datagen::{generate, Domain, GenConfig};
use udi_eval::generate_workload;
use udi_serve::{execute_answer, AnswerPath, ServeState, Server, ServerConfig};
use udi_store::Table;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    let eq = format!("{flag}=");
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            return args.get(i + 1).cloned();
        }
        if let Some(v) = a.strip_prefix(&eq) {
            return Some(v.to_owned());
        }
    }
    None
}

/// One blocking request/response exchange on an established connection.
fn exchange(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    stream.write_all(line.as_bytes()).expect("write request");
    stream.write_all(b"\n").expect("write newline");
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    response.trim_end().to_owned()
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
    (stream, reader)
}

/// Escapes a query string into a JSON string literal body.
fn escape(q: &str) -> String {
    udi_serve::Json::Str(q.to_owned()).render()
}

struct ClientResult {
    latencies_us: Vec<u64>,
    requests: u64,
    shed: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "results/BENCH_qps.json".to_owned());
    banner(if smoke {
        "udi-serve closed-loop load — smoke mode"
    } else {
        "udi-serve closed-loop load (Car domain)"
    });
    let obs = BenchObs::from_args();

    let n = if smoke { 40 } else { sources_for(Domain::Car) };
    let gen = generate(
        Domain::Car,
        &GenConfig {
            n_sources: Some(n),
            seed: seed(),
            ..GenConfig::default()
        },
    );
    println!("corpus: {n} Car sources; setting the tenant up once…");
    let t0 = Instant::now();
    let system = match obs.sink() {
        Some(sink) => UdiSystem::setup_observed(gen.catalog.clone(), UdiConfig::default(), sink),
        None => UdiSystem::setup(gen.catalog.clone(), UdiConfig::default()),
    }
    .expect("setup");
    println!("setup in {:.1?}", t0.elapsed());

    let state = ServeState::new();
    state.register_tenant("bench", system);
    let server = Server::start(state.clone(), ServerConfig::default()).expect("start server");
    let addr = server.addr();
    let workers = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(2);
    println!("serving on {addr} with {workers} workers");

    let queries: Vec<String> = generate_workload(&gen, 10, seed().wrapping_add(1))
        .iter()
        .map(|q| q.to_string())
        .collect();
    let agg_query = {
        let probe = generate_workload(&gen, 1, seed().wrapping_add(1));
        let attr = probe[0].select.first().cloned().unwrap_or_default();
        format!("SELECT COUNT({attr}) FROM T")
    };

    // Phase 1: byte identity on every path, over the wire.
    let tenant = state.tenant("bench").expect("tenant");
    let snapshot = tenant.snapshot();
    let (mut stream, mut reader) = connect(addr);
    for path in AnswerPath::ALL {
        let q = if path == AnswerPath::Aggregate {
            agg_query.as_str()
        } else {
            queries[0].as_str()
        };
        let request = format!(
            r#"{{"op":"answer","tenant":"bench","path":"{}","query":{}}}"#,
            path.name(),
            escape(q)
        );
        let response = exchange(&mut stream, &mut reader, &request);
        let parsed = udi_serve::json::parse(&response).expect("response json");
        let via_server = parsed
            .get("answers")
            .unwrap_or_else(|| panic!("no answers in {response}"))
            .render();
        let via_library = execute_answer(&snapshot, path, q, 0)
            .expect("library answer")
            .render();
        assert_eq!(
            via_server,
            via_library,
            "path {} diverged from the library",
            path.name()
        );
        println!(
            "identity ok on path {:>13}: {} bytes",
            path.name(),
            via_server.len()
        );
    }
    drop(snapshot);

    // Phase 2 + 3: closed-loop clients, then mutations injected mid-window.
    let clients = if smoke { 2 } else { 8 };
    let window = if smoke {
        Duration::from_millis(700)
    } else {
        Duration::from_secs(6)
    };
    let stop = Arc::new(AtomicBool::new(false));
    println!("\ndriving {clients} closed-loop clients for {window:.1?}…");

    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let queries = queries.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let (mut stream, mut reader) = connect(addr);
                let mut result = ClientResult {
                    latencies_us: Vec::with_capacity(1 << 14),
                    requests: 0,
                    shed: 0,
                };
                let mut i = c; // stagger the starting query per client
                while !stop.load(Ordering::Relaxed) {
                    let q = &queries[i % queries.len()];
                    i += 1;
                    let request = format!(
                        r#"{{"op":"answer","tenant":"bench","id":{},"query":{}}}"#,
                        result.requests,
                        escape(q)
                    );
                    let t = Instant::now();
                    let response = exchange(&mut stream, &mut reader, &request);
                    let us = t.elapsed().as_micros() as u64;
                    result.requests += 1;
                    if response.contains(r#""shed":true"#) {
                        result.shed += 1;
                    } else {
                        assert!(
                            response.contains(r#""ok":true"#),
                            "client {c} got a failed response: {response}"
                        );
                        result.latencies_us.push(us);
                    }
                }
                result
            })
        })
        .collect();

    // Phase 3: refresh under load. Clone small corpus tables under fresh
    // names and publish them while the clients keep reading.
    let mutations = if smoke { 3 } else { 5 };
    let load_start = Instant::now();
    std::thread::sleep(window / 4);
    let gen_before = state.tenant("bench").expect("tenant").generation();
    let (mut mstream, mut mreader) = connect(addr);
    let mut refresh_total = Duration::ZERO;
    for m in 0..mutations {
        let src: &Table = gen
            .catalog
            .source(udi_store::SourceId((m % n) as u32))
            .expect("corpus table");
        let rows: String = src
            .to_rows()
            .iter()
            .take(8)
            .map(|row| {
                let cells: Vec<String> = row
                    .iter()
                    .map(|v| udi_serve::proto::value_to_json(v).render())
                    .collect();
                format!("[{}]", cells.join(","))
            })
            .collect::<Vec<_>>()
            .join(",");
        let attrs: Vec<String> = src.attributes().iter().map(|a| escape(a)).collect();
        let request = format!(
            r#"{{"op":"add_source","tenant":"bench","table":{{"name":"live_{m}","attrs":[{}],"rows":[{}]}}}}"#,
            attrs.join(","),
            rows
        );
        let t = Instant::now();
        let response = exchange(&mut mstream, &mut mreader, &request);
        refresh_total += t.elapsed();
        assert!(
            response.contains(r#""ok":true"#),
            "mutation {m} failed: {response}"
        );
    }
    let gen_after = state.tenant("bench").expect("tenant").generation();
    assert!(
        gen_after >= gen_before + mutations as u64,
        "{mutations} mutations must advance the generation at least {mutations} steps \
         (got {gen_before} → {gen_after})"
    );
    println!(
        "published {mutations} refreshes under load ({:.1?} total build time), generation {} → {}",
        refresh_total, gen_before, gen_after
    );

    while load_start.elapsed() < window {
        std::thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, Ordering::Relaxed);
    let mut latencies: Vec<u64> = Vec::new();
    let mut requests = 0u64;
    let mut shed = 0u64;
    for h in handles {
        let r = h.join().expect("client thread");
        latencies.extend(r.latencies_us);
        requests += r.requests;
        shed += r.shed;
    }
    let elapsed = load_start.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx.min(latencies.len() - 1)]
    };
    let (p50, p95, p99) = (pct(0.50), pct(0.95), pct(0.99));
    let qps = requests as f64 / elapsed;

    println!();
    println!(
        "{:>10} {:>10} {:>8} {:>10} {:>10} {:>10}",
        "requests", "qps", "shed", "p50", "p95", "p99"
    );
    println!(
        "{:>10} {:>10.1} {:>8} {:>8}us {:>8}us {:>8}us",
        requests, qps, shed, p50, p95, p99
    );

    // Server-side counter cross-check through the stats op.
    let stats = exchange(
        &mut stream,
        &mut reader,
        r#"{"op":"stats","tenant":"bench"}"#,
    );
    let parsed = udi_serve::json::parse(&stats).expect("stats json");
    let served = parsed
        .get("counters")
        .and_then(|c| c.get("serve.requests"))
        .and_then(udi_serve::Json::as_i64)
        .unwrap_or(0);
    println!(
        "server counters: {served} requests handled, shed counter {}",
        state.counters().get("serve.shed")
    );
    assert!(
        served as u64 >= requests,
        "server handled {served} < client-observed {requests}"
    );

    let json = format!(
        "{{\n  \"schema\": \"udi-exp-serve/v1\",\n  \"smoke\": {smoke},\n  \"clients\": {clients},\n  \"workers\": {workers},\n  \"sources\": {n},\n  \"duration_s\": {elapsed:.3},\n  \"requests\": {requests},\n  \"shed\": {shed},\n  \"qps\": {qps:.1},\n  \"p50_us\": {p50},\n  \"p95_us\": {p95},\n  \"p99_us\": {p99},\n  \"refreshes\": {mutations},\n  \"identity\": true\n}}\n"
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
    println!("peak RSS: {}", udi_obs::fmt_rss(udi_obs::peak_rss_bytes()));
    obs.finish();
}

//! Incremental setup vs full rebuild on the Car domain.
//!
//! The paper's pay-as-you-go premise is that sources keep arriving after
//! the initial automatic setup. The incremental engine makes an arriving
//! source cheap: `add_source` recomputes only the artifacts the new source
//! invalidates, instead of re-running the whole pipeline. This experiment
//! quantifies that on catalogs of 100–800 Car sources:
//!
//! * **rebuild** — a fresh `UdiSystem::setup` over all N sources;
//! * **incremental** — a system over N−1 sources, then `add_source` of the
//!   Nth.
//!
//! "Work" is machine-independent: p-mapping cells computed (per
//! (source, schema) pairs through the max-entropy pipeline) plus uncached
//! max-entropy group solves. The headline claim is a ≥10× work reduction
//! for the incremental path, with byte-identical answers on the standard
//! query workload.

use std::time::Instant;

use udi_bench::{banner, seed, sources_for, BenchObs};
use udi_core::{UdiConfig, UdiSystem};
use udi_datagen::{generate, Domain, GenConfig};
use udi_eval::generate_workload;

/// `UdiSystem::setup`, routed through the trace sink when `--trace` is on.
fn setup_maybe_observed(
    obs: &BenchObs,
    catalog: udi_store::Catalog,
) -> Result<UdiSystem, udi_core::UdiError> {
    match obs.sink() {
        Some(sink) => UdiSystem::setup_observed(catalog, UdiConfig::default(), sink),
        None => UdiSystem::setup(catalog, UdiConfig::default()),
    }
}

fn main() {
    banner("Incremental add vs full rebuild (Car domain)");
    let obs = BenchObs::from_args();
    let full = sources_for(Domain::Car);
    let counts: Vec<usize> = [100usize, 200, 400, 800]
        .iter()
        .map(|&n| n.min(full))
        .collect();
    let mut counts = counts;
    counts.dedup();

    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>8} {:>9}",
        "#Src", "rebuild(t)", "incr(t)", "rebuild(w)", "incr(w)", "work ×", "answers"
    );
    let mut worst_ratio = f64::INFINITY;
    for &n in &counts {
        let gen = generate(
            Domain::Car,
            &GenConfig {
                n_sources: Some(n),
                seed: seed(),
                ..GenConfig::default()
            },
        );
        let tables: Vec<_> = gen.catalog.iter_sources().map(|(_, t)| t.clone()).collect();
        let mut head = udi_store::Catalog::new();
        for t in &tables[..n - 1] {
            head.add_source(t.clone()).unwrap();
        }
        let newcomer = tables[n - 1].clone();

        // Full rebuild over all N sources.
        let t0 = Instant::now();
        let rebuilt = setup_maybe_observed(&obs, gen.catalog.clone()).expect("setup");
        let rebuild_time = t0.elapsed();
        let rc = rebuilt.report().cache;
        let rebuild_work = rc.rows_computed as u64 + rc.solve_misses;

        // Incremental: N−1 sources up front, then the Nth arrives. The
        // trace sink (when active) is installed before the first refresh,
        // so the `add_source` refresh's spans land in the same trace.
        let mut incremental = setup_maybe_observed(&obs, head).expect("setup of N-1");
        let t1 = Instant::now();
        incremental.add_source(newcomer).expect("incremental add");
        let incr_time = t1.elapsed();
        let ic = incremental.report().cache;
        let incr_work = ic.rows_computed as u64 + ic.solve_misses;

        // The incremental system must answer exactly like the rebuilt one.
        let queries = generate_workload(&gen, 10, seed().wrapping_add(1));
        let mut identical = true;
        for q in &queries {
            let mut a = rebuilt.answer(q).combined();
            let mut b = incremental.answer(q).combined();
            a.sort_by(|x, y| x.values.cmp(&y.values));
            b.sort_by(|x, y| x.values.cmp(&y.values));
            if a.len() != b.len()
                || a.iter().zip(&b).any(|(x, y)| {
                    x.values != y.values || (x.probability - y.probability).abs() > 1e-12
                })
            {
                identical = false;
            }
        }

        let ratio = rebuild_work as f64 / (incr_work.max(1)) as f64;
        worst_ratio = worst_ratio.min(ratio);
        println!(
            "{:>6} {:>11.1?} {:>11.1?} {:>12} {:>12} {:>7.1}x {:>9}",
            n,
            rebuild_time,
            incr_time,
            rebuild_work,
            incr_work,
            ratio,
            if identical { "identical" } else { "DIFFER" }
        );
        assert!(identical, "incremental add changed query answers at n={n}");
    }
    println!();
    println!(
        "Headline: adding one source to a configured system costs ≥10x less \
         pipeline work than rebuilding (worst ratio above: {worst_ratio:.1}x), \
         with identical answers."
    );
    assert!(
        worst_ratio >= 10.0,
        "expected >=10x work reduction, got {worst_ratio:.1}x"
    );
    println!("peak RSS: {}", udi_obs::fmt_rss(udi_obs::peak_rss_bytes()));
    obs.finish();
}
